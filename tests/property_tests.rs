//! Property-based tests (proptest) on the workspace's core invariants.

use cornet_repro::core::cluster::{cluster, ClusterConfig};
use cornet_repro::core::fullsearch::{full_search, FullSearchConfig};
use cornet_repro::core::predgen::{generate_predicates, GenConfig};
use cornet_repro::core::predicate::{CmpOp, DatePart, Predicate, TextOp};
use cornet_repro::core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_repro::core::signature::CellSignatures;
use cornet_repro::corpus::{generate_corpus_sharded, CorpusConfig};
use cornet_repro::formula::{evaluate_bool, parse};
use cornet_repro::table::{BitVec, CellValue, Date};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        Just(CellValue::Empty),
        "[a-zA-Z0-9 _-]{0,12}".prop_map(CellValue::Text),
        (-1e6f64..1e6f64).prop_map(|n| CellValue::Number((n * 100.0).round() / 100.0)),
        (-30000i32..30000i32).prop_map(|d| CellValue::Date(Date::from_days(d))),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Greater),
        Just(CmpOp::GreaterEquals),
        Just(CmpOp::Less),
        Just(CmpOp::LessEquals),
    ];
    let text_op = prop_oneof![
        Just(TextOp::Equals),
        Just(TextOp::Contains),
        Just(TextOp::StartsWith),
        Just(TextOp::EndsWith),
    ];
    let part = prop_oneof![
        Just(DatePart::Day),
        Just(DatePart::Month),
        Just(DatePart::Year),
        Just(DatePart::Weekday),
    ];
    prop_oneof![
        (op.clone(), -1e4f64..1e4f64).prop_map(|(op, n)| Predicate::NumCmp {
            op,
            n: (n * 10.0).round() / 10.0
        }),
        (-1e3f64..1e3f64, 0.0f64..1e3f64).prop_map(|(lo, w)| Predicate::NumBetween {
            lo: lo.round(),
            hi: (lo + w).round()
        }),
        (op, part, 1i64..2500).prop_map(|(op, part, n)| Predicate::DateCmp { op, part, n }),
        (text_op, "[a-zA-Z0-9-]{1,6}").prop_map(|(op, pattern)| Predicate::Text { op, pattern }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    proptest::collection::vec(
        proptest::collection::vec((arb_predicate(), any::<bool>()), 1..3),
        1..3,
    )
    .prop_map(|conjuncts| {
        Rule::new(
            conjuncts
                .into_iter()
                .map(|lits| {
                    Conjunct::new(
                        lits.into_iter()
                            .map(|(predicate, negated)| RuleLiteral { predicate, negated })
                            .collect(),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    /// A rule and its exported Excel formula agree on every cell.
    #[test]
    fn rule_formula_equivalence(rule in arb_rule(), cells in proptest::collection::vec(arb_cell(), 0..24)) {
        let formula = rule.to_formula();
        for cell in &cells {
            prop_assert_eq!(evaluate_bool(&formula, cell), rule.eval(cell));
        }
    }

    /// The exported formula text re-parses to an equivalent formula.
    #[test]
    fn formula_display_parse_roundtrip(rule in arb_rule(), cells in proptest::collection::vec(arb_cell(), 0..16)) {
        let formula = rule.to_formula();
        let reparsed = parse(&formula.to_string()).expect("exported formulas parse");
        for cell in &cells {
            prop_assert_eq!(
                evaluate_bool(&reparsed, cell),
                evaluate_bool(&formula, cell)
            );
        }
    }

    /// Canonicalisation is idempotent and execution-preserving.
    #[test]
    fn canonicalisation_preserves_execution(rule in arb_rule(), cells in proptest::collection::vec(arb_cell(), 0..16)) {
        let canonical = rule.canonical();
        prop_assert_eq!(canonical.canonical().to_string(), canonical.to_string());
        prop_assert_eq!(canonical.execute(&cells), rule.execute(&cells));
    }

    /// Exact match implies execution match on any column.
    #[test]
    fn exact_match_implies_execution_match(rule in arb_rule(), cells in proptest::collection::vec(arb_cell(), 0..16)) {
        use cornet_repro::core::metrics::{exact_match, execution_match};
        let clone = rule.clone();
        prop_assert!(exact_match(&rule, &clone));
        prop_assert!(execution_match(&rule, &clone, &cells));
    }

    /// Predicates never match cells of a different type or empty cells.
    #[test]
    fn predicates_are_typed(pred in arb_predicate(), cell in arb_cell()) {
        if let Some(dtype) = cell.data_type() {
            if dtype != pred.data_type() {
                prop_assert!(!pred.eval(&cell));
            }
        } else {
            prop_assert!(!pred.eval(&cell));
        }
    }

    /// BitVec set-operation laws used across the pipeline.
    #[test]
    fn bitvec_laws(bools_a in proptest::collection::vec(any::<bool>(), 1..120),
                   bools_b in proptest::collection::vec(any::<bool>(), 1..120)) {
        let n = bools_a.len().min(bools_b.len());
        let a = BitVec::from_bools(&bools_a[..n]);
        let b = BitVec::from_bools(&bools_b[..n]);
        // Hamming distance is a metric: symmetry + identity.
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
        // Involution and De Morgan.
        prop_assert_eq!(a.not().not(), a.clone());
        let mut union = a.clone();
        union.or_assign(&b);
        let mut inter_not = a.not();
        inter_not.and_assign(&b.not());
        prop_assert_eq!(union.not(), inter_not);
        // Popcount consistency.
        prop_assert_eq!(a.count_ones() + a.not().count_ones(), n);
    }

    /// Value parsing never panics and display stays parseable for numbers.
    #[test]
    fn cell_parse_total(s in ".{0,24}") {
        let _ = CellValue::parse(&s);
    }

    /// Date round-trips through (year, month, day) for the full range the
    /// corpus uses.
    #[test]
    fn date_roundtrip(days in -50000i32..50000i32) {
        let d = Date::from_days(days);
        let back = Date::from_ymd(d.year(), d.month(), d.day()).expect("valid components");
        prop_assert_eq!(back.days(), days);
    }

    /// Every `full_search` candidate covers all observed cells, meets the
    /// accuracy threshold, and respects the structural budgets — for any
    /// column content and observed set.
    #[test]
    fn full_search_candidates_respect_config(
        cells in proptest::collection::vec(arb_cell(), 6..28),
        picks in proptest::collection::vec(any::<u32>(), 2..5),
    ) {
        let n = cells.len();
        let mut observed: Vec<usize> = picks.iter().map(|&p| p as usize % n).collect();
        observed.sort_unstable();
        observed.dedup();
        let preds = generate_predicates(&cells, &GenConfig {
            max_predicates: 16,
            ..GenConfig::default()
        });
        let sigs = CellSignatures::from_predicates(&preds);
        let outcome = cluster(&sigs, &observed, &ClusterConfig::default());
        let config = FullSearchConfig {
            max_depth: 2,
            max_candidates: 40,
            max_conjuncts: 600,
            max_pair_evals: 5_000,
            ..FullSearchConfig::default()
        };
        let found = full_search(&preds, &outcome, &config);
        prop_assert!(found.len() <= config.max_candidates);
        for c in &found {
            prop_assert!(
                c.cluster_accuracy >= config.lambda_acc,
                "candidate {} below lambda_acc: {}", c.rule, c.cluster_accuracy
            );
            for i in outcome.observed.iter_ones() {
                prop_assert!(c.rule.eval(&cells[i]), "candidate {} misses observed cell {}", c.rule, i);
            }
            prop_assert!(c.rule.condition.len() <= config.max_disjuncts);
            for conjunct in &c.rule.condition {
                prop_assert!(conjunct.literals.len() <= config.max_depth);
            }
        }
    }

    /// Sharded corpus generation depends only on the root seed — never on
    /// the shard count or thread count it was generated under.
    #[test]
    fn sharded_corpus_is_shard_count_invariant(
        seed in any::<u64>(),
        shards_a in 1usize..7,
        shards_b in 1usize..7,
        threads in 1usize..5,
    ) {
        let config = CorpusConfig { n_tasks: 5, seed, ..CorpusConfig::default() };
        let fingerprint = |corpus: &cornet_repro::corpus::Corpus| -> Vec<(u64, String, String)> {
            corpus.tasks.iter().map(|t| {
                let cells: Vec<String> = t.cells.iter().map(|c| format!("{c:?}")).collect();
                (t.id, cells.join("|"), format!("{} :: {}", t.rule, t.user_formula))
            }).collect()
        };
        let a = cornet_repro::pool::with_threads(1, || fingerprint(&generate_corpus_sharded(&config, shards_a)));
        let b = cornet_repro::pool::with_threads(threads, || fingerprint(&generate_corpus_sharded(&config, shards_b)));
        prop_assert_eq!(a, b);
    }
}
