//! Differential and property tests for the suggestion retrieval layer:
//! the ball tree must return *bitwise identical* neighbor lists to the
//! brute-force linear scan — same neighbors, same order, same distances
//! — under every thread count, plus the structural invariants the
//! `/suggest` endpoint leans on (retrievability, radius monotonicity,
//! build ≡ incremental insert, tenant isolation over the wire).

use cornet_repro::nn::balltree::DEFAULT_REBUILD_THRESHOLD;
use cornet_repro::nn::BallTree;
use cornet_repro::pool::{par_map, with_threads};
use cornet_repro::serde::{open_envelope, Json};
use cornet_repro::serve::service::{CornetService, ServiceConfig};
use cornet_repro::serve::suggest::embed_column;
use cornet_repro::serve::{http_request, Server};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic point cloud: `n` points of dimension `dim`, clustered
/// around a handful of centers so the tree has real structure to prune
/// (uniform noise would make every ball overlap every query).
fn clustered_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % centers.len()];
            c.iter().map(|&v| v + rng.gen_range(-0.5..0.5)).collect()
        })
        .collect()
}

/// Runs tree-vs-linear over a mix of member and off-corpus queries and
/// asserts exact equality of the full neighbor lists.
fn assert_tree_matches_linear(points: &[Vec<f64>], queries: &[Vec<f64>], ks: &[usize]) {
    let dim = points[0].len();
    let tree = BallTree::build(dim, points);
    for q in queries {
        for &k in ks {
            let fast = tree.nearest(q, k);
            let slow = tree.nearest_linear(q, k);
            assert_eq!(
                fast, slow,
                "tree and linear scan disagree for k={k} on query {q:?}"
            );
        }
    }
}

#[test]
fn tree_equals_linear_scan_exactly() {
    let points = clustered_points(500, 16, 7);
    let mut queries: Vec<Vec<f64>> = points.iter().take(10).cloned().collect();
    queries.extend(clustered_points(10, 16, 99));
    assert_tree_matches_linear(&points, &queries, &[1, 3, 10, 499, 500, 600]);
}

#[test]
fn tree_equals_linear_scan_with_duplicate_points() {
    // Duplicates force distance ties; the shared total order (distance,
    // then insertion index) must keep both sides identical anyway.
    let mut points = clustered_points(100, 8, 11);
    let dupes: Vec<Vec<f64>> = points.iter().step_by(3).cloned().collect();
    points.extend(dupes);
    let queries: Vec<Vec<f64>> = points.iter().step_by(17).cloned().collect();
    assert_tree_matches_linear(&points, &queries, &[1, 5, 40]);
}

#[test]
fn tree_equals_linear_under_one_and_four_threads() {
    // Fan the queries across the pool: retrieval is read-only, so every
    // thread must see the identical structure and produce the identical
    // answer — and the answers must not depend on the thread count.
    let points = clustered_points(300, 12, 23);
    let tree = Arc::new(BallTree::build(12, &points));
    let queries: Vec<Vec<f64>> = points.iter().step_by(7).cloned().collect();
    let run = |threads: usize| -> Vec<Vec<(usize, f64)>> {
        let tree = Arc::clone(&tree);
        let queries = queries.clone();
        with_threads(threads, move || {
            par_map(queries.len(), |i| {
                let fast = tree.nearest(&queries[i], 5);
                let slow = tree.nearest_linear(&queries[i], 5);
                assert_eq!(fast, slow, "thread-fanned query {i} diverged");
                fast.into_iter().map(|n| (n.index, n.dist)).collect()
            })
        })
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single, quad, "results depend on thread count");
}

#[test]
fn real_embeddings_tree_equals_linear() {
    // The exact vectors `/suggest` indexes: hash-embedded column
    // signatures, L2-normalised onto the unit sphere.
    let families = [
        ["RW-187", "RW-159", "RW-312"],
        ["2021-01-04", "2021-02-05", "2021-03-06"],
        ["completed", "pending", "failed"],
        ["$1,204.50", "$98.20", "$5.00"],
        ["PASS", "FAIL", "PASS"],
    ];
    let mut points = Vec::new();
    for (i, family) in families.iter().enumerate() {
        for j in 0..40 {
            let cells: Vec<String> = family.iter().map(|c| format!("{c}-{i}{}", j % 7)).collect();
            points.push(embed_column(&cells));
        }
    }
    let queries: Vec<Vec<f64>> = points.iter().step_by(13).cloned().collect();
    assert_tree_matches_linear(&points, &queries, &[1, 3, 8]);
}

proptest! {
    #[test]
    fn every_point_is_retrievable(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 4), 1..60),
        k_extra in 0usize..3,
    ) {
        let tree = BallTree::build(4, &points);
        for (i, p) in points.iter().enumerate() {
            let hits = tree.nearest(p, 1 + k_extra);
            // The nearest neighbor of a member point is at distance 0 —
            // itself or an exact duplicate with a smaller index.
            prop_assert!(!hits.is_empty());
            prop_assert_eq!(hits[0].dist, 0.0);
            prop_assert_eq!(tree.point(hits[0].index), points[hits[0].index].as_slice());
            prop_assert!(hits[0].index <= i);
        }
    }

    #[test]
    fn knn_radius_is_monotone_in_k(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 2..50),
        query in proptest::collection::vec(-12.0f64..12.0, 3),
    ) {
        let tree = BallTree::build(3, &points);
        let mut last_radius = 0.0f64;
        let mut last_len = 0usize;
        for k in 1..=points.len() {
            let hits = tree.nearest(&query, k);
            prop_assert_eq!(hits.len(), k.min(points.len()));
            prop_assert!(hits.len() >= last_len);
            let radius = hits.last().map_or(0.0, |n| n.dist);
            prop_assert!(
                radius >= last_radius,
                "k-th distance shrank when k grew: {} < {}", radius, last_radius
            );
            // And the list itself is sorted by the same total order.
            for pair in hits.windows(2) {
                prop_assert!(pair[0].dist <= pair[1].dist);
                if pair[0].dist == pair[1].dist {
                    prop_assert!(pair[0].index < pair[1].index);
                }
            }
            last_radius = radius;
            last_len = hits.len();
        }
    }

    #[test]
    fn bulk_build_equals_incremental_insert(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 4), 1..80),
        query in proptest::collection::vec(-12.0f64..12.0, 4),
        threshold in 1usize..12,
    ) {
        let bulk = BallTree::build(4, &points);
        let mut grown = BallTree::with_rebuild_threshold(4, threshold);
        for p in &points {
            grown.insert(p);
        }
        prop_assert_eq!(bulk.len(), grown.len());
        // Same points, same insertion indices → identical answers, no
        // matter how much of the grown tree still sits in the pending
        // buffer vs. the built structure.
        prop_assert_eq!(bulk.nearest(&query, 5), grown.nearest(&query, 5));
        let full = points.len();
        prop_assert_eq!(bulk.nearest(&query, full), grown.nearest(&query, full));
    }
}

#[test]
fn default_threshold_insert_matches_build() {
    // The non-proptest sibling of the invariant above, big enough to
    // cross DEFAULT_REBUILD_THRESHOLD several times.
    let points = clustered_points(DEFAULT_REBUILD_THRESHOLD * 3 + 17, 6, 41);
    let bulk = BallTree::build(6, &points);
    let mut grown = BallTree::new(6);
    for p in &points {
        grown.insert(p);
    }
    for q in points.iter().step_by(19) {
        assert_eq!(bulk.nearest(q, 7), grown.nearest(q, 7));
    }
}

/// Tenant isolation over the wire: tenant A's rule must never appear in
/// tenant B's (or an anonymous) `/suggest` response, while untenanted
/// rules are visible to everyone.
#[test]
fn suggest_endpoint_never_leaks_across_tenants() {
    let dir = std::env::temp_dir().join(format!(
        "cornet-suggest-diff-tenants-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(
        CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let mut server = Server::start("127.0.0.1:0", service).unwrap();
    let addr = server.addr();

    let cells = r#"["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"]"#;
    let learn = |tenant: Option<&str>| -> String {
        let body = match tenant {
            Some(t) => format!(r#"{{"cells":{cells},"examples":[0,2,5],"tenant":"{t}"}}"#),
            None => format!(r#"{{"cells":{cells},"examples":[0,2,5]}}"#),
        };
        let (status, doc) = http_request(addr, "POST", "/learn", Some(&body)).unwrap();
        assert_eq!(status, 200, "{doc}");
        open_envelope(&doc, "learn")
            .unwrap()
            .get("rule_id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    let acme_rule = learn(Some("acme"));
    let global_rule = learn(None);
    assert_ne!(acme_rule, global_rule, "tenant feeds the fingerprint");

    let suggest_ids = |tenant: Option<&str>| -> Vec<String> {
        let body = match tenant {
            Some(t) => format!(r#"{{"cells":["RW-555","XX-1","RW-9-T"],"tenant":"{t}","k":8}}"#),
            None => r#"{"cells":["RW-555","XX-1","RW-9-T"],"k":8}"#.to_string(),
        };
        let (status, doc) = http_request(addr, "POST", "/suggest", Some(&body)).unwrap();
        assert_eq!(status, 200, "{doc}");
        open_envelope(&doc, "suggest")
            .unwrap()
            .get("suggestions")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|s| s.get("rule_id").and_then(Json::as_str).unwrap().to_string())
            .collect()
    };

    let acme = suggest_ids(Some("acme"));
    assert!(acme.contains(&acme_rule), "owner sees its rule: {acme:?}");
    assert!(acme.contains(&global_rule), "owner sees global rules too");

    let globex = suggest_ids(Some("globex"));
    assert!(
        !globex.contains(&acme_rule),
        "tenant isolation breached over the wire: {globex:?}"
    );
    assert!(globex.contains(&global_rule), "global rules stay shared");

    let anon = suggest_ids(None);
    assert!(!anon.contains(&acme_rule), "anonymous sees no tenant data");
    assert!(anon.contains(&global_rule));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
