//! Conformance tests for the `/metrics` endpoint: the exposition a live
//! server emits must be valid Prometheus text format 0.0.4, not merely
//! something our own parser happens to accept.
//!
//! Pinned here, against a real server over a loopback socket:
//!
//! * the response carries the text-exposition content type and parses;
//! * every sample belongs to a family with both `# HELP` and `# TYPE`,
//!   and the type is one of `counter` / `gauge` / `histogram`;
//! * metric and label names match the Prometheus grammar;
//! * histogram buckets are cumulative (non-decreasing in `le` order),
//!   end in `+Inf`, and agree with `_count`; `_sum` is present and
//!   consistent with the observations;
//! * counters never decrease between two scrapes (monotonicity);
//! * label values containing `"`, `\` and newlines round-trip through
//!   the escaping rules.
//!
//! The registry is process-global and shared with every other test in
//! this binary, so all assertions are structural or delta-based — never
//! exact counts.

use cornet_repro::obs::expo::{self, Exposition, Sample};
use cornet_repro::serve::http::{encode_request, http_request, http_request_text};
use cornet_repro::serve::service::{CornetService, ServiceConfig};
use cornet_repro::serve::Server;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// A live server over a throwaway store, plus the store dir to clean up.
struct Fixture {
    server: Server,
    dir: std::path::PathBuf,
}

impl Fixture {
    fn start(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("cornet-metrics-conf-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 64,
            ..ServiceConfig::default()
        })
        .expect("open store");
        let server = Server::start("127.0.0.1:0", Arc::new(service)).expect("bind");
        Fixture { server, dir }
    }

    fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Drive real traffic so the scrape has populated families: a learn
    /// (exercises the learner-stage histograms), a score (store path) and
    /// a 404 (the `unmatched` route label).
    fn traffic(&self) {
        let learn = r#"{"cells":["RW-187","RS-762","RW-159"],"examples":[0,2]}"#;
        let (status, _) =
            http_request(self.addr(), "POST", "/learn", Some(learn)).expect("POST /learn");
        assert_eq!(status, 200, "fixture learn must succeed");
        let (status, _) = http_request(self.addr(), "GET", "/health", None).expect("GET /health");
        assert_eq!(status, 200);
        let (status, _) = http_request(self.addr(), "GET", "/no-such-route", None).expect("GET");
        assert_eq!(status, 404, "fixture 404 must be a 404");
    }

    fn scrape(&self) -> Exposition {
        let (status, text) =
            http_request_text(self.addr(), "GET", "/metrics").expect("GET /metrics");
        assert_eq!(status, 200, "/metrics must answer 200");
        expo::parse(&text).unwrap_or_else(|e| panic!("/metrics must parse: {e}\n{text}"))
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.server.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The family a sample belongs to: histogram series keep their
/// `_bucket` / `_sum` / `_count` suffixes on the wire but share the
/// base family's HELP/TYPE metadata.
fn family_of<'a>(sample_name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    sample_name
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Labels of a sample minus `le`, as a grouping key for histogram series.
fn series_key(sample: &Sample) -> Vec<(String, String)> {
    sample
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .cloned()
        .collect()
}

#[test]
fn metrics_response_has_exposition_content_type() {
    let fixture = Fixture::start("ctype");
    fixture.traffic();
    let mut stream = TcpStream::connect(fixture.addr()).expect("connect");
    stream
        .write_all(encode_request("GET", "/metrics", None, true).as_bytes())
        .expect("send");
    let (status, headers, text) =
        cornet_repro::serve::http::read_response_text(&mut stream).expect("read");
    assert_eq!(status, 200);
    let content_type = headers
        .iter()
        .find(|(name, _)| name == "content-type")
        .map(|(_, value)| value.as_str())
        .expect("/metrics must send Content-Type");
    assert_eq!(
        content_type, "text/plain; version=0.0.4; charset=utf-8",
        "scrapers key the parser off this exact content type"
    );
    expo::parse(&text).expect("body must be a valid exposition");
}

#[test]
fn every_family_has_help_type_and_legal_names() {
    let fixture = Fixture::start("meta");
    fixture.traffic();
    let expo = fixture.scrape();
    assert!(!expo.samples.is_empty(), "scrape must not be empty");
    for sample in &expo.samples {
        assert!(
            is_valid_metric_name(&sample.name),
            "illegal metric name {:?}",
            sample.name
        );
        let family = family_of(&sample.name, &expo.types);
        assert!(
            expo.helps.contains_key(family),
            "family {family:?} (sample {:?}) has no # HELP",
            sample.name
        );
        let kind = expo
            .types
            .get(family)
            .unwrap_or_else(|| panic!("family {family:?} has no # TYPE"));
        assert!(
            matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
            "family {family:?} has unknown type {kind:?}"
        );
        let mut seen = std::collections::BTreeSet::new();
        for (key, _) in &sample.labels {
            assert!(is_valid_label_name(key), "illegal label name {key:?}");
            assert!(
                seen.insert(key),
                "duplicate label {key:?} on {:?}",
                sample.name
            );
        }
        // Counter families follow the `_total` convention and only
        // histogram series may carry the reserved `le` label.
        if kind == "counter" {
            assert!(
                family.ends_with("_total"),
                "counter family {family:?} must end in _total"
            );
        }
        if sample.label("le").is_some() {
            assert!(
                sample.name.ends_with("_bucket"),
                "only _bucket samples may carry `le`, found {:?}",
                sample.name
            );
        }
    }
}

#[test]
fn histogram_buckets_are_cumulative_and_consistent() {
    let fixture = Fixture::start("histo");
    fixture.traffic();
    let expo = fixture.scrape();
    let histogram_families: Vec<&String> = expo
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name)
        .collect();
    assert!(
        !histogram_families.is_empty(),
        "the scrape must expose at least one histogram family"
    );
    for family in histogram_families {
        // Group the family's _bucket samples into series by their
        // non-`le` labels; each series must be a well-formed histogram.
        let mut series: BTreeMap<Vec<(String, String)>, Vec<(f64, f64)>> = BTreeMap::new();
        for sample in expo.samples_named(&format!("{family}_bucket")) {
            let le = sample
                .label("le")
                .unwrap_or_else(|| panic!("{family}_bucket sample without `le`"));
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .unwrap_or_else(|_| panic!("unparseable le {le:?} in {family}"))
            };
            series
                .entry(series_key(sample))
                .or_default()
                .push((bound, sample.value));
        }
        assert!(!series.is_empty(), "histogram {family} has no buckets");
        for (labels, buckets) in series {
            let label_refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            // Upper bounds strictly increase and cumulative counts never
            // decrease; the last bucket is +Inf.
            for window in buckets.windows(2) {
                assert!(
                    window[0].0 < window[1].0,
                    "{family}{labels:?}: le bounds not strictly increasing"
                );
                assert!(
                    window[0].1 <= window[1].1,
                    "{family}{labels:?}: bucket counts not cumulative"
                );
            }
            let (last_bound, inf_count) = *buckets.last().expect("series has at least one bucket");
            assert!(
                last_bound.is_infinite(),
                "{family}{labels:?}: missing +Inf bucket"
            );
            let count = expo
                .value(&format!("{family}_count"), &label_refs)
                .unwrap_or_else(|| panic!("{family}{labels:?}: missing _count"));
            let sum = expo
                .value(&format!("{family}_sum"), &label_refs)
                .unwrap_or_else(|| panic!("{family}{labels:?}: missing _sum"));
            assert_eq!(
                inf_count, count,
                "{family}{labels:?}: +Inf bucket must equal _count"
            );
            assert!(
                count >= 0.0 && sum >= 0.0,
                "{family}{labels:?}: negative count or sum of durations"
            );
            assert!(
                count > 0.0 || sum == 0.0,
                "{family}{labels:?}: nonzero _sum with zero observations"
            );
        }
    }
    // The traffic above must have landed in the per-route histogram —
    // otherwise this test could pass against an empty family list.
    assert!(
        expo.value(
            "cornet_http_request_duration_seconds_count",
            &[("route", "/learn")]
        )
        .unwrap_or(0.0)
            >= 1.0,
        "the fixture learn must show in the /learn route histogram"
    );
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let fixture = Fixture::start("mono");
    fixture.traffic();
    let first = fixture.scrape();
    fixture.traffic(); // more traffic between the scrapes
    let second = fixture.scrape();
    let mut compared = 0usize;
    for sample in &first.samples {
        let family = family_of(&sample.name, &first.types);
        let is_counter = first.types.get(family).map(String::as_str) == Some("counter");
        // Histogram buckets and counts are cumulative too; only _sum can
        // be excluded (it is, strictly, also monotone for non-negative
        // observations — durations — so hold it to the same bar).
        let is_histogram = first.types.get(family).map(String::as_str) == Some("histogram");
        if !is_counter && !is_histogram {
            continue;
        }
        let labels: Vec<(&str, &str)> = sample
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let later = second.value(&sample.name, &labels).unwrap_or_else(|| {
            panic!(
                "cumulative series {:?}{:?} disappeared between scrapes",
                sample.name, sample.labels
            )
        });
        assert!(
            later >= sample.value,
            "{:?}{:?} went backwards: {} -> {later}",
            sample.name,
            sample.labels,
            sample.value
        );
        compared += 1;
    }
    assert!(compared >= 10, "only {compared} cumulative series compared");
    // And the traffic between the scrapes must be visible: the request
    // counter family strictly advanced somewhere.
    let total = |expo: &Exposition| -> f64 {
        expo.samples_named("cornet_http_requests_total")
            .iter()
            .map(|s| s.value)
            .sum()
    };
    assert!(
        total(&second) > total(&first),
        "traffic between scrapes must advance cornet_http_requests_total"
    );
}

#[test]
fn exotic_label_values_round_trip_through_escaping() {
    // The server process shares this test binary's global registry, so a
    // family registered here appears on the wire at the next scrape.
    let hostile = "a\"quoted\\slashed\nnewlined";
    cornet_repro::obs::registry()
        .counter_with(
            "cornet_test_escape_probe_total",
            "Escaping probe (tests only)",
            &[("path", hostile)],
        )
        .add(7);
    let fixture = Fixture::start("escape");
    let expo = fixture.scrape();
    let got = expo
        .value("cornet_test_escape_probe_total", &[("path", hostile)])
        .expect("escaped label must survive the wire round-trip");
    assert!(got >= 7.0, "escaped series lost its value: {got}");
}
