//! Integration tests for the baseline zoo: every system runs on corpus
//! tasks, masks are well-formed, and the Cornet-vs-baseline ordering the
//! paper reports holds on an easy text benchmark.

use cornet_repro::baselines::{
    CellClassifier, CopKmeans, CornetLearner, NeuralVariant, PopperBaseline, PredicateDecisionTree,
    RawDecisionTree, TaskLearner,
};
use cornet_repro::core::learner::CornetConfig;
use cornet_repro::core::rank::SymbolicRanker;
use cornet_repro::corpus::{generate_corpus, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn systems() -> Vec<Box<dyn TaskLearner>> {
    let mut rng = StdRng::seed_from_u64(5);
    vec![
        Box::new(RawDecisionTree),
        Box::new(PredicateDecisionTree::plain()),
        Box::new(PredicateDecisionTree::with_ranking()),
        Box::new(PopperBaseline::raw()),
        Box::new(PopperBaseline::with_predicates()),
        Box::new(CopKmeans::default()),
        Box::new(CellClassifier::new(NeuralVariant::BertLike, 5, &mut rng)),
        Box::new(CellClassifier::new(NeuralVariant::TapasLike, 5, &mut rng)),
        Box::new(CellClassifier::new(NeuralVariant::TutaLike, 5, &mut rng)),
        Box::new(CornetLearner::new(
            CornetConfig::default(),
            SymbolicRanker::heuristic(),
            "Cornet",
        )),
    ]
}

#[test]
fn every_system_runs_on_every_task() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 8,
        seed: 100,
        ..CorpusConfig::default()
    });
    for learner in systems() {
        for task in &corpus.tasks {
            let observed = task.examples(3);
            let prediction = learner.predict(&task.cells, &observed);
            assert_eq!(
                prediction.mask.len(),
                task.cells.len(),
                "{}: bad mask length",
                learner.name()
            );
            if let Some(rule) = &prediction.rule {
                assert!(learner.makes_rules(), "{} claims no rules", learner.name());
                // The rule must agree with the mask it reports.
                assert_eq!(
                    rule.execute(&task.cells),
                    prediction.mask,
                    "{}: rule/mask disagreement",
                    learner.name()
                );
            }
        }
    }
}

#[test]
fn cornet_beats_single_tree_on_exception_rules() {
    // AND(prefix, NOT suffix) tasks need negative refinement — the
    // signature strength of Cornet's clustering + iteration.
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 40,
        seed: 200,
        ..CorpusConfig::default()
    });
    let cornet = CornetLearner::new(
        CornetConfig::default(),
        SymbolicRanker::heuristic(),
        "Cornet",
    );
    let dtree = RawDecisionTree;
    let mut cornet_hits = 0;
    let mut dtree_hits = 0;
    for task in &corpus.tasks {
        let observed = task.examples(5);
        if observed.is_empty() {
            continue;
        }
        if cornet.predict(&task.cells, &observed).mask == task.formatted {
            cornet_hits += 1;
        }
        if dtree.predict(&task.cells, &observed).mask == task.formatted {
            dtree_hits += 1;
        }
    }
    assert!(
        cornet_hits > dtree_hits,
        "Cornet ({cornet_hits}) should beat the raw decision tree ({dtree_hits})"
    );
}

#[test]
fn popper_predicates_beats_popper_raw_on_prefix_tasks() {
    // Raw Popper can only memorise whole values; with Cornet's predicates
    // it generalises prefixes — the Table 4 ordering.
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 30,
        seed: 300,
        type_mix: [1.0, 0.0, 0.0], // text only
        ..CorpusConfig::default()
    });
    let raw = PopperBaseline::raw();
    let pred = PopperBaseline::with_predicates();
    let mut raw_hits = 0;
    let mut pred_hits = 0;
    for task in &corpus.tasks {
        let observed = task.examples(3);
        if observed.is_empty() {
            continue;
        }
        if raw.predict(&task.cells, &observed).mask == task.formatted {
            raw_hits += 1;
        }
        if pred.predict(&task.cells, &observed).mask == task.formatted {
            pred_hits += 1;
        }
    }
    assert!(
        pred_hits > raw_hits,
        "Popper+Predicates ({pred_hits}) should beat raw Popper ({raw_hits})"
    );
}
