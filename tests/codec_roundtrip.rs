//! Property tests for the `cornet-serde` codec: `decode(encode(x)) == x`
//! for tables, rules, styled rule sets and corpus tasks, plus
//! malformed-input rejection (truncation, wrong envelope version/kind,
//! NaN smuggling, unknown target-scope tags).

use cornet_repro::core::predicate::{CmpOp, DatePart, Predicate, TextOp};
use cornet_repro::core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_repro::core::ruleset::{RuleSet, StyledRule};
use cornet_repro::corpus::taskgen::Task;
use cornet_repro::corpus::{generate_corpus_sharded, CorpusConfig};
use cornet_repro::serde::{
    decode, encode, open_envelope, parse, to_string, FromJson, Json, ToJson,
};
use cornet_repro::table::{BitVec, CellValue, Column, Date, Format, FormatId, Table, TargetScope};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        Just(CellValue::Empty),
        "[a-zA-Z0-9 _-]{0,12}".prop_map(CellValue::Text),
        (-1e6f64..1e6f64).prop_map(|n| CellValue::Number((n * 100.0).round() / 100.0)),
        (-30000i32..30000i32).prop_map(|d| CellValue::Date(Date::from_days(d))),
    ]
}

fn arb_column() -> impl Strategy<Value = Column> {
    (
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}",
        proptest::collection::vec((arb_cell(), 0u32..3), 0..20),
    )
        .prop_map(|(name, cells)| {
            let (cells, formats): (Vec<CellValue>, Vec<u32>) = cells.into_iter().unzip();
            let mut column = Column::new(name, cells);
            for (i, f) in formats.into_iter().enumerate() {
                column.formats[i] = FormatId::from_raw(f);
            }
            column
        })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Greater),
        Just(CmpOp::GreaterEquals),
        Just(CmpOp::Less),
        Just(CmpOp::LessEquals),
    ];
    let text_op = prop_oneof![
        Just(TextOp::Equals),
        Just(TextOp::Contains),
        Just(TextOp::StartsWith),
        Just(TextOp::EndsWith),
    ];
    let part = prop_oneof![
        Just(DatePart::Day),
        Just(DatePart::Month),
        Just(DatePart::Year),
        Just(DatePart::Weekday),
    ];
    prop_oneof![
        (op.clone(), -1e4f64..1e4f64).prop_map(|(op, n)| Predicate::NumCmp { op, n }),
        (-1e3f64..1e3f64, 0.0f64..1e3f64)
            .prop_map(|(lo, w)| Predicate::NumBetween { lo, hi: lo + w }),
        (op.clone(), part.clone(), 1i64..2500).prop_map(|(op, part, n)| Predicate::DateCmp {
            op,
            part,
            n
        }),
        (part, 1i64..1000, 0i64..1000).prop_map(|(part, lo, w)| Predicate::DateBetween {
            part,
            lo,
            hi: lo + w
        }),
        // Patterns deliberately include JSON-hostile characters.
        (text_op, ".{0,10}").prop_map(|(op, pattern)| Predicate::Text { op, pattern }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    proptest::collection::vec(
        proptest::collection::vec((arb_predicate(), any::<bool>()), 1..4),
        0..4,
    )
    .prop_map(|conjuncts| {
        Rule::new(
            conjuncts
                .into_iter()
                .map(|lits| {
                    Conjunct::new(
                        lits.into_iter()
                            .map(|(predicate, negated)| RuleLiteral { predicate, negated })
                            .collect(),
                    )
                })
                .collect(),
        )
    })
}

fn arb_color() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), "#[0-9a-f]{6}".prop_map(Some),]
}

fn arb_format() -> impl Strategy<Value = Format> {
    (
        arb_color(),
        arb_color(),
        prop_oneof![Just(None), (6u8..72).prop_map(Some)],
        any::<bool>(),
    )
        .prop_map(|(fill, font_color, font_size, border)| Format {
            fill,
            font_color,
            font_size,
            border,
        })
}

fn arb_scope() -> impl Strategy<Value = TargetScope> {
    prop_oneof![Just(TargetScope::Cell), Just(TargetScope::Row)]
}

fn arb_styled_rule() -> impl Strategy<Value = StyledRule> {
    (
        arb_rule(),
        arb_format(),
        arb_scope(),
        0u32..8,
        -1e6f64..1e6f64,
        any::<bool>(),
    )
        .prop_map(
            |(rule, style, scope, priority, score, consistent)| StyledRule {
                rule,
                style,
                scope,
                priority,
                score,
                consistent,
            },
        )
}

fn arb_ruleset() -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(arb_styled_rule(), 0..4).prop_map(|rules| RuleSet { rules })
}

/// `decode(encode(x)) == x` through the envelope layer.
fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(kind: &str, value: &T) {
    let wire = encode(kind, value);
    let back: T = decode(kind, &wire).unwrap_or_else(|e| panic!("decode {wire}: {e}"));
    assert_eq!(&back, value);
    // A second encode of the decoded value is byte-identical: the codec
    // has one canonical form.
    assert_eq!(encode(kind, &back), wire);
}

proptest! {
    /// Cells survive the codec exactly, including the date/text split.
    #[test]
    fn cells_round_trip(cell in arb_cell()) {
        round_trip("cell", &cell);
    }

    /// Columns and tables survive the codec exactly.
    #[test]
    fn columns_round_trip(column in arb_column()) {
        round_trip("column", &column);
    }

    /// Single-column tables survive the codec exactly. (Multi-column
    /// tables must be equal-length; built from one column duplicated.)
    #[test]
    fn tables_round_trip(column in arb_column(), extra in 0usize..3) {
        let mut columns = vec![column.clone()];
        for i in 0..extra {
            let mut c = column.clone();
            c.name = format!("{}_{i}", c.name);
            columns.push(c);
        }
        round_trip("table", &Table::new(columns));
    }

    /// Rules (and their predicates, arbitrary patterns included) survive
    /// the codec exactly, preserving execution semantics.
    #[test]
    fn rules_round_trip(rule in arb_rule(), cells in proptest::collection::vec(arb_cell(), 0..12)) {
        round_trip("rule", &rule);
        let wire = encode("rule", &rule);
        let back: Rule = decode("rule", &wire).unwrap();
        prop_assert_eq!(back.execute(&cells), rule.execute(&cells));
    }

    /// Bit vectors survive the codec exactly.
    #[test]
    fn bitvecs_round_trip(bools in proptest::collection::vec(any::<bool>(), 0..64)) {
        round_trip("mask", &BitVec::from_bools(&bools));
    }

    /// Style payloads survive the codec exactly, every channel
    /// combination included, and re-encode canonically.
    #[test]
    fn formats_round_trip(format in arb_format()) {
        round_trip("format", &format);
    }

    /// Target scopes survive the codec exactly.
    #[test]
    fn target_scopes_round_trip(scope in arb_scope()) {
        round_trip("scope", &scope);
    }

    /// Styled rule sets — rules with style payloads, scopes, priorities,
    /// scores and consistency flags — survive the `rule-set` envelope
    /// exactly and re-encode byte-identically.
    #[test]
    fn rule_sets_round_trip(set in arb_ruleset()) {
        round_trip("rule-set", &set);
    }

    /// An unknown target-scope tag smuggled into a rule set is rejected
    /// at decode, never silently defaulted.
    #[test]
    fn unknown_scope_tags_are_rejected(rule in arb_styled_rule(), tag in "[a-z]{3,10}") {
        if tag != "cell" && tag != "row" {
            let set = RuleSet { rules: vec![rule] };
            let wire = encode("rule-set", &set);
            let scope_json = format!(r#""scope":{}"#, to_string(&set.rules[0].scope.to_json()));
            prop_assert!(wire.contains(&scope_json), "{}", wire);
            let tampered = wire.replacen(&scope_json, &format!(r#""scope":"{tag}""#), 1);
            let e = decode::<RuleSet>("rule-set", &tampered).unwrap_err();
            prop_assert!(e.message.contains("unknown target scope"), "{}", e);
        }
    }

    /// Generated corpus tasks survive the codec exactly (the user formula
    /// re-parses from its source text).
    #[test]
    fn corpus_tasks_round_trip(seed in 0u64..1000) {
        let corpus = generate_corpus_sharded(
            &CorpusConfig { n_tasks: 2, seed, ..CorpusConfig::default() },
            1,
        );
        for task in &corpus.tasks {
            let wire = encode("task", task);
            let back: Task = decode("task", &wire).unwrap();
            prop_assert_eq!(back.cells, task.cells.clone());
            prop_assert_eq!(back.rule, task.rule.clone());
            prop_assert_eq!(back.formatted, task.formatted.clone());
            prop_assert_eq!(back.user_formula, task.user_formula.clone());
        }
    }

    /// No strict prefix of a serialized document parses (truncation can
    /// never be silently accepted).
    #[test]
    fn truncation_is_always_rejected(rule in arb_rule()) {
        let wire = encode("rule", &rule);
        for cut in 1..wire.len() {
            if !wire.is_char_boundary(cut) {
                continue;
            }
            let prefix = &wire[..cut];
            prop_assert!(
                parse(prefix).is_err(),
                "prefix of length {} parsed: {}",
                cut,
                prefix
            );
        }
    }
}

#[test]
fn wrong_envelope_version_is_rejected() {
    let rule = Rule::from_predicate(Predicate::NumCmp {
        op: CmpOp::Greater,
        n: 1.0,
    });
    let wire = encode("rule", &rule);
    assert!(decode::<Rule>("rule", &wire).is_ok());

    let bumped = wire.replacen(r#"{"v":1,"#, r#"{"v":2,"#, 1);
    let e = decode::<Rule>("rule", &bumped).unwrap_err();
    assert!(e.message.contains("version"), "{e}");

    let wrong_kind = decode::<Rule>("table", &wire).unwrap_err();
    assert!(wrong_kind.message.contains("kind"), "{wrong_kind}");

    let no_envelope = to_string(&rule.to_json());
    assert!(decode::<Rule>("rule", &no_envelope).is_err());
}

#[test]
fn nan_is_rejected_at_both_layers() {
    // Layer 1: the parser refuses NaN/Infinity literals outright.
    for bad in ["NaN", "-NaN", "Infinity", "1e999"] {
        assert!(parse(bad).is_err(), "{bad}");
    }
    let smuggled = r#"{"v":1,"kind":"rule","payload":{"cond":[[{"pred":{"p":"num_cmp","op":">","n":NaN},"neg":false}]],"format":1}}"#;
    assert!(parse(smuggled).is_err());

    // Layer 2: a hand-built tree with a NaN constant fails decoding.
    let doc = Json::object([
        ("p", Json::str("num_cmp")),
        ("op", Json::str(">")),
        ("n", Json::Number(f64::NAN)),
    ]);
    assert!(Predicate::from_json(&doc).is_err());
}

#[test]
fn envelopes_are_shaped_as_documented() {
    let mask = BitVec::from_bools(&[true, false, true]);
    let wire = encode("mask", &mask);
    assert_eq!(
        wire,
        r#"{"v":1,"kind":"mask","payload":{"len":3,"ones":[0,2]}}"#
    );
    let doc = parse(&wire).unwrap();
    let payload = open_envelope(&doc, "mask").unwrap();
    assert_eq!(payload.get("len").and_then(Json::as_u64), Some(3));
}
