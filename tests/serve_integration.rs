//! End-to-end integration test for `cornet-serve`: a real server on a
//! loopback port, driven over HTTP through the full demo-paper loop —
//! learn → score → correct → re-learn — then a server restart proving
//! that scoring resumes from the persisted rule store without
//! re-learning.

use cornet_repro::serde::{open_envelope, FromJson, Json};
use cornet_repro::serve::service::{CornetService, ServiceConfig};
use cornet_repro::serve::{http_request, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

const CELLS: &str = r#"["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"]"#;

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("cornet-serve-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Fixture { dir }
    }

    fn start(&self) -> (Server, Arc<CornetService>) {
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: self.dir.clone(),
                cache_capacity: 32,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        let server = Server::start("127.0.0.1:0", Arc::clone(&service)).unwrap();
        (server, service)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn post_ok(addr: SocketAddr, path: &str, body: &str, kind: &str) -> Json {
    let (status, doc) = http_request(addr, "POST", path, Some(body)).unwrap();
    assert_eq!(status, 200, "POST {path}: {doc}");
    open_envelope(&doc, kind).unwrap().clone()
}

fn matches_of(payload: &Json) -> Vec<usize> {
    Vec::<usize>::from_json(payload.get("matches").unwrap()).unwrap()
}

#[test]
fn learn_score_correct_relearn_restart() {
    let fixture = Fixture::new("full-loop");
    let (mut server, service) = fixture.start();
    let addr = server.addr();

    // Learn from the running example.
    let learn_body = format!(r#"{{"cells":{CELLS},"examples":[0,2,5]}}"#);
    let learned = post_ok(addr, "/learn", &learn_body, "learn");
    assert_eq!(matches_of(&learned), vec![0, 2, 5]);
    assert_eq!(learned.get("cached").and_then(Json::as_bool), Some(false));
    let rule_id = learned
        .get("rule_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(service.learns_performed(), 1);

    // Score fresh rows by rule id.
    let score_body = format!(r#"{{"rule_id":"{rule_id}","cells":["RW-888","ZZ-1"]}}"#);
    let scored = post_ok(addr, "/score", &score_body, "score");
    let fresh = matches_of(&scored);
    assert!(fresh.contains(&0) && !fresh.contains(&1), "{fresh:?}");

    // Session: one example, then a correction, then re-learn.
    let session = post_ok(
        addr,
        "/session",
        &format!(r#"{{"cells":{CELLS},"examples":[0]}}"#),
        "session",
    );
    let sid = session
        .get("session_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let corrected = post_ok(
        addr,
        &format!("/session/{sid}/correct"),
        r#"{"format":[5],"unformat":[3]}"#,
        "session",
    );
    assert_eq!(corrected.get("revision").and_then(Json::as_u64), Some(1));
    let result = corrected.get("result").unwrap();
    let relearned = matches_of(result);
    assert!(
        relearned.contains(&5) && !relearned.contains(&3),
        "{relearned:?}"
    );

    // A second GET sees the same state.
    let (status, doc) = http_request(addr, "GET", &format!("/session/{sid}"), None).unwrap();
    assert_eq!(status, 200);
    let fetched = open_envelope(&doc, "session").unwrap().clone();
    assert_eq!(fetched.get("revision").and_then(Json::as_u64), Some(1));

    // Restart the server over the same store directory.
    server.shutdown();
    drop(service);
    let (mut server, service) = fixture.start();
    let addr = server.addr();

    // Scoring by rule id works from the persisted store…
    let scored = post_ok(addr, "/score", &score_body, "score");
    assert_eq!(matches_of(&scored), fresh);
    // …an identical learn request is a store hit…
    let learned_again = post_ok(addr, "/learn", &learn_body, "learn");
    assert_eq!(
        learned_again.get("cached").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        learned_again.get("rule_id").and_then(Json::as_str),
        Some(rule_id.as_str())
    );
    // …and the learner itself never ran in the restarted process.
    assert_eq!(service.learns_performed(), 0);
    server.shutdown();
}

#[test]
fn batch_learns_and_scores_over_the_wire() {
    let fixture = Fixture::new("batch");
    let (mut server, _service) = fixture.start();
    let addr = server.addr();

    let body = format!(
        r#"{{"items":[
            {{"op":"learn","cells":{CELLS},"examples":[0,2,5]}},
            {{"op":"learn","cells":["1","55","3","78"],"examples":[1,3]}},
            {{"op":"score","rule_id":"r0000000000000000","cells":["a"]}}
        ]}}"#
    );
    let payload = post_ok(addr, "/batch", &body, "batch");
    let results = payload.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(matches_of(&results[0]), vec![0, 2, 5]);
    assert_eq!(matches_of(&results[1]), vec![1, 3]);
    assert_eq!(
        results[2].get("status").and_then(Json::as_u64),
        Some(404),
        "missing rule id fails alone: {}",
        results[2]
    );
    server.shutdown();
}

#[test]
fn stored_rules_are_readable_via_the_rules_endpoint() {
    let fixture = Fixture::new("rules");
    let (mut server, _service) = fixture.start();
    let addr = server.addr();

    let learned = post_ok(
        addr,
        "/learn",
        &format!(r#"{{"cells":{CELLS},"examples":[0,2,5]}}"#),
        "learn",
    );
    let rule_id = learned.get("rule_id").and_then(Json::as_str).unwrap();
    let (status, doc) = http_request(addr, "GET", &format!("/rules/{rule_id}"), None).unwrap();
    assert_eq!(status, 200);
    let stored = open_envelope(&doc, "rule").unwrap();
    assert_eq!(
        stored.get("id").and_then(Json::as_str),
        Some(rule_id),
        "{stored}"
    );
    assert_eq!(
        Vec::<usize>::from_json(stored.get("examples").unwrap()).unwrap(),
        vec![0, 2, 5]
    );

    // Unknown and malicious ids are clean 404s.
    for bad in ["r0123456789abcdef", "r..%2F..%2Fetc"] {
        let (status, _) = http_request(addr, "GET", &format!("/rules/{bad}"), None).unwrap();
        assert_eq!(status, 404, "{bad}");
    }
    server.shutdown();
}
