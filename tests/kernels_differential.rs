//! Differential suite for the PR 7 kernel restructuring: the tiled/
//! transposed `Matrix` kernels and the stacked attention path must be
//! **bit-identical** to the naive serial loops they replaced, for any
//! shape and any input values — including non-finite ones, which the
//! kernels must propagate rather than skip.
//!
//! Wired into the CI `thread-matrix` job by name next to the other
//! differential suites; the kernels themselves are single-threaded, so
//! this suite is trivially thread-count invariant.

use cornet_repro::nn::{CrossAttention, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;

/// The historical naive `i,k,j` triple loop `A·B` (accumulate ascending
/// `k` from `+0.0`, no zero skipping).
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + av * b.get(k, j));
            }
        }
    }
    out
}

/// The direct `A·Bᵀ`: one row·row dot per output element, folded from the
/// canonical `+0.0` start. (The historical code used `Iterator::sum`,
/// whose identity is `-0.0` — an all-`-0.0`-terms dot came out `-0.0`
/// there while the sibling kernels produced `+0.0`; the `+0.0`-start rule
/// deliberately normalises that, see the `matrix` module doc.)
fn naive_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let dot = a
                .row(i)
                .iter()
                .zip(b.row(j))
                .fold(0.0f64, |acc, (x, y)| acc + x * y);
            out.set(i, j, dot);
        }
    }
    out
}

/// The historical direct `Aᵀ·B`: `k`-outer axpy in ascending `k`.
fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + a.get(k, i) * b.get(k, j));
            }
        }
    }
    out
}

/// Bit equality with one carve-out: when *both* sides are NaN, any payload
/// matches. Rust documents NaN payload/sign bits as non-deterministic —
/// e.g. `acc + term` with two NaN operands keeps whichever operand's
/// payload LLVM put in the `addsd` destination, so a propagated input NaN
/// (`7ff8…`) and the x86 indefinite NaN from `∞ × −0.0` (`fff8…`) can win
/// in either order across code shapes. The value *class* is still pinned:
/// a NaN may never become a non-NaN (that was the zero-skip bug) and vice
/// versa, and every non-NaN output — including ±0.0 and ±∞ — must match
/// bit for bit.
fn assert_bits_equal(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        if x.is_nan() && y.is_nan() {
            continue;
        }
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} diverged ({x} vs {y})"
        );
    }
}

proptest! {
    /// Tiled `matmul` ≡ naive triple loop, bit for bit, over random shapes
    /// straddling the tile edges and values including NaN/±∞/−0.0.
    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..40,
        k in 1usize..140,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let (a, b) = two_matrices(m, k, n, seed);
        assert_bits_equal("matmul", &a.matmul(&b), &naive_matmul(&a, &b));
    }

    /// `matmul_t` (now via a transposed copy) ≡ the direct row·row dots.
    #[test]
    fn matmul_t_matches_direct_dots(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let (a, bt) = two_matrices(m, k, n, seed);
        let b = bt.transpose(); // n×k → rows share a's row width
        assert_bits_equal("matmul_t", &a.matmul_t(&b), &naive_matmul_t(&a, &b));
    }

    /// `t_matmul` (now via a transposed copy) ≡ the direct `k`-outer loop.
    #[test]
    fn t_matmul_matches_direct_loop(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let (a0, b) = two_matrices(m, k, n, seed);
        let a = a0.transpose(); // k×m: rows match b's k rows
        prop_assert_eq!(a.rows(), b.rows());
        assert_bits_equal("t_matmul", &a.t_matmul(&b), &naive_t_matmul(&a, &b));
    }

    /// Stacked attention ≡ per-candidate attention, bit for bit, for
    /// ragged candidate counts (0, 1, many) and any key-block height.
    #[test]
    fn stacked_attention_matches_per_candidate(
        n_cand in 0usize..6,
        m in 0usize..9,
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        let d = 5;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let attn = CrossAttention::new(d, &mut rng);
        let x = Matrix::xavier(n, d, &mut rng);
        let blocks: Vec<Matrix> =
            (0..n_cand).map(|_| Matrix::xavier(m, d, &mut rng)).collect();
        let mut stacked = Matrix::zeros(n_cand * m, d);
        for (c, e) in blocks.iter().enumerate() {
            for r in 0..m {
                stacked.row_mut(c * m + r).copy_from_slice(e.row(r));
            }
        }
        let out = attn.forward_stacked(&x, &stacked, n_cand);
        prop_assert_eq!((out.rows(), out.cols()), (n_cand * n, d));
        for (c, e) in blocks.iter().enumerate() {
            let (single, _) = attn.forward(&x, e);
            for r in 0..n {
                for j in 0..d {
                    prop_assert_eq!(
                        out.get(c * n + r, j).to_bits(),
                        single.get(r, j).to_bits(),
                        "candidate {} row {} col {}", c, r, j
                    );
                }
            }
        }
    }
}

/// Deterministically builds an `m×k` and a `k×n` matrix from a seed using
/// the same non-finite-inclusive element distribution as [`arb_element`].
fn two_matrices(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut element = |rng: &mut rand::rngs::StdRng| -> f64 {
        match rng.gen_range(0..13u32) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            _ => rng.gen_range(-1e3..1e3),
        }
    };
    let a = Matrix::from_vec(m, k, (0..m * k).map(|_| element(&mut rng)).collect());
    let b = Matrix::from_vec(k, n, (0..k * n).map(|_| element(&mut rng)).collect());
    (a, b)
}

/// All kernels agree on the degenerate all-`-0.0`-terms dot: `+0.0`, per
/// the `+0.0`-start accumulation rule (the historical `matmul_t` answered
/// `-0.0` here via `Iterator::sum`).
#[test]
fn signed_zero_dot_is_normalised_to_positive_zero() {
    let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    let negz = Matrix::from_vec(1, 2, vec![-0.0, -0.0]);
    assert_eq!(a.matmul_t(&negz).get(0, 0).to_bits(), 0.0f64.to_bits());
    assert_eq!(
        a.matmul(&negz.transpose()).get(0, 0).to_bits(),
        0.0f64.to_bits()
    );
    let at = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
    let bz = Matrix::from_vec(2, 1, vec![-0.0, -0.0]);
    assert_eq!(at.t_matmul(&bz).get(0, 0).to_bits(), 0.0f64.to_bits());
}

/// `0.0 × NaN` and `0.0 × ∞` must poison the product — the old kernels
/// skipped zero terms and silently dropped the NaN.
#[test]
fn zero_terms_propagate_non_finite_values() {
    let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
    let nan = Matrix::from_vec(2, 1, vec![f64::NAN, 2.0]);
    assert!(a.matmul(&nan).get(0, 0).is_nan());
    let inf = Matrix::from_vec(2, 1, vec![f64::INFINITY, 2.0]);
    assert!(a.matmul(&inf).get(0, 0).is_nan());
    let at = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
    assert!(at.t_matmul(&nan).get(0, 0).is_nan());
}
