//! Differential tests for constrained learning (`LearnSpec`, §5.2.1).
//!
//! Two contracts are pinned here:
//!
//! * **Compatibility** — `learn_spec` with an empty negative set replays
//!   the historical `learn(cells, observed)` output bit for bit (rules,
//!   order, score bits, stats), at 1 and 4 pool threads. The expected
//!   output is rebuilt inline from the stage primitives (cluster →
//!   enumerate → rank → sort), so a drift in `learn`'s composition fails
//!   even though both entry points share code today.
//! * **Constrained ≡ filtered** — over a *fixed* clustering, running the
//!   search with hard-negative constraints equals running it
//!   unconstrained and dropping every candidate whose execution covers a
//!   negative. Hard negatives reshape the clustering (that is the §5.2.1
//!   win) and act as hard admission constraints; they deliberately do not
//!   perturb tree fitting or accuracy weighting beyond the labels, which
//!   is what makes this equality exact. Budgets are kept unconstraining —
//!   under a binding cap the constrained run may legitimately find rules
//!   the filtered run truncated away.

use cornet_repro::core::cluster::{cluster_constrained, ClusterConfig, ClusterOutcome};
use cornet_repro::core::enumerate::{enumerate_rules, Candidate, EnumConfig};
use cornet_repro::core::features::rule_features;
use cornet_repro::core::fullsearch::{full_search, FullSearchConfig};
use cornet_repro::core::learner::{Cornet, CornetConfig, LearnSpec, SearchStrategy};
use cornet_repro::core::predgen::{generate_predicates, infer_type, GenConfig};
use cornet_repro::core::rank::{score_descending, RankContext, Ranker, SymbolicRanker};
use cornet_repro::core::signature::CellSignatures;
use cornet_repro::pool::with_threads;
use cornet_repro::table::{BitVec, CellValue};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One seeded random column + observed set (same surface flavours as the
/// batched-ranking differential suite).
fn random_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..=40);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 5 {
            0 => {
                let prefix = *["RW", "RS", "TW"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.3) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(100..1000))
            }
            1 => (*["Open", "Closed", "Pending", "Blocked", "Done"]
                .choose(&mut rng)
                .unwrap())
            .to_string(),
            2 => format!("{}", rng.gen_range(-50..450) as f64 * 0.5),
            3 => format!(
                "202{}-{:02}-{:02}",
                rng.gen_range(0..4),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            _ => {
                if rng.gen_bool(0.6) {
                    format!("{}", rng.gen_range(0..100))
                } else {
                    format!("id-{}", rng.gen_range(0..30))
                }
            }
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let k = rng.gen_range(2..=5).min(n);
    let mut observed: Vec<usize> = indices.into_iter().take(k).collect();
    observed.sort_unstable();
    (cells, observed)
}

/// A deliberately small column (8–14 cells, narrow value space) whose
/// predicate pool stays tractable for *uncapped* full search — the
/// constrained ≡ filtered equality only holds when no budget binds.
fn small_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5eed);
    let n = rng.gen_range(8..=14);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 3 {
            0 => {
                let prefix = *["RW", "RS"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.25) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(1..=9))
            }
            1 => (*["Open", "Closed", "Pending"].choose(&mut rng).unwrap()).to_string(),
            _ => format!("{}", rng.gen_range(0..20)),
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut observed: Vec<usize> = indices.into_iter().take(rng.gen_range(2..=3)).collect();
    observed.sort_unstable();
    (cells, observed)
}

/// Replays the historical unconstrained pipeline from stage primitives
/// and returns `(rule display, score bits, cluster-accuracy bits)` in
/// final order.
fn historical_baseline(cells: &[CellValue], observed: &[usize]) -> Option<Vec<(String, u64, u64)>> {
    let predicates = generate_predicates(cells, &GenConfig::default());
    if predicates.is_empty() {
        return None;
    }
    let signatures = CellSignatures::from_predicates(&predicates);
    let outcome = cluster_constrained(&signatures, observed, &[], &ClusterConfig::default());
    let candidates = enumerate_rules(&predicates, &outcome, &EnumConfig::default());
    if candidates.is_empty() {
        return None;
    }
    let cell_texts: Vec<String> = cells.iter().map(CellValue::display_string).collect();
    let dtype = infer_type(cells);
    let no_negatives = BitVec::zeros(cells.len());
    let ranker = SymbolicRanker::heuristic();
    let mut scored: Vec<(String, f64, usize, f64)> = candidates
        .iter()
        .map(|cand| {
            let execution = cand.rule.execute(cells);
            let features = rule_features(&cand.rule, &execution, &outcome.labels, dtype);
            let score = ranker.score(&RankContext {
                rule: &cand.rule,
                cell_texts: &cell_texts,
                execution: &execution,
                cluster_labels: &outcome.labels,
                negatives: &no_negatives,
                dtype,
                features,
            });
            (
                cand.rule.to_string(),
                score,
                cand.rule.token_length(),
                cand.cluster_accuracy,
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        score_descending(a.1, b.1)
            .then_with(|| a.2.cmp(&b.2))
            .then_with(|| a.0.cmp(&b.0))
    });
    Some(
        scored
            .into_iter()
            .map(|(rule, score, _, acc)| (rule, score.to_bits(), acc.to_bits()))
            .collect(),
    )
}

#[test]
fn empty_negatives_spec_replays_the_historical_pipeline_bitwise() {
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let (cells, observed) = random_table(seed);
        let Some(baseline) = historical_baseline(&cells, &observed) else {
            continue;
        };
        for threads in [1usize, 4] {
            let spec = LearnSpec::new(cells.clone(), observed.clone());
            let (by_spec, by_learn) = with_threads(threads, || {
                let cornet = Cornet::with_default_ranker();
                (
                    cornet.learn_spec(&spec).expect("learns"),
                    cornet.learn(&cells, &observed).expect("learns"),
                )
            });
            for outcome in [&by_spec, &by_learn] {
                assert_eq!(outcome.candidates.len(), baseline.len(), "seed {seed}");
                for (got, want) in outcome.candidates.iter().zip(&baseline) {
                    assert_eq!(
                        got.rule.to_string(),
                        want.0,
                        "seed {seed}, threads {threads}"
                    );
                    assert_eq!(
                        got.score.to_bits(),
                        want.1,
                        "seed {seed}, threads {threads}, rule {}",
                        want.0
                    );
                    assert_eq!(got.cluster_accuracy.to_bits(), want.2, "seed {seed}");
                }
            }
            // The two entry points also agree on the run statistics.
            assert_eq!(by_spec.stats.n_predicates, by_learn.stats.n_predicates);
            assert_eq!(by_spec.stats.n_candidates, by_learn.stats.n_candidates);
            assert_eq!(
                by_spec.stats.cluster_iterations,
                by_learn.stats.cluster_iterations
            );
        }
        checked += 1;
    }
    assert!(checked >= 15, "too few learnable fixtures: {checked}");
}

/// Picks a hard negative for a seeded table: a non-observed cell the
/// unconstrained best rule formats (i.e. a correction that actually
/// contradicts the learner).
fn pick_negative(cells: &[CellValue], observed: &[usize]) -> Option<usize> {
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(cells, observed).ok()?;
    let mask = outcome.best().rule.execute(cells);
    let negative = mask.iter_ones().find(|i| !observed.contains(i));
    negative
}

/// A fixture for the constrained ≡ filtered equalities: predicates plus
/// the constrained clustering, and an "unconstrained view" of the same
/// clustering — identical labels and weights, hard constraints cleared
/// (the indices move to the soft-negative mask so the §3.3.2 weighting is
/// untouched).
struct SearchFixture {
    cells: Vec<CellValue>,
    negatives: Vec<usize>,
    predicates: cornet_repro::core::predgen::PredicateSet,
    constrained: ClusterOutcome,
    unconstrained_view: ClusterOutcome,
}

impl SearchFixture {
    fn build(seed: u64) -> Option<SearchFixture> {
        Self::build_from(random_table(seed))
    }

    /// Small-column variant for the uncapped full-search equality.
    fn build_small(seed: u64) -> Option<SearchFixture> {
        Self::build_from(small_table(seed))
    }

    fn build_from((cells, observed): (Vec<CellValue>, Vec<usize>)) -> Option<SearchFixture> {
        let negative = pick_negative(&cells, &observed)?;
        let predicates = generate_predicates(&cells, &GenConfig::default());
        let signatures = CellSignatures::from_predicates(&predicates);
        let constrained = cluster_constrained(
            &signatures,
            &observed,
            &[negative],
            &ClusterConfig::default(),
        );
        let mut unconstrained_view = constrained.clone();
        unconstrained_view.hard_negatives = BitVec::zeros(cells.len());
        unconstrained_view.soft_negatives.set(negative, true);
        Some(SearchFixture {
            cells,
            negatives: vec![negative],
            predicates,
            constrained,
            unconstrained_view,
        })
    }

    fn excludes_negatives(&self, candidate: &Candidate) -> bool {
        let execution = candidate.rule.execute(&self.cells);
        self.negatives.iter().all(|&i| !execution.get(i))
    }
}

fn keys(candidates: &[Candidate]) -> Vec<(String, u64)> {
    candidates
        .iter()
        .map(|c| (c.rule.to_string(), c.cluster_accuracy.to_bits()))
        .collect()
}

#[test]
fn constrained_enumeration_equals_filtered_enumeration() {
    // max_rules is lifted so the cap cannot bind (a binding cap is the
    // one legitimate divergence: the filtered run wastes budget on
    // candidates the constrained run never admits).
    let config = EnumConfig {
        max_rules: 10_000,
        ..EnumConfig::default()
    };
    let mut checked = 0usize;
    for seed in 0..40u64 {
        let Some(fixture) = SearchFixture::build(seed) else {
            continue;
        };
        let constrained = enumerate_rules(&fixture.predicates, &fixture.constrained, &config);
        let unconstrained =
            enumerate_rules(&fixture.predicates, &fixture.unconstrained_view, &config);
        let filtered: Vec<Candidate> = unconstrained
            .into_iter()
            .filter(|c| fixture.excludes_negatives(c))
            .collect();
        assert_eq!(
            keys(&constrained),
            keys(&filtered),
            "seed {seed}: constrained enumeration diverged from filtered"
        );
        for c in &constrained {
            assert!(fixture.excludes_negatives(c), "seed {seed}");
        }
        checked += 1;
    }
    assert!(checked >= 10, "too few constrained fixtures: {checked}");
}

/// Full-search budgets lifted far beyond what the test fixtures can
/// reach: a *binding* budget is the one legitimate divergence between the
/// constrained and filtered runs (the filtered run burns budget on
/// candidates the constrained run never admits), and between thread
/// counts (the PR 2 contract only promises subsequence semantics under a
/// cap).
fn unconstraining_search() -> FullSearchConfig {
    FullSearchConfig {
        max_depth: 2,
        max_candidates: 1_000_000_000,
        max_conjuncts: 1_000_000_000,
        max_pair_evals: 1_000_000_000,
        ..FullSearchConfig::default()
    }
}

#[test]
fn constrained_full_search_equals_filtered_full_search() {
    let config = unconstraining_search();
    let mut checked = 0usize;
    for seed in 0..30u64 {
        let Some(fixture) = SearchFixture::build_small(seed) else {
            continue;
        };
        // Keep the quadratic pair stage tractable with budgets lifted.
        if fixture.predicates.representatives.len() > 40 {
            continue;
        }
        for threads in [1usize, 4] {
            let constrained = with_threads(threads, || {
                full_search(&fixture.predicates, &fixture.constrained, &config)
            });
            let unconstrained = with_threads(threads, || {
                full_search(&fixture.predicates, &fixture.unconstrained_view, &config)
            });
            let filtered: Vec<Candidate> = unconstrained
                .into_iter()
                .filter(|c| fixture.excludes_negatives(c))
                .collect();
            assert_eq!(
                keys(&constrained),
                keys(&filtered),
                "seed {seed}, threads {threads}"
            );
            for c in &constrained {
                assert!(fixture.excludes_negatives(c), "seed {seed}");
            }
        }
        checked += 1;
    }
    assert!(checked >= 3, "too few constrained fixtures: {checked}");
}

#[test]
fn constrained_learn_is_thread_count_invariant_and_sound() {
    for strategy in [SearchStrategy::Greedy, SearchStrategy::Exhaustive] {
        let mut checked = 0usize;
        for seed in 0..20u64 {
            // Exhaustive runs need small columns: thread-count-identical
            // output is only promised with unconstraining budgets (the
            // PR 2 contract), and uncapped search must stay tractable.
            let (cells, observed) = match strategy {
                SearchStrategy::Greedy => random_table(seed),
                SearchStrategy::Exhaustive => small_table(seed),
            };
            let Some(negative) = pick_negative(&cells, &observed) else {
                continue;
            };
            let make_config = || {
                let mut config = CornetConfig {
                    strategy,
                    ..CornetConfig::default()
                };
                config.full_search = unconstraining_search();
                config
            };
            if strategy == SearchStrategy::Exhaustive {
                let predicates = generate_predicates(&cells, &GenConfig::default());
                if predicates.representatives.len() > 40 {
                    continue;
                }
            }
            let spec =
                LearnSpec::new(cells.clone(), observed.clone()).with_negatives(vec![negative]);
            let run = |threads: usize| {
                with_threads(threads, || {
                    let cornet = Cornet::new(make_config(), SymbolicRanker::heuristic());
                    cornet.learn_spec(&spec).map(|outcome| {
                        outcome
                            .candidates
                            .iter()
                            .map(|c| (c.rule.to_string(), c.score.to_bits()))
                            .collect::<Vec<_>>()
                    })
                })
            };
            let serial = run(1);
            assert_eq!(serial, run(4), "seed {seed}, strategy {strategy:?}");
            // Soundness: every returned candidate covers the positives and
            // excludes the negative.
            if let Ok(candidates) = &serial {
                assert!(!candidates.is_empty());
                let cornet = Cornet::new(make_config(), SymbolicRanker::heuristic());
                let outcome = cornet.learn_spec(&spec).unwrap();
                for cand in &outcome.candidates {
                    let mask = cand.rule.execute(&cells);
                    assert!(observed.iter().all(|&i| mask.get(i)), "seed {seed}");
                    assert!(!mask.get(negative), "seed {seed}: {}", cand.rule);
                }
                checked += 1;
            }
        }
        assert!(
            checked >= 3,
            "too few satisfiable constrained learns for {strategy:?}: {checked}"
        );
    }
}
