//! Integration tests of the corpus generator against the learning stack:
//! every generated artifact must be mutually consistent.

use cornet_repro::core::metrics::execution_match_mask;
use cornet_repro::corpus::{corpus_stats, generate_corpus, CorpusConfig};
use cornet_repro::formula::{evaluate_bool, token_length};
use cornet_repro::table::DataType;

#[test]
fn corpus_invariants_hold_at_scale() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 120,
        seed: 9,
        ..CorpusConfig::default()
    });
    assert_eq!(corpus.tasks.len(), 120);
    for task in &corpus.tasks {
        // Formatting is the rule's execution.
        assert!(execution_match_mask(
            &task.rule.execute(&task.cells),
            &task.formatted
        ));
        // Filters (§5.0.1).
        let count = task.formatted.count_ones();
        assert!(count >= 5 && count < task.cells.len());
        // The user formula is execution-equivalent to the gold rule.
        for cell in &task.cells {
            assert_eq!(
                evaluate_bool(&task.user_formula, cell),
                task.rule.eval(cell)
            );
        }
        // Tokens: the user formula is never shorter than… no guarantee —
        // but it must be at least one token.
        assert!(token_length(&task.user_formula) >= 1);
        // The inferred type matches the task's declared type.
        assert_eq!(
            cornet_repro::core::predgen::infer_type(&task.cells),
            Some(task.dtype)
        );
    }
}

#[test]
fn table3_shape_holds() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 300,
        seed: 10,
        ..CorpusConfig::default()
    });
    let stats = corpus_stats(&corpus.tasks);
    let text = &stats.per_type[0];
    let numeric = &stats.per_type[1];
    let date = &stats.per_type[2];
    // Table 3 orderings.
    assert!(text.rules > numeric.rules);
    assert!(numeric.rules > date.rules);
    assert!(numeric.avg_cells > text.avg_cells);
    assert!(text.avg_depth > numeric.avg_depth);
    // Depth magnitudes within tolerance of the paper's averages.
    assert!(
        (text.avg_depth - 2.3).abs() < 0.5,
        "text {}",
        text.avg_depth
    );
    assert!(
        (numeric.avg_depth - 1.8).abs() < 0.5,
        "numeric {}",
        numeric.avg_depth
    );
    assert!(
        (date.avg_depth - 1.7).abs() < 0.6,
        "date {}",
        date.avg_depth
    );
}

#[test]
fn split_is_disjoint_and_complete() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 50,
        seed: 11,
        ..CorpusConfig::default()
    });
    let (train, test) = corpus.split(0.8);
    assert_eq!(train.len() + test.len(), 50);
    let train_ids: Vec<u64> = train.iter().map(|t| t.id).collect();
    assert!(test.iter().all(|t| !train_ids.contains(&t.id)));
}

#[test]
fn custom_formula_tasks_exist_in_both_kinds() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 80,
        seed: 12,
        ..CorpusConfig::default()
    });
    let custom = corpus.tasks.iter().filter(|t| t.custom_formula).count();
    assert!(custom > 10, "some custom-formula tasks");
    assert!(custom < 70, "some template tasks");
}

#[test]
fn all_types_are_represented() {
    let corpus = generate_corpus(&CorpusConfig {
        n_tasks: 150,
        seed: 13,
        ..CorpusConfig::default()
    });
    for dtype in [DataType::Text, DataType::Number, DataType::Date] {
        assert!(!corpus.of_type(dtype).is_empty(), "missing {dtype:?} tasks");
    }
}
