//! Differential tests for the batched ranking pipeline (§3.4).
//!
//! Contract (see `cornet_core::rank`):
//!
//! * `Ranker::score_batch` is bit-identical, per candidate, to the serial
//!   `Ranker::score` loop — for all three rankers, under 1 and 4 threads;
//! * full `learn()` output (rules, order, score bits) is unchanged from the
//!   pre-batching serial baseline, which this suite replays inline;
//! * the column is embedded exactly once per learn call on the batched
//!   path, versus once per candidate on the serial path.

use cornet_repro::core::cluster::{cluster, ClusterConfig};
use cornet_repro::core::enumerate::{enumerate_rules, Candidate, EnumConfig};
use cornet_repro::core::features::{rule_features, FEATURE_DIM};
use cornet_repro::core::learner::{Cornet, CornetConfig};
use cornet_repro::core::predgen::{generate_predicates, infer_type, GenConfig};
use cornet_repro::core::rank::{
    score_descending, NeuralMode, NeuralRanker, RankContext, Ranker, SymbolicRanker,
};
use cornet_repro::core::signature::CellSignatures;
use cornet_repro::nn::hashing::embed_batch_calls;
use cornet_repro::pool::with_threads;
use cornet_repro::table::{BitVec, CellValue, DataType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One seeded random column + observed set, spanning the corpus's surface
/// flavours (text ids, status words, numerics, dates, mixed).
fn random_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..=40);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 5 {
            0 => {
                let prefix = *["RW", "RS", "TW"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.3) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(100..1000))
            }
            1 => (*["Open", "Closed", "Pending", "Blocked", "Done"]
                .choose(&mut rng)
                .unwrap())
            .to_string(),
            2 => format!("{}", rng.gen_range(-50..450) as f64 * 0.5),
            3 => format!(
                "202{}-{:02}-{:02}",
                rng.gen_range(0..4),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            _ => {
                if rng.gen_bool(0.6) {
                    format!("{}", rng.gen_range(0..100))
                } else {
                    format!("id-{}", rng.gen_range(0..30))
                }
            }
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let k = rng.gen_range(2..=5).min(n);
    let mut observed: Vec<usize> = indices.into_iter().take(k).collect();
    observed.sort_unstable();
    (cells, observed)
}

/// Everything the ranking stage consumes, precomputed for one column so
/// `RankContext`s can be borrowed from it.
struct RankFixture {
    cells: Vec<CellValue>,
    cell_texts: Vec<String>,
    labels: BitVec,
    no_negatives: BitVec,
    dtype: Option<DataType>,
    candidates: Vec<Candidate>,
    executions: Vec<(BitVec, [f64; FEATURE_DIM])>,
}

impl RankFixture {
    /// Runs the pipeline up to enumeration; `None` when the column yields
    /// no predicates or candidates.
    fn build(seed: u64) -> Option<RankFixture> {
        let (cells, observed) = random_table(seed);
        let predicates = generate_predicates(&cells, &GenConfig::default());
        if predicates.is_empty() {
            return None;
        }
        let signatures = CellSignatures::from_predicates(&predicates);
        let outcome = cluster(&signatures, &observed, &ClusterConfig::default());
        let candidates = enumerate_rules(&predicates, &outcome, &EnumConfig::default());
        if candidates.is_empty() {
            return None;
        }
        let cell_texts: Vec<String> = cells.iter().map(CellValue::display_string).collect();
        let dtype = infer_type(&cells);
        let executions: Vec<(BitVec, [f64; FEATURE_DIM])> = candidates
            .iter()
            .map(|cand| {
                let exec = cand.rule.execute(&cells);
                let features = rule_features(&cand.rule, &exec, &outcome.labels, dtype);
                (exec, features)
            })
            .collect();
        Some(RankFixture {
            no_negatives: BitVec::zeros(cells.len()),
            cells,
            cell_texts,
            labels: outcome.labels,
            dtype,
            candidates,
            executions,
        })
    }

    fn contexts(&self) -> Vec<RankContext<'_>> {
        self.candidates
            .iter()
            .zip(&self.executions)
            .map(|(cand, (execution, features))| RankContext {
                rule: &cand.rule,
                cell_texts: &self.cell_texts,
                execution,
                cluster_labels: &self.labels,
                negatives: &self.no_negatives,
                dtype: self.dtype,
                features: *features,
            })
            .collect()
    }
}

fn rankers() -> Vec<(String, Box<dyn Ranker>)> {
    let mut rng = StdRng::seed_from_u64(7);
    vec![
        ("symbolic".into(), Box::new(SymbolicRanker::heuristic())),
        (
            "hybrid".into(),
            Box::new(NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng)),
        ),
        (
            "neural-only".into(),
            Box::new(NeuralRanker::new(NeuralMode::NeuralOnly, 7, &mut rng)),
        ),
    ]
}

#[test]
fn score_batch_is_bitwise_identical_to_serial_under_both_thread_counts() {
    let rankers = rankers();
    let mut checked = 0usize;
    for seed in 0..20u64 {
        let Some(fixture) = RankFixture::build(seed) else {
            continue;
        };
        let ctxs = fixture.contexts();
        for (name, ranker) in &rankers {
            let serial: Vec<f64> = ctxs.iter().map(|ctx| ranker.score(ctx)).collect();
            for threads in [1usize, 4] {
                let batched = with_threads(threads, || ranker.score_batch(&ctxs));
                assert_eq!(batched.len(), serial.len());
                for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
                    assert_eq!(
                        b.to_bits(),
                        s.to_bits(),
                        "seed {seed}, ranker {name}, threads {threads}, candidate {i}: \
                         batched {b} != serial {s}"
                    );
                }
            }
            checked += ctxs.len();
        }
    }
    assert!(checked >= 100, "too few candidates exercised: {checked}");
}

/// Replays the pre-batching ranking stage — per-candidate `score` calls,
/// then the sort — and checks `learn()` returns the same rules in the same
/// order with the same score bits.
#[test]
fn learn_output_matches_the_serial_baseline() {
    for seed in [0u64, 1, 2, 3, 4, 7, 11] {
        let Some(fixture) = RankFixture::build(seed) else {
            continue;
        };
        let (_, observed) = random_table(seed);
        for (name, ranker) in rankers() {
            let ctxs = fixture.contexts();
            let mut baseline: Vec<(String, f64)> = ctxs
                .iter()
                .zip(&fixture.candidates)
                .map(|(ctx, cand)| (cand.rule.to_string(), ranker.score(ctx)))
                .collect();
            let token_len: std::collections::HashMap<String, usize> = fixture
                .candidates
                .iter()
                .map(|c| (c.rule.to_string(), c.rule.token_length()))
                .collect();
            baseline.sort_by(|a, b| {
                score_descending(a.1, b.1)
                    .then_with(|| token_len[&a.0].cmp(&token_len[&b.0]))
                    .then_with(|| a.0.cmp(&b.0))
            });

            for threads in [1usize, 4] {
                let outcome = with_threads(threads, || {
                    let cornet = Cornet::new(CornetConfig::default(), ranker_clone(&name));
                    cornet.learn(&fixture.cells, &observed).expect("learns")
                });
                assert_eq!(outcome.candidates.len(), baseline.len());
                for (got, want) in outcome.candidates.iter().zip(&baseline) {
                    assert_eq!(got.rule.to_string(), want.0, "seed {seed}, ranker {name}");
                    assert_eq!(
                        got.score.to_bits(),
                        want.1.to_bits(),
                        "seed {seed}, ranker {name}"
                    );
                }
            }
        }
    }
}

/// Rebuilds a ranker by name (the boxed ones aren't `Clone`).
fn ranker_clone(name: &str) -> Box<dyn Ranker> {
    rankers()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, r)| r)
        .expect("known ranker name")
}

/// The batched path embeds the column once per `score_batch` call; the
/// serial path pays one `embed_batch` per candidate. The counter is
/// thread-local, and the shared column embedding is computed on the calling
/// thread before the per-candidate fan-out, so the tally is race-free even
/// at 4 threads.
#[test]
fn column_is_embedded_once_per_batched_learn() {
    let fixture = RankFixture::build(0).expect("seed 0 yields candidates");
    let ctxs = fixture.contexts();
    assert!(ctxs.len() >= 2, "need multiple candidates to amortise");
    let mut rng = StdRng::seed_from_u64(7);
    let ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);

    for threads in [1usize, 4] {
        let before = embed_batch_calls();
        let _ = with_threads(threads, || ranker.score_batch(&ctxs));
        assert_eq!(
            embed_batch_calls() - before,
            1,
            "batched scoring at {threads} threads must embed the column exactly once"
        );
    }

    let before = embed_batch_calls();
    let _: Vec<f64> = ctxs.iter().map(|ctx| ranker.score(ctx)).collect();
    assert_eq!(
        embed_batch_calls() - before,
        ctxs.len() as u64,
        "serial scoring embeds once per candidate"
    );

    // End to end: one learn call, one column embedding.
    let (_, observed) = random_table(0);
    let mut rng = StdRng::seed_from_u64(7);
    let cornet = Cornet::new(
        CornetConfig::default(),
        NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng),
    );
    let before = embed_batch_calls();
    let outcome = cornet.learn(&fixture.cells, &observed).expect("learns");
    assert!(outcome.stats.n_candidates >= 2);
    assert_eq!(embed_batch_calls() - before, 1);
}

/// Ragged group shapes: `score_batch` groups candidates by consecutive
/// runs of one `cell_texts` pointer, so a batch mixing singleton groups,
/// an empty column, a many-candidate group, and the *same* column
/// reappearing as a later run must still match the serial loop bit for
/// bit — under 1 and 4 threads — and an empty batch must come back empty.
#[test]
fn score_batch_is_serial_identical_for_ragged_group_shapes() {
    let fixtures: Vec<RankFixture> = (0..12u64).filter_map(RankFixture::build).collect();
    assert!(fixtures.len() >= 3, "need three columns for a ragged batch");

    let empty_texts: Vec<String> = Vec::new();
    let empty_bits = BitVec::zeros(0);
    let empty_rule = &fixtures[0].candidates[0].rule;
    let empty_ctx = RankContext {
        rule: empty_rule,
        cell_texts: &empty_texts,
        execution: &empty_bits,
        cluster_labels: &empty_bits,
        negatives: &empty_bits,
        dtype: None,
        features: [0.0; FEATURE_DIM],
    };

    let (a, b, c) = (
        fixtures[0].contexts(),
        fixtures[1].contexts(),
        fixtures[2].contexts(),
    );
    let mut ragged: Vec<RankContext<'_>> = Vec::new();
    ragged.push(a[0].clone()); // singleton group
    ragged.push(empty_ctx.clone()); // empty column → constant 0.5
    ragged.extend(b.iter().cloned()); // many-candidate group
    ragged.extend(a.iter().cloned()); // column A again, as a fresh run
    ragged.push(empty_ctx); // empty column again
    ragged.push(c[0].clone()); // trailing singleton

    for (name, ranker) in rankers() {
        assert!(
            ranker.score_batch(&[]).is_empty(),
            "ranker {name}: empty batch"
        );
        let serial: Vec<f64> = ragged.iter().map(|ctx| ranker.score(ctx)).collect();
        for threads in [1usize, 4] {
            let batched = with_threads(threads, || ranker.score_batch(&ragged));
            assert_eq!(batched.len(), serial.len());
            for (i, (got, want)) in batched.iter().zip(&serial).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "ranker {name}, threads {threads}, position {i}: \
                     batched {got} != serial {want}"
                );
            }
        }
    }
}

/// Full-pipeline thread-count differential: `learn()` with the neural
/// ranker returns identical candidates (rules, order, score bits) at 1 and
/// 4 threads.
#[test]
fn learn_is_thread_count_invariant() {
    for seed in [0u64, 5, 10, 13] {
        let Some(fixture) = RankFixture::build(seed) else {
            continue;
        };
        let (_, observed) = random_table(seed);
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(7);
                let cornet = Cornet::new(
                    CornetConfig::default(),
                    NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng),
                );
                cornet
                    .learn(&fixture.cells, &observed)
                    .expect("learns")
                    .candidates
                    .into_iter()
                    .map(|c| (c.rule.to_string(), c.score.to_bits()))
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(4), "seed {seed}");
    }
}
