//! Integration tests spanning the whole workspace: CSV ingestion → Cornet
//! learning → formula export → formula evaluation.

use cornet_repro::core::prelude::*;
use cornet_repro::formula::{evaluate_bool, parse};
use cornet_repro::table::csv::parse_csv;
use cornet_repro::table::CellValue;

#[test]
fn csv_to_rule_to_formula_roundtrip() {
    let csv =
        "id,owner\nRW-187,ann\nRS-762,bob\nRW-159,cara\nRW-131-T,dan\nTW-224,eve\nRW-312,fred\n";
    let table = parse_csv(csv).expect("valid csv");
    let id = table.column("id").expect("id column");

    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&id.cells, &[0, 2, 5]).expect("learns");
    let rule = &outcome.best().rule;

    // The learned rule produces the paper's intended formatting.
    let mask = rule.execute(&id.cells);
    assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 2, 5]);

    // Exported as an Excel formula, re-parsed, and re-evaluated, the rule
    // behaves identically on every cell.
    let formula_text = rule.to_formula().to_string();
    let reparsed = parse(&formula_text).expect("exported formula parses");
    for (i, cell) in id.cells.iter().enumerate() {
        assert_eq!(evaluate_bool(&reparsed, cell), mask.get(i), "cell {i}");
    }
}

#[test]
fn learning_is_deterministic() {
    let cells: Vec<CellValue> = ["Pass", "Fail", "Pass", "Fail", "Pass", "Fail", "Pass"]
        .iter()
        .map(|s| CellValue::from(*s))
        .collect();
    let cornet = Cornet::with_default_ranker();
    let a = cornet.learn(&cells, &[0, 2]).expect("learns");
    let b = cornet.learn(&cells, &[0, 2]).expect("learns");
    assert_eq!(a.candidates.len(), b.candidates.len());
    for (x, y) in a.candidates.iter().zip(&b.candidates) {
        assert_eq!(x.rule.to_string(), y.rule.to_string());
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn mixed_type_columns_learn_on_majority_type() {
    // A numeric column with a stray text cell: predicates are numeric, the
    // stray cell never matches.
    let cells: Vec<CellValue> = ["10", "200", "12", "n/a", "230", "11", "250"]
        .iter()
        .map(|s| CellValue::parse(s))
        .collect();
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&cells, &[1, 4]).expect("learns");
    let mask = outcome.best().rule.execute(&cells);
    assert!(mask.get(1) && mask.get(4) && mask.get(6));
    assert!(!mask.get(3), "text cell cannot match numeric predicates");
}

#[test]
fn all_candidates_satisfy_examples_and_are_sorted() {
    let cells: Vec<CellValue> = [
        "INV-100", "ORD-200", "INV-101", "ORD-201", "INV-102", "ORD-202", "INV-103",
    ]
    .iter()
    .map(|s| CellValue::from(*s))
    .collect();
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&cells, &[0, 2, 4]).expect("learns");
    for pair in outcome.candidates.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
    for cand in &outcome.candidates {
        for &i in &[0usize, 2, 4] {
            assert!(
                cand.rule.eval(&cells[i]),
                "{} misses example {i}",
                cand.rule
            );
        }
    }
}

#[test]
fn error_paths_are_reported() {
    let cornet = Cornet::with_default_ranker();
    let uniform: Vec<CellValue> = vec![CellValue::from("same"); 5];
    assert!(matches!(
        cornet.learn(&uniform, &[0]),
        Err(LearnError::NoPredicates)
    ));
    assert!(matches!(
        cornet.learn(&uniform, &[]),
        Err(LearnError::NoExamples)
    ));
    assert!(matches!(
        cornet.learn(&uniform, &[9]),
        Err(LearnError::ExampleOutOfRange(9))
    ));
}
