//! Differential suite for the multi-class rule-set learner: the k=2
//! boolean path must stay bit-identical to the pre-rule-set learner.
//!
//! Three contracts are pinned here, each at 1 and 4 pool threads:
//!
//! * **Single class ≡ `learn_spec`** — a one-class [`RuleSetSpec`]
//!   (with or without hard negatives) replays `learn_spec` on the same
//!   positives/negatives bit for bit: rule display, score bits and run
//!   statistics. This is the historical binary task expressed as a set.
//! * **Single class, no negatives ≡ legacy `learn`** — the original
//!   `learn(cells, observed)` entry point, untouched by the refactor,
//!   agrees with the one-class set too.
//! * **k classes ≡ one-vs-rest `learn_spec`** — each rule of a k-class
//!   set equals `learn_spec` run with that class's positives against the
//!   union of the other classes' positives and the global negatives —
//!   including the abstention path, where class k's relaxed fallback must
//!   equal `learn_spec_relaxed` and carry `consistent:false`.

use cornet_repro::core::learner::{ClassSpec, Cornet, LearnError, LearnSpec, RuleSetSpec};
use cornet_repro::pool::with_threads;
use cornet_repro::table::{CellValue, Format};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One seeded random column + observed set covering the text / enum /
/// numeric / date / mixed surface flavours of the other differential
/// suites.
fn random_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..=40);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 5 {
            0 => {
                let prefix = *["RW", "RS", "TW"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.3) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(100..1000))
            }
            1 => (*["Open", "Closed", "Pending", "Blocked", "Done"]
                .choose(&mut rng)
                .unwrap())
            .to_string(),
            2 => format!("{}", rng.gen_range(-50..450) as f64 * 0.5),
            3 => format!(
                "202{}-{:02}-{:02}",
                rng.gen_range(0..4),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            _ => {
                if rng.gen_bool(0.6) {
                    format!("{}", rng.gen_range(0..100))
                } else {
                    format!("id-{}", rng.gen_range(0..30))
                }
            }
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let k = rng.gen_range(2..=5).min(n);
    let mut observed: Vec<usize> = indices.into_iter().take(k).collect();
    observed.sort_unstable();
    (cells, observed)
}

/// A hard negative that actually contradicts the learner: a non-observed
/// cell the unconstrained best rule formats.
fn pick_negative(cells: &[CellValue], observed: &[usize]) -> Option<usize> {
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(cells, observed).ok()?;
    let mask = outcome.best().rule.execute(cells);
    let negative = mask.iter_ones().find(|i| !observed.contains(i));
    negative
}

/// The comparable fingerprint of a learned rule: display string and the
/// exact score bits.
type RuleKey = (String, u64);

/// What `learn_spec` (falling back to `learn_spec_relaxed` on proven
/// abstention, exactly as `learn_ruleset` documents) returns for one
/// one-vs-rest class — the expected value for `rule_set.rules[k]`.
fn expected_one_vs_rest(
    cornet: &Cornet,
    cells: &[CellValue],
    positives: &[usize],
    mut rest: Vec<usize>,
) -> (RuleKey, bool) {
    rest.sort_unstable();
    rest.dedup();
    let spec = LearnSpec::new(cells.to_vec(), positives.to_vec()).with_negatives(rest);
    match cornet.learn_spec(&spec) {
        Ok(outcome) => {
            let best = outcome.best();
            ((best.rule.to_string(), best.score.to_bits()), true)
        }
        Err(LearnError::NoConsistentRule) => {
            let outcome = cornet.learn_spec_relaxed(&spec).expect("relaxed learns");
            let best = outcome.best();
            ((best.rule.to_string(), best.score.to_bits()), false)
        }
        Err(e) => panic!("unexpected learn error: {e}"),
    }
}

#[test]
fn single_class_set_is_bit_identical_to_learn_spec() {
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let (cells, observed) = random_table(seed);
        // With and without a hard negative: both legs of the k=2 path.
        let negative_sets: Vec<Vec<usize>> = match pick_negative(&cells, &observed) {
            Some(n) => vec![vec![], vec![n]],
            None => vec![vec![]],
        };
        for negatives in &negative_sets {
            for threads in [1usize, 4] {
                let spec = LearnSpec::new(cells.clone(), observed.clone())
                    .with_negatives(negatives.clone());
                let set_spec = RuleSetSpec::new(
                    cells.clone(),
                    vec![ClassSpec::new(Format::fill("#16a34a"), observed.clone())],
                )
                .with_negatives(negatives.clone());
                let (by_spec, by_set) = with_threads(threads, || {
                    let cornet = Cornet::with_default_ranker();
                    (cornet.learn_spec(&spec), cornet.learn_ruleset(&set_spec))
                });
                match by_spec {
                    Ok(outcome) => {
                        let best = outcome.best();
                        let set = by_set.expect("set learns when spec learns");
                        assert_eq!(set.rule_set.len(), 1);
                        let rule = &set.rule_set.rules[0];
                        assert!(rule.consistent, "seed {seed}, threads {threads}");
                        assert_eq!(
                            rule.rule.to_string(),
                            best.rule.to_string(),
                            "seed {seed}, threads {threads}, negatives {negatives:?}"
                        );
                        assert_eq!(
                            rule.score.to_bits(),
                            best.score.to_bits(),
                            "seed {seed}, threads {threads}, rule {}",
                            best.rule
                        );
                        // The per-class run statistics replay exactly too.
                        assert_eq!(set.class_stats.len(), 1);
                        assert_eq!(set.class_stats[0].n_predicates, outcome.stats.n_predicates);
                        assert_eq!(set.class_stats[0].n_candidates, outcome.stats.n_candidates);
                        assert_eq!(
                            set.class_stats[0].cluster_iterations,
                            outcome.stats.cluster_iterations
                        );
                        checked += 1;
                    }
                    Err(LearnError::NoConsistentRule) => {
                        // Abstention leg: the set must fall back to the
                        // relaxed learner, flagging the class inconsistent
                        // — or propagate the relaxed learner's own error.
                        let relaxed = with_threads(threads, || {
                            Cornet::with_default_ranker().learn_spec_relaxed(&spec)
                        });
                        match relaxed {
                            Ok(relaxed) => {
                                let best = relaxed.best();
                                let set = by_set.expect("set learns via the relaxed fallback");
                                let rule = &set.rule_set.rules[0];
                                assert!(!rule.consistent, "seed {seed}");
                                assert_eq!(
                                    rule.rule.to_string(),
                                    best.rule.to_string(),
                                    "seed {seed}"
                                );
                                assert_eq!(
                                    rule.score.to_bits(),
                                    best.score.to_bits(),
                                    "seed {seed}"
                                );
                                checked += 1;
                            }
                            Err(_) => {
                                assert!(by_set.is_err(), "seed {seed}: errors must agree");
                            }
                        }
                    }
                    Err(_) => {
                        assert!(by_set.is_err(), "seed {seed}: errors must agree");
                    }
                }
            }
        }
    }
    assert!(checked >= 15, "too few learnable fixtures: {checked}");
}

#[test]
fn single_class_set_without_negatives_matches_legacy_learn() {
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let (cells, observed) = random_table(seed);
        for threads in [1usize, 4] {
            let (legacy, by_set) = with_threads(threads, || {
                let cornet = Cornet::with_default_ranker();
                (
                    cornet.learn(&cells, &observed),
                    cornet.learn_ruleset(&RuleSetSpec::new(
                        cells.clone(),
                        vec![ClassSpec::new(Format::fill("#16a34a"), observed.clone())],
                    )),
                )
            });
            let Ok(legacy) = legacy else {
                assert!(by_set.is_err(), "seed {seed}: errors must agree");
                continue;
            };
            let best = legacy.best();
            let set = by_set.expect("set learns when legacy learn does");
            let rule = &set.rule_set.rules[0];
            assert_eq!(
                (rule.rule.to_string(), rule.score.to_bits()),
                (best.rule.to_string(), best.score.to_bits()),
                "seed {seed}, threads {threads}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 15, "too few learnable fixtures: {checked}");
}

#[test]
fn k_class_sets_replay_one_vs_rest_learn_spec() {
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let (cells, observed) = random_table(seed);
        // Second class: a cell the first class's unconstrained rule
        // formats, so the one-vs-rest hard negatives genuinely constrain;
        // third class (when the column is long enough): any other cell.
        let Some(contested) = pick_negative(&cells, &observed) else {
            continue;
        };
        let mut classes: Vec<Vec<usize>> = vec![observed.clone(), vec![contested]];
        if let Some(third) = (0..cells.len()).find(|i| !observed.contains(i) && *i != contested) {
            classes.push(vec![third]);
        }
        let specs: Vec<ClassSpec> = classes
            .iter()
            .zip(["#dcfce7", "#fef9c3", "#fee2e2"])
            .map(|(examples, fill)| ClassSpec::new(Format::fill(fill), examples.clone()))
            .collect();
        let set_spec = RuleSetSpec::new(cells.clone(), specs);
        for threads in [1usize, 4] {
            let outcome = with_threads(threads, || {
                Cornet::with_default_ranker().learn_ruleset(&set_spec)
            });
            let Ok(outcome) = outcome else {
                continue;
            };
            assert_eq!(outcome.rule_set.len(), classes.len());
            let cornet = Cornet::with_default_ranker();
            for (k, class) in classes.iter().enumerate() {
                let rest: Vec<usize> = classes
                    .iter()
                    .enumerate()
                    .filter(|(other, _)| *other != k)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                let (expected, consistent) = with_threads(threads, || {
                    expected_one_vs_rest(&cornet, &cells, class, rest.clone())
                });
                let rule = &outcome.rule_set.rules[k];
                assert_eq!(rule.priority, k as u32, "seed {seed}");
                assert_eq!(
                    (rule.rule.to_string(), rule.score.to_bits()),
                    expected,
                    "seed {seed}, threads {threads}, class {k}"
                );
                assert_eq!(rule.consistent, consistent, "seed {seed}, class {k}");
            }
            checked += 1;
        }
    }
    assert!(checked >= 10, "too few multi-class fixtures: {checked}");
}
