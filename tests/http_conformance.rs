//! Protocol-conformance battery for the keep-alive HTTP front-end:
//! pipelining order, connection reuse, mid-request disconnects, body and
//! header-size rejections, load shedding at the connection cap, slow
//! lorises on kept-alive sockets, and proptest serialize→parse
//! round-trips of the request codec.
//!
//! Every test runs against a real loopback socket so the whole stack —
//! accept thread, poller, worker pool, parser — is exercised, not just
//! the parser in isolation.

use cornet_repro::serve::http::{
    encode_request, http_request, parse_request, HttpClient, ParseOutcome, Server, ServerConfig,
    VecLog, MAX_BODY,
};
use cornet_repro::serve::service::{CornetService, ServiceConfig};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cornet-http-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service(dir: &PathBuf) -> Arc<CornetService> {
    Arc::new(
        CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap(),
    )
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let dir = temp_dir("pipeline");
    let server = Server::start_with("127.0.0.1:0", service(&dir), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    // Three requests written back-to-back before any response is read;
    // distinct routes prove the responses come back in request order.
    let mut burst = String::new();
    burst.push_str(&encode_request("GET", "/health", None, false));
    burst.push_str(&encode_request("GET", "/no/such/route", None, false));
    burst.push_str(&encode_request("GET", "/health", None, false));
    client.send_raw(burst.as_bytes()).unwrap();
    let statuses: Vec<u16> = (0..3).map(|_| client.read_one().unwrap().status).collect();
    assert_eq!(statuses, vec![200, 404, 200], "responses in request order");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_alive_reuses_one_connection_for_many_requests() {
    let dir = temp_dir("reuse");
    let log = Arc::new(VecLog::default());
    let config = ServerConfig {
        log: log.clone(),
        ..ServerConfig::default()
    };
    let server = Server::start_with("127.0.0.1:0", service(&dir), config).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for _ in 0..4 {
        let response = client.request("GET", "/health", None).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    let records = log.records();
    assert_eq!(records.len(), 4, "one record per request");
    let conn = records[0].conn;
    assert!(
        records.iter().all(|r| r.conn == conn),
        "all four requests share one connection id: {records:?}"
    );
    assert!(records
        .iter()
        .all(|r| r.status == 200 && r.path == "/health"));
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_request_disconnects_leave_the_server_healthy() {
    let dir = temp_dir("disconnect");
    let server = Server::start_with("127.0.0.1:0", service(&dir), ServerConfig::default()).unwrap();
    // A client that quits halfway through sending its request.
    for _ in 0..3 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /learn HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"cells\":[")
            .unwrap();
        drop(stream);
    }
    // The server keeps answering.
    let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
    assert_eq!(status, 200);
    // And the dead connections drain from the live count.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), 0, "disconnects reclaimed");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let dir = temp_dir("oversize");
    let server = Server::start_with("127.0.0.1:0", service(&dir), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    // The Content-Length alone trips the cap — no body need be sent.
    let head = format!(
        "POST /learn HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY + 1
    );
    client.send_raw(head.as_bytes()).unwrap();
    let response = client.read_one().unwrap();
    assert_eq!(response.status, 413);
    assert_eq!(
        response.header("connection"),
        Some("close"),
        "protocol errors close the connection"
    );
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_are_rejected_with_400() {
    let dir = temp_dir("malformed");
    let server = Server::start_with("127.0.0.1:0", service(&dir), ServerConfig::default()).unwrap();
    let cases: &[&str] = &[
        // No version in the request line.
        "GET /health\r\n\r\n",
        // Unsupported protocol version.
        "GET /health HTTP/2.0\r\n\r\n",
        // Header line without a colon.
        "GET /health HTTP/1.1\r\nBadHeader\r\n\r\n",
        // Space inside a header name.
        "GET /health HTTP/1.1\r\nBad Name: x\r\n\r\n",
        // Conflicting Content-Length headers.
        "POST /learn HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab",
        // Transfer-Encoding is not supported.
        "POST /learn HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ];
    for case in cases {
        let mut client = HttpClient::connect(server.addr()).unwrap();
        client.send_raw(case.as_bytes()).unwrap();
        let response = client.read_one().unwrap();
        assert_eq!(response.status, 400, "case {case:?}");
    }
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn excess_connections_are_shed_with_503_and_retry_after() {
    let dir = temp_dir("shed");
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = Server::start_with("127.0.0.1:0", service(&dir), config).unwrap();
    // Two keep-alive connections occupy the whole cap; a round-trip on
    // each proves the accept thread has registered them.
    let mut first = HttpClient::connect(server.addr()).unwrap();
    let mut second = HttpClient::connect(server.addr()).unwrap();
    assert_eq!(first.request("GET", "/health", None).unwrap().status, 200);
    assert_eq!(second.request("GET", "/health", None).unwrap().status, 200);
    assert_eq!(server.live_connections(), 2);

    // The third connection is shed cleanly: 503, Retry-After, close.
    let mut shed = HttpClient::connect(server.addr()).unwrap();
    let response = shed.read_one().unwrap();
    assert_eq!(response.status, 503);
    assert!(
        response.header("retry-after").is_some(),
        "shed response names a retry delay: {:?}",
        response.headers
    );
    assert_eq!(response.header("connection"), Some("close"));

    // In-flight traffic on the surviving connections is unaffected.
    assert_eq!(first.request("GET", "/health", None).unwrap().status, 200);
    assert_eq!(second.request("GET", "/health", None).unwrap().status, 200);

    // Releasing a connection frees capacity for new clients.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
    assert_eq!(status, 200, "capacity recovered after a disconnect");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_slow_loris_on_a_kept_alive_socket_is_timed_out() {
    let dir = temp_dir("loris");
    let config = ServerConfig {
        request_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start_with("127.0.0.1:0", service(&dir), config).unwrap();
    // The attacker first behaves: one complete request keeps the socket
    // alive, then a second request stalls after a few bytes.
    let mut loris = HttpClient::connect(server.addr()).unwrap();
    assert_eq!(loris.request("GET", "/health", None).unwrap().status, 200);
    loris
        .send_raw(b"POST /learn HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"cel")
        .unwrap();

    // Other clients stay fast while the loris dangles.
    let t0 = Instant::now();
    let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "stalled connection must not block other clients"
    );

    // The stalled request is reaped: a best-effort 408 (or a straight
    // close, if the kernel buffered nothing) ends the connection.
    match loris.read_one() {
        Ok(response) => assert_eq!(response.status, 408),
        Err(_) => {} // closed without a response — also a clean reap
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), 0, "loris connection reclaimed");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// `encode_request` output always parses back to the same request,
    /// consuming exactly the encoded bytes.
    #[test]
    fn encoded_requests_parse_back_exactly(
        method in "[A-Z]{1,8}",
        path_tail in "[a-zA-Z0-9_/.-]{0,24}",
        body in ".{0,64}",
        close in any::<bool>(),
    ) {
        let path = format!("/{path_tail}");
        let wire = encode_request(&method, &path, Some(&body), close);
        match parse_request(wire.as_bytes()) {
            ParseOutcome::Ready { request, consumed } => {
                prop_assert_eq!(consumed, wire.len(), "no bytes left behind");
                prop_assert_eq!(&request.method, &method);
                prop_assert_eq!(&request.path, &path);
                prop_assert_eq!(&request.body, &body);
                prop_assert_eq!(request.keep_alive, !close);
            }
            other => prop_assert!(false, "expected Ready, got {:?} for {:?}", other, wire),
        }
    }

    /// Any strict prefix of an encoded request is `Incomplete` — the
    /// incremental parser never mis-frames a partial read.
    #[test]
    fn encoded_request_prefixes_are_incomplete(
        body in ".{0,32}",
        cut in any::<u16>(),
    ) {
        let wire = encode_request("POST", "/score", Some(&body), false);
        let cut = (cut as usize) % wire.len().max(1);
        prop_assert_eq!(
            parse_request(&wire.as_bytes()[..cut]),
            ParseOutcome::Incomplete,
            "prefix of {} bytes", cut
        );
    }

    /// Two pipelined requests parse back one at a time, in order, with
    /// `consumed` delimiting them exactly.
    #[test]
    fn pipelined_encodings_parse_in_order(
        body_a in ".{0,32}",
        body_b in ".{0,32}",
    ) {
        let first = encode_request("POST", "/learn", Some(&body_a), false);
        let second = encode_request("POST", "/score", Some(&body_b), true);
        let wire = format!("{first}{second}");
        let ParseOutcome::Ready { request, consumed } = parse_request(wire.as_bytes()) else {
            panic!("first request did not parse: {wire:?}");
        };
        prop_assert_eq!(&request.body, &body_a);
        prop_assert_eq!(consumed, first.len());
        prop_assert!(request.keep_alive);
        let ParseOutcome::Ready { request, consumed } =
            parse_request(&wire.as_bytes()[first.len()..])
        else {
            panic!("second request did not parse: {wire:?}");
        };
        prop_assert_eq!(&request.body, &body_b);
        prop_assert_eq!(consumed, second.len());
        prop_assert!(!request.keep_alive);
    }
}
