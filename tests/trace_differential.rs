//! Differential tests for tracing: observability must be purely
//! observational. Installing a trace sink (and the span timers it
//! activates) must not change *anything* the learner computes — rules,
//! order, score bits, stats — on either pool path.
//!
//! Contract: for seeded random columns spanning the corpus's surface,
//! `Cornet::learn_spec` returns bit-identical output with a [`VecSink`]
//! installed and with tracing disabled, at `with_threads(1)` (the inline
//! fast path) and `with_threads(4)` (the work-stealing path). The traced
//! runs must actually emit the learner-stage spans, so the suite cannot
//! pass vacuously with instrumentation compiled out.
//!
//! The trace sink is process-global; tests in this binary serialize on
//! [`SINK_LOCK`] so one test's sink never observes (or disables)
//! another's.

use cornet_repro::core::learner::{Cornet, LearnError, LearnSpec};
use cornet_repro::obs::{clear_trace_sink, set_trace_sink, VecSink};
use cornet_repro::pool::with_threads;
use cornet_repro::table::CellValue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard};

static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Take the global-sink lock, tolerating poisoning: a panic in another
/// test must not cascade into spurious lock failures here.
fn sink_lock() -> MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One seeded random column + observed set (same surface flavours as the
/// other differential suites: ids, status words, numerics, dates, mixed).
fn random_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..=40);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 5 {
            0 => {
                let prefix = *["RW", "RS", "TW"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.3) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(100..1000))
            }
            1 => (*["Open", "Closed", "Pending", "Blocked", "Done"]
                .choose(&mut rng)
                .unwrap())
            .to_string(),
            2 => format!("{}", rng.gen_range(-50..450) as f64 * 0.5),
            3 => format!(
                "202{}-{:02}-{:02}",
                rng.gen_range(0..4),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            _ => {
                if rng.gen_bool(0.6) {
                    format!("{}", rng.gen_range(0..100))
                } else {
                    format!("id-{}", rng.gen_range(0..30))
                }
            }
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let k = rng.gen_range(2..=5).min(n);
    let mut observed = indices[..k].to_vec();
    observed.sort_unstable();
    (cells, observed)
}

/// Everything the learner returns, down to the bits: per-candidate rule
/// display, score bits and accuracy bits, plus the stage stats. Errors
/// fingerprint as their debug form so abstentions must also agree.
type Fingerprint = Result<(Vec<(String, u64, u64)>, usize, usize, usize), String>;

fn fingerprint(cells: &[CellValue], observed: &[usize], threads: usize) -> Fingerprint {
    with_threads(threads, || {
        let cornet = Cornet::with_default_ranker();
        let spec = LearnSpec::new(cells.to_vec(), observed.to_vec());
        match cornet.learn_spec(&spec) {
            Ok(outcome) => Ok((
                outcome
                    .candidates
                    .iter()
                    .map(|c| {
                        (
                            c.rule.to_string(),
                            c.score.to_bits(),
                            c.cluster_accuracy.to_bits(),
                        )
                    })
                    .collect(),
                outcome.stats.n_predicates,
                outcome.stats.n_candidates,
                outcome.stats.cluster_iterations,
            )),
            Err(e) => Err(format!("{e:?}")),
        }
    })
}

#[test]
fn tracing_does_not_change_learner_output() {
    let _serial = sink_lock();
    for threads in [1usize, 4] {
        let mut nonempty = 0;
        for seed in 0..30u64 {
            let (cells, observed) = random_table(seed);
            clear_trace_sink();
            let baseline = fingerprint(&cells, &observed, threads);

            let sink = Arc::new(VecSink::default());
            set_trace_sink(sink.clone());
            let traced = fingerprint(&cells, &observed, threads);
            clear_trace_sink();

            assert_eq!(
                traced, baseline,
                "seed {seed}, {threads} threads: learner output changed under tracing"
            );
            // Non-vacuity: the traced run really went through the
            // instrumented stages.
            let spans: Vec<String> = sink.events().into_iter().map(|e| e.span).collect();
            assert!(
                spans.iter().any(|s| s.starts_with("learn.")),
                "seed {seed}, {threads} threads: no learner span reached the sink"
            );
            if baseline.as_ref().is_ok_and(|(c, ..)| !c.is_empty()) {
                nonempty += 1;
            }
        }
        assert!(
            nonempty >= 10,
            "only {nonempty}/30 tables produced candidates at {threads} threads — \
             suite too vacuous"
        );
    }
}

#[test]
fn successful_learns_emit_every_pipeline_stage_span() {
    let _serial = sink_lock();
    let cells: Vec<CellValue> = ["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]
        .iter()
        .map(|s| CellValue::parse(s))
        .collect();
    let sink = Arc::new(VecSink::default());
    clear_trace_sink();
    set_trace_sink(sink.clone());
    let outcome = Cornet::with_default_ranker().learn(&cells, &[0, 2, 5]);
    clear_trace_sink();
    assert!(outcome.is_ok(), "running example must learn");
    let spans: Vec<String> = sink.events().into_iter().map(|e| e.span).collect();
    for stage in ["learn.predgen", "learn.cluster", "learn.rank"] {
        assert!(
            spans.iter().any(|s| s == stage),
            "stage span {stage:?} missing from trace: {spans:?}"
        );
    }
    // One of the two search strategies must have run.
    assert!(
        spans
            .iter()
            .any(|s| s == "learn.enumerate" || s == "learn.fullsearch"),
        "no search-stage span in trace: {spans:?}"
    );
}

#[test]
fn tracing_preserves_abstention_errors_bit_for_bit() {
    let _serial = sink_lock();
    // Cells 0 and 1 hold the same value with conflicting labels: the
    // learner must abstain identically with and without a sink.
    let cells: Vec<CellValue> = ["x", "x", "y", "z"]
        .iter()
        .map(|s| CellValue::parse(s))
        .collect();
    let spec = LearnSpec::new(cells, vec![0]).with_negatives(vec![1]);
    let run = || {
        let cornet = Cornet::with_default_ranker();
        cornet
            .learn_spec(&spec)
            .map(|o| o.candidates.len())
            .map_err(|e: LearnError| format!("{e:?}"))
    };
    clear_trace_sink();
    let baseline = run();
    set_trace_sink(Arc::new(VecSink::default()));
    let traced = run();
    clear_trace_sink();
    assert_eq!(traced, baseline, "abstention path changed under tracing");
}
