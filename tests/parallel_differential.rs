//! Differential tests for the parallel `full_search`: whatever
//! `CORNET_THREADS` resolves to must never change *what* the search finds.
//!
//! Contract (see `cornet_core::fullsearch`):
//!
//! * with unconstraining budgets the candidate list — rules, order and
//!   `cluster_accuracy` bits — is identical for 1, 2 and 8 threads;
//! * with binding budgets every thread count returns an order-preserving
//!   subsequence of the uncapped serial list, within every budget.
//!
//! The tables are ~50 seeded random columns spanning the corpus's surface:
//! text ids, status words, numerics, dates and mixed-type columns, with
//! varying lengths and observed sets.

use cornet_repro::core::cluster::{cluster, ClusterConfig, ClusterOutcome};
use cornet_repro::core::fullsearch::{full_search, FullSearchConfig};
use cornet_repro::core::predgen::{generate_predicates, GenConfig, PredicateSet};
use cornet_repro::core::signature::CellSignatures;
use cornet_repro::pool::with_threads;
use cornet_repro::table::CellValue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One seeded random column + observed set. `seed % 5` picks the flavour so
/// the 50 seeds sweep all five.
fn random_table(seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..=40);
    let raw: Vec<String> = (0..n)
        .map(|_| match seed % 5 {
            0 => {
                let prefix = *["RW", "RS", "TW"].choose(&mut rng).unwrap();
                let suffix = if rng.gen_bool(0.3) { "-T" } else { "" };
                format!("{prefix}-{}{suffix}", rng.gen_range(100..1000))
            }
            1 => (*["Open", "Closed", "Pending", "Blocked", "Done"]
                .choose(&mut rng)
                .unwrap())
            .to_string(),
            2 => format!("{}", rng.gen_range(-50..450) as f64 * 0.5),
            3 => format!(
                "202{}-{:02}-{:02}",
                rng.gen_range(0..4),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
            _ => {
                if rng.gen_bool(0.6) {
                    format!("{}", rng.gen_range(0..100))
                } else {
                    format!("id-{}", rng.gen_range(0..30))
                }
            }
        })
        .collect();
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let k = rng.gen_range(2..=5).min(n);
    let mut observed = indices[..k].to_vec();
    observed.sort_unstable();
    (cells, observed)
}

fn setup(cells: &[CellValue], observed: &[usize]) -> (PredicateSet, ClusterOutcome) {
    // Cap the predicate space so the uncapped pair triangle stays testable.
    let preds = generate_predicates(
        cells,
        &GenConfig {
            max_predicates: 12,
            ..GenConfig::default()
        },
    );
    let sigs = CellSignatures::from_predicates(&preds);
    let outcome = cluster(&sigs, observed, &ClusterConfig::default());
    (preds, outcome)
}

/// Budgets that never bind on the capped predicate space above.
fn uncapped() -> FullSearchConfig {
    FullSearchConfig {
        max_depth: 2,
        max_candidates: 1 << 30,
        max_conjuncts: 1 << 30,
        max_pair_evals: 1 << 30,
        ..FullSearchConfig::default()
    }
}

/// Budgets small enough to bind on most of the tables.
fn capped() -> FullSearchConfig {
    FullSearchConfig {
        max_depth: 2,
        max_candidates: 8,
        max_conjuncts: 48,
        max_pair_evals: 300,
        ..FullSearchConfig::default()
    }
}

/// Candidate fingerprint: display form plus exact accuracy bits. Accuracy
/// is summed in a fixed per-candidate order, so bits must match across
/// thread counts.
fn fingerprint(
    preds: &PredicateSet,
    outcome: &ClusterOutcome,
    config: &FullSearchConfig,
    threads: usize,
) -> Vec<(String, u64)> {
    with_threads(threads, || {
        full_search(preds, outcome, config)
            .iter()
            .map(|c| (c.rule.to_string(), c.cluster_accuracy.to_bits()))
            .collect()
    })
}

/// Is `sub` an order-preserving subsequence of `full`?
fn is_subsequence(sub: &[(String, u64)], full: &[(String, u64)]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|x| it.any(|y| y == x))
}

#[test]
fn uncapped_search_is_bit_identical_across_thread_counts() {
    let mut nonempty = 0;
    for seed in 0..50u64 {
        let (cells, observed) = random_table(seed);
        let (preds, outcome) = setup(&cells, &observed);
        let config = uncapped();
        let serial = fingerprint(&preds, &outcome, &config, 1);
        for threads in [2, 8] {
            let parallel = fingerprint(&preds, &outcome, &config, threads);
            assert_eq!(
                parallel, serial,
                "seed {seed}: {threads}-thread uncapped output diverged from serial"
            );
        }
        if !serial.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty >= 10,
        "only {nonempty}/50 tables produced candidates — suite too vacuous"
    );
}

#[test]
fn capped_search_is_a_prefix_consistent_subset_on_every_thread_count() {
    let mut binding = 0;
    for seed in 0..50u64 {
        let (cells, observed) = random_table(seed);
        let (preds, outcome) = setup(&cells, &observed);
        let reference = fingerprint(&preds, &outcome, &uncapped(), 1);
        let config = capped();
        let serial_capped = fingerprint(&preds, &outcome, &config, 1);
        if serial_capped.len() < reference.len() {
            binding += 1;
        }
        for threads in [1, 2, 8] {
            let got = fingerprint(&preds, &outcome, &config, threads);
            assert!(
                got.len() <= config.max_candidates,
                "seed {seed}, {threads} threads: candidate budget exceeded"
            );
            assert!(
                is_subsequence(&got, &reference),
                "seed {seed}, {threads} threads: capped output is not an \
                 order-preserving subsequence of the uncapped serial output"
            );
        }
    }
    assert!(
        binding >= 5,
        "caps bound on only {binding}/50 tables — tighten the capped budgets"
    );
}

#[test]
fn capped_serial_output_is_the_uncapped_prefix_under_the_candidate_budget() {
    // On the inline path the budgets cut off at exactly the serial prefix
    // of the enumeration; with only max_candidates binding this means the
    // capped serial list IS the head of the uncapped list.
    for seed in 0..50u64 {
        let (cells, observed) = random_table(seed);
        let (preds, outcome) = setup(&cells, &observed);
        let reference = fingerprint(&preds, &outcome, &uncapped(), 1);
        let config = FullSearchConfig {
            max_candidates: 4,
            ..uncapped()
        };
        let capped_serial = fingerprint(&preds, &outcome, &config, 1);
        let want = &reference[..reference.len().min(4)];
        assert_eq!(
            capped_serial, want,
            "seed {seed}: serial candidate cap must keep the uncapped prefix"
        );
    }
}
