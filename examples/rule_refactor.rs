//! Rule refactoring (Q4 of the paper): take a convoluted user-written
//! conditional-formatting formula, recover its formatting, and let Cornet
//! propose a shorter equivalent rule.
//!
//! Run with `cargo run --example rule_refactor`.

use cornet_repro::core::prelude::*;
use cornet_repro::formula::{evaluate_bool, parse, token_length};
use cornet_repro::table::CellValue;

fn main() {
    // A formula a user actually wrote (Table 7 style): prefix test via LEFT
    // wrapped in a gratuitous IF.
    let user_formula = parse("IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)").expect("parses");

    let raw = [
        "Dr Smith", "Mr Jones", "Dr Patel", "Ms Green", "Dr Huang", "Mr Brown", "Dr Silva",
        "Ms Wood", "Mrs King", "Dr Novak",
    ];
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::from(*s)).collect();

    // Execute the user's formula to recover the formatting it produces.
    let formatted: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| evaluate_bool(&user_formula, c))
        .map(|(i, _)| i)
        .collect();
    println!("User formula    : ={user_formula}");
    println!("Token length    : {}", token_length(&user_formula));
    println!("Formats rows    : {formatted:?}\n");

    // Hand the formatting to Cornet as examples and learn a rule.
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&cells, &formatted).expect("rule learnable");
    let best = outcome.best();

    println!("Cornet rule     : {}", best.rule);
    println!("Token length    : {}", best.rule.token_length());
    println!("As Excel        : ={}\n", best.rule.to_formula());

    // Execution equivalence on the whole column.
    let mask = best.rule.execute(&cells);
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(mask.get(i), evaluate_bool(&user_formula, cell));
    }
    assert!(
        best.rule.token_length() < token_length(&user_formula),
        "the refactored rule should be shorter"
    );
    println!(
        "Equivalent formatting with {} tokens instead of {} — \
         approximately the 60% shortening the paper reports for custom formulas.",
        best.rule.token_length(),
        token_length(&user_formula)
    );
}
