//! Q5 of the paper: discovering conditional formatting for users who format
//! by hand. Given a column whose cells were hand-colored (no rule recorded),
//! Cornet proposes the rule the user could have written — and reports how
//! few examples would have sufficed.
//!
//! Run with `cargo run --example manual_discovery`.

use cornet_repro::core::prelude::*;
use cornet_repro::table::CellValue;

fn main() {
    // An invoice ledger where someone hand-painted every overdue row.
    let raw = [
        ("INV-2201", "Paid"),
        ("INV-2202", "Overdue"),
        ("INV-2203", "Paid"),
        ("INV-2204", "Overdue"),
        ("INV-2205", "Paid"),
        ("INV-2206", "Paid"),
        ("INV-2207", "Overdue"),
        ("INV-2208", "Paid"),
        ("INV-2209", "Overdue"),
        ("INV-2210", "Paid"),
    ];
    let status: Vec<CellValue> = raw.iter().map(|(_, s)| CellValue::from(*s)).collect();
    let hand_colored: Vec<usize> = raw
        .iter()
        .enumerate()
        .filter(|(_, (_, s))| *s == "Overdue")
        .map(|(i, _)| i)
        .collect();
    println!("Hand-colored rows: {hand_colored:?}");

    // Step 1 (Figure 18): learn from ALL hand-colored cells.
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&status, &hand_colored).expect("learnable");
    let best = outcome.best();
    println!("Proposed rule    : {}", best.rule);
    println!("As Excel CF      : ={}", best.rule.to_formula());
    assert!(
        best.rule.predicate_count() < hand_colored.len(),
        "rule is more compact than the manual formatting"
    );

    // Step 2 (Figure 19): the minimum number of examples that would have
    // sufficed.
    let gold = best.rule.execute(&status);
    let mut needed = hand_colored.len();
    for k in 1..=hand_colored.len() {
        let some: Vec<usize> = hand_colored.iter().copied().take(k).collect();
        if let Ok(out) = cornet.learn(&status, &some) {
            if out.best().rule.execute(&status) == gold {
                needed = k;
                break;
            }
        }
    }
    println!(
        "\nThe user colored {} cells by hand; {} example(s) would have been \
         enough for Cornet to do the rest.",
        hand_colored.len(),
        needed
    );
    assert!(needed <= 2);
}
