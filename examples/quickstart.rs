//! Quickstart: learn a conditional-formatting rule from two formatted cells.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is the paper's running example (Figures 1 and 2): the user wants to
//! highlight ids that start with "RW" but not the retired "-T" ones. They
//! format a few cells; Cornet proposes the rule.

use cornet_repro::core::prelude::*;
use cornet_repro::table::CellValue;

fn main() {
    // The column from Figure 2.
    let cells: Vec<CellValue> = ["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]
        .iter()
        .map(|s| CellValue::from(*s))
        .collect();

    // The user formats three cells (the two RW ids at the top and the one
    // at the bottom — the skipped RW-131-T in between is the negative
    // evidence for the NOT clause).
    let observed = vec![0, 2, 5];

    let cornet = Cornet::with_default_ranker();
    let outcome = cornet
        .learn(&cells, &observed)
        .expect("a rule is learnable");

    println!("Learned {} candidate rule(s).\n", outcome.candidates.len());
    let best = outcome.best();
    println!("Best rule : {}", best.rule);
    println!("As Excel  : ={}", best.rule.to_formula());
    println!("Score     : {:.3}\n", best.score);

    println!("Applied to the column:");
    let mask = best.rule.execute(&cells);
    for (i, cell) in cells.iter().enumerate() {
        let marker = if mask.get(i) { "█" } else { " " };
        let given = if observed.contains(&i) {
            "  ← example"
        } else {
            ""
        };
        println!("  {marker} {}{given}", cell.display_string());
    }
}
