//! Text scenario: flag the failing rows of an issue tracker export, compare
//! Cornet with the baselines, and inspect rule candidates.
//!
//! Run with `cargo run --example issue_tracker`.
//!
//! This is the paper's §5 head-to-head setting in miniature (Table 4 /
//! Figure 10): the same task is given to Cornet and to every baseline of
//! §4 — decision trees with and without predicate features, Popper-style
//! ILP, COP-KMeans constrained clustering — and their predicted
//! formatting masks are printed against the gold pattern.

use cornet_repro::baselines::{
    CopKmeans, PopperBaseline, PredicateDecisionTree, RawDecisionTree, TaskLearner,
};
use cornet_repro::core::prelude::*;
use cornet_repro::table::CellValue;

fn main() {
    // status column of an exported issue tracker.
    let raw = [
        "BUG-1021 failing",
        "BUG-1022 passing",
        "BUG-1023 failing",
        "BUG-1024 blocked",
        "BUG-1025 passing",
        "BUG-1026 failing",
        "BUG-1027 passing",
        "BUG-1028 blocked",
        "BUG-1029 failing",
        "BUG-1030 passing",
    ];
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::from(*s)).collect();

    // The triager colors the first two failing rows.
    let observed = vec![0, 2];

    println!("Cornet candidates (best first):");
    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&cells, &observed).expect("rule learnable");
    for cand in outcome.candidates.iter().take(4) {
        println!(
            "  {:.3}  {}  → formats {} rows",
            cand.score,
            cand.rule,
            cand.rule.execute(&cells).count_ones()
        );
    }
    let best_mask = outcome.best().rule.execute(&cells);
    assert_eq!(best_mask.iter_ones().collect::<Vec<_>>(), vec![0, 2, 5, 8]);

    println!("\nBaselines on the same task:");
    let baselines: Vec<Box<dyn TaskLearner>> = vec![
        Box::new(RawDecisionTree),
        Box::new(PredicateDecisionTree::plain()),
        Box::new(PopperBaseline::with_predicates()),
        Box::new(CopKmeans::default()),
    ];
    for learner in &baselines {
        let pred = learner.predict(&cells, &observed);
        let mask: String = pred
            .mask
            .iter()
            .map(|b| if b { '#' } else { '.' })
            .collect();
        let rule = pred
            .rule
            .map(|r| r.to_string())
            .unwrap_or_else(|| "(no rule)".into());
        println!("  {:<40} {}  {}", learner.name(), mask, rule);
    }
    println!("\ngold pattern                             #.#..#..#.");
}
