//! Numeric scenario: highlight the high-revenue rows of a sales report.
//!
//! Run with `cargo run --example sales_thresholds`.
//!
//! A sales table has a `revenue` column with two natural groups (regular
//! and enterprise deals). The analyst formats two enterprise rows; Cornet
//! recovers a threshold rule that captures the whole group — without the
//! analyst writing `=$B2>25000` by hand.

use cornet_repro::core::prelude::*;
use cornet_repro::table::csv::parse_csv;

const SALES_CSV: &str = "\
account,revenue
Acme Corp,3100
Globex,2800
Initech,41500
Umbrella,2650
Hooli,38000
Stark Industries,2900
Wayne Enterprises,45200
Pied Piper,3350
Wonka Industries,2450
Cyberdyne,39800
";

fn main() {
    let table = parse_csv(SALES_CSV).expect("valid csv");
    let revenue = table.column("revenue").expect("revenue column");
    let accounts = table.column("account").expect("account column");

    // The analyst highlights Initech and Hooli.
    let observed = vec![2, 4];

    let cornet = Cornet::with_default_ranker();
    let outcome = cornet
        .learn(&revenue.cells, &observed)
        .expect("rule learnable");
    let best = outcome.best();

    println!("Learned rule : {}", best.rule);
    println!("Excel formula: ={}\n", best.rule.to_formula());

    let mask = best.rule.execute(&revenue.cells);
    println!("{:<20} {:>10}  formatted?", "account", "revenue");
    for i in 0..revenue.len() {
        println!(
            "{:<20} {:>10}  {}",
            accounts.cells[i].display_string(),
            revenue.cells[i].display_string(),
            if mask.get(i) { "YES" } else { "" }
        );
    }

    // The rule generalises: every enterprise deal is formatted, including
    // the ones the analyst never touched.
    let enterprise: Vec<usize> = vec![2, 4, 6, 9];
    assert_eq!(mask.iter_ones().collect::<Vec<_>>(), enterprise);
    println!("\nAll four enterprise deals are formatted from two examples.");
}
