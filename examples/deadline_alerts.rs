//! Date scenario: highlight weekend shifts in a roster.
//!
//! Run with `cargo run --example deadline_alerts`.
//!
//! Date columns are the hardest type for rule learning (Figure 12 of the
//! paper): day, month, year and weekday signals all compete. Here the
//! manager formats the weekend shifts; Cornet needs to discover that the
//! *weekday* part is what the examples share.

use cornet_repro::core::prelude::*;
use cornet_repro::table::CellValue;

fn main() {
    // Two weeks of shifts (2024-03-04 is a Monday).
    let raw = [
        "2024-03-04",
        "2024-03-05",
        "2024-03-06",
        "2024-03-07",
        "2024-03-08",
        "2024-03-09",
        "2024-03-10",
        "2024-03-11",
        "2024-03-12",
        "2024-03-13",
        "2024-03-14",
        "2024-03-15",
        "2024-03-16",
        "2024-03-17",
    ];
    let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();

    // The manager highlights the first weekend (Sat 9th, Sun 10th) and the
    // second Saturday.
    let observed = vec![5, 6, 12];

    let cornet = Cornet::with_default_ranker();
    let outcome = cornet.learn(&cells, &observed).expect("rule learnable");
    let best = outcome.best();

    println!("Learned rule : {}", best.rule);
    println!("Excel formula: ={}\n", best.rule.to_formula());

    let mask = best.rule.execute(&cells);
    for (i, cell) in cells.iter().enumerate() {
        let date = cell.as_date().unwrap();
        println!(
            "  {} {:<9} {}",
            cell.display_string(),
            format!("{:?}", date.weekday()),
            if mask.get(i) { "■ weekend" } else { "" }
        );
    }

    // Both weekends fully formatted — including the Sunday the manager
    // never clicked.
    assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![5, 6, 12, 13]);
}
