//! Umbrella crate for the Cornet reproduction workspace.
//!
//! Re-exports the member crates under friendly names so examples and
//! integration tests can use a single dependency:
//!
//! * [`core`] — the Cornet learner (predicates, clustering, enumeration,
//!   ranking),
//! * [`table`] — cell values, columns, CSV ingestion,
//! * [`formula`] — the mini Excel formula language,
//! * [`corpus`] — the synthetic benchmark generator,
//! * [`baselines`] — every baseline of the paper's §4,
//! * [`eval`] — the experiment harness (tables/figures of §5),
//! * [`pool`] — the work-stealing thread pool behind the parallel hot
//!   paths (`CORNET_THREADS` controls the worker count),
//! * [`obs`] — metrics registry, span timers and trace sinks behind the
//!   `/metrics` endpoint,
//! * [`serde`] — the hand-rolled JSON codec (persistence + wire format),
//! * [`serve`] — the rule-store service and its HTTP front-end,
//! * [`dtree`], [`nn`], [`ilp`] — the substrate crates.

pub use cornet_baselines as baselines;
pub use cornet_core as core;
pub use cornet_corpus as corpus;
pub use cornet_dtree as dtree;
pub use cornet_eval as eval;
pub use cornet_formula as formula;
pub use cornet_ilp as ilp;
pub use cornet_nn as nn;
pub use cornet_obs as obs;
pub use cornet_pool as pool;
pub use cornet_serde as serde;
pub use cornet_serve as serve;
pub use cornet_table as table;
