//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand` features the Cornet reproduction actually uses are
//! reimplemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::SliceRandom`).
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the corpus generator and the tests rely
//! on. It is **not** cryptographically secure and makes no attempt to match
//! the value streams of the real crate.

/// A source of random `u64`s. Object-safe; [`Rng`] is blanket-implemented
/// for every `RngCore` (including `dyn RngCore`).
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only [`seed_from_u64`](SeedableRng::seed_from_u64)
/// is provided; the workspace never seeds from byte arrays or entropy.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution: uniform over the type
/// for integers and `bool`, uniform in `[0, 1)` for floats.
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding up to `high` on extreme spans.
                if v < high { v } else { low }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`]
/// (including trait objects, mirroring the real crate).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see [`SampleStandard`]).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with values from the standard distribution.
    fn fill<T: SampleStandard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators. Only [`StdRng`] is provided.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded through SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same name, same seeding entry
    /// point, different (but fixed) value stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (`choose`, `choose_multiple`, `shuffle`).

    use super::{Rng, RngCore};

    /// Iterator over elements sampled without replacement by
    /// [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random sampling methods on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `min(amount, len)` distinct elements, uniformly without
        /// replacement, in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up uniform.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.6);
            assert!((0.25..0.6).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = [1, 2, 3, 4, 5];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked: Vec<i32> = pool.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "choose_multiple must not repeat");

        // More than available: capped at slice length.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 5);

        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut back = v.clone();
        back.sort_unstable();
        assert_eq!(back, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = Rng::gen_range(dyn_rng, 0..10usize);
        assert!(v < 10);
        let pool = ["a", "b"];
        assert!(pool.choose(dyn_rng).is_some());
    }
}
