//! No-op derive macros backing the offline `serde` stub (see
//! `vendor/serde`).
//!
//! Each derive expands to an empty token stream: the annotated type gains no
//! impls, which is fine because the stub traits are never used as bounds.
//! The derives exist purely so `#[derive(serde::Serialize)]` attributes in
//! the workspace compile without the real (network-fetched) serde.

use proc_macro::TokenStream;

/// Expands to nothing; placeholder for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; placeholder for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
