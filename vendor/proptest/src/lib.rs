//! Offline mini property-testing harness exposing the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by this
//! workspace's property tests: [`Strategy`](strategy::Strategy) with
//! [`prop_map`](strategy::Strategy::prop_map), [`Just`](strategy::Just),
//! [`any`](arbitrary::any), numeric-range and string-pattern strategies,
//! tuple composition, [`collection::vec`](collection::vec()), and the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] / [`prop_assert_eq!`]
//! macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! corpus: each `proptest!` test runs a fixed number of deterministically
//! seeded cases (override with the `PROPTEST_CASES` environment variable)
//! and reports the case number on failure, which is enough to reproduce it.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of one type from an RNG.
    pub trait Strategy {
        /// Type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies with a common value type;
    /// built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        options: Vec<Rc<dyn Strategy<Value = V>>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// Creates a union with no options; add them with [`Union::or`].
        pub fn empty() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one option.
        pub fn or<S>(mut self, strategy: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.options.push(Rc::new(strategy));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    /// String-pattern strategy: a `&str` is interpreted as a sequence of
    /// `.` / `[class]` / literal-character elements, each optionally
    /// quantified with `{n}` or `{m,n}` — the subset of proptest's regex
    /// strategies this workspace uses.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for canonical per-type strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, usable via [`any`].
    pub trait Arbitrary: Sized {
        /// Generates one canonical value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Output of [`vec()`]: generates `Vec`s of values from an element
    /// strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `Vec`s with elements from `element` and length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! Pattern interpreter behind the `&str` strategy.

    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    #[derive(Debug)]
    enum Element {
        /// `.` — any printable character from a mixed ASCII/Unicode pool.
        AnyChar,
        /// `[...]` — one character from the listed set.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated [class] in pattern {pattern:?}"));
            match c {
                ']' => break,
                '-' => {
                    // A range like `a-z` if bracketed by chars; literal `-`
                    // at the start/end of the class.
                    match (prev, chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                            set.extend(lo..=hi);
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                c => {
                    set.push(c);
                    prev = Some(c);
                }
            }
        }
        assert!(!set.is_empty(), "empty [class] in pattern {pattern:?}");
        set
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier lower bound"),
                        hi.trim().parse().expect("bad quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier count");
                        (n, n)
                    }
                };
                assert!(lo <= hi, "bad quantifier {{{spec}}} in pattern {pattern:?}");
                return (lo, hi);
            }
            spec.push(c);
        }
        panic!("unterminated quantifier in pattern {pattern:?}");
    }

    /// Characters `.` draws from: printable ASCII plus a few multibyte
    /// characters so parsers see non-ASCII input too.
    const ANY_POOL: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '-', '_', '.', ',', ':', ';', '!', '?',
        '#', '$', '%', '&', '(', ')', '[', ']', '{', '}', '"', '\'', '/', '\\', '+', '=', '<', '>',
        '|', '~', '^', '@', 'é', 'ß', 'λ', '→', '你', '🦀',
    ];

    /// Generates one string matching `pattern` (see the `&str` strategy
    /// docs for the supported subset).
    pub fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let element = match c {
                '.' => Element::AnyChar,
                '[' => Element::Class(parse_class(&mut chars, pattern)),
                c => Element::Literal(c),
            };
            let (lo, hi) = parse_quantifier(&mut chars, pattern);
            elements.push((element, lo, hi));
        }

        let mut out = String::new();
        for (element, lo, hi) in &elements {
            let count = rng.gen_range(*lo..=*hi);
            for _ in 0..count {
                match element {
                    Element::AnyChar => out.push(*ANY_POOL.choose(rng).unwrap()),
                    Element::Class(set) => out.push(*set.choose(rng).unwrap()),
                    Element::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod test_runner {
    //! Seeding and case-count plumbing used by the [`proptest!`](crate::proptest) macro
    //! expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases each property runs; `PROPTEST_CASES` overrides the
    /// default of 64.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic RNG for one (test, case) pair.
    pub fn rng_for_case(test_name: &str, case: u64) -> StdRng {
        // FNV-1a over the test name so each property gets its own stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strategy))+
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// On failure the panic message includes the case number; re-running the
/// same binary reproduces it (generation is deterministic per test name).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut proptest_rng =
                        $crate::test_runner::rng_for_case(stringify!($name), case);
                    $(let $arg = ($strategy).generate(&mut proptest_rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || $body
                    ));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest: property {} failed at case {case}/{cases}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn pattern_strategies_match_shapes() {
        let mut rng = rng_for_case("pattern_strategies_match_shapes", 0);
        for case in 0..200u64 {
            let mut rng2 = rng_for_case("shape", case);
            let s = "[a-zA-Z0-9 _-]{0,12}".generate(&mut rng2);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));

            let t = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&t.chars().count()));

            let any_len = ".{0,24}".generate(&mut rng);
            assert!(any_len.chars().count() <= 24);

            let lit = "RW-[0-9]{3}".generate(&mut rng);
            assert!(lit.starts_with("RW-") && lit.len() == 6);
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strategy = prop_oneof![Just(0i64), (1i64..10).prop_map(|v| v * 100),];
        let cloned = strategy.clone();
        let mut rng = rng_for_case("union_and_map_compose", 1);
        for _ in 0..100 {
            let v = cloned.generate(&mut rng);
            assert!(v == 0 || (100..1000).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_length_bounds() {
        let strategy = crate::collection::vec(any::<bool>(), 1..4);
        let mut rng = rng_for_case("vec_strategy_length_bounds", 2);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        /// The harness's own macro: tuples, ranges and `any` compose.
        #[test]
        fn self_check(flag in any::<bool>(), pair in (0i32..5, 10i32..20)) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
            prop_assert_eq!(flag as i32 * 2 % 2, 0);
        }
    }
}
