//! Offline stub of the [`serde`](https://crates.io/crates/serde) façade.
//!
//! The workspace's data types carry `#[derive(serde::Serialize,
//! serde::Deserialize)]` so that a future PR can persist learned rules and
//! corpora, but the build environment has no network access. This stub keeps
//! those derives compiling: the traits are empty markers and the derive
//! macros (re-exported from `serde_derive`) expand to nothing. Swapping in
//! the real crate is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`. No methods; nothing in the
/// workspace serializes yet.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. No methods; nothing in the
/// workspace deserializes yet.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
