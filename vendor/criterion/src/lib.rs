//! Offline mini benchmark harness exposing the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API the Cornet benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Statistics are deliberately simple but robust: each benchmark is warmed
//! up briefly, timed over `sample_size` samples whose iteration counts are
//! sized to a fixed per-sample budget, then samples outside the Tukey
//! fences (1.5 × IQR beyond the quartiles) are rejected and the
//! **min/median/max of the surviving samples** are printed, with the
//! rejection count when non-zero. The median of fenced samples is stable
//! against the scheduler hiccups that dominate short benches; swap in the
//! real crate for confidence intervals once the build environment has
//! network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates the id `{function_name}/{parameter}`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    sample_budget: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing one mean-per-iteration duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: run until ~10ms elapse to size samples.
        let calibration_start = Instant::now();
        let mut calibration_iters: u32 = 0;
        while calibration_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed() / calibration_iters.max(1);
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (self.sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Robust summary of a benchmark's samples after Tukey-fence outlier
/// rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleStats {
    /// Fastest surviving sample.
    pub min: Duration,
    /// Median of the surviving samples.
    pub median: Duration,
    /// Slowest surviving sample.
    pub max: Duration,
    /// Samples rejected as outliers.
    pub rejected: usize,
}

/// Median of a sorted slice (mean of the middle two for even lengths).
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Computes min/median/max after rejecting samples outside the Tukey
/// fences `[q1 - 1.5·IQR, q3 + 1.5·IQR]` (quartiles by nearest rank).
/// With fewer than 4 samples there is no meaningful IQR and nothing is
/// rejected. Returns `None` for an empty sample set.
pub fn robust_stats(samples: &[Duration]) -> Option<SampleStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let kept: Vec<Duration> = if sorted.len() < 4 {
        sorted.clone()
    } else {
        let q1 = sorted[(sorted.len() - 1) / 4];
        let q3 = sorted[3 * (sorted.len() - 1) / 4];
        let iqr = q3.saturating_sub(q1);
        let lo = q1.saturating_sub(iqr * 3 / 2);
        let hi = q3 + iqr * 3 / 2;
        sorted
            .iter()
            .copied()
            .filter(|&s| s >= lo && s <= hi)
            .collect()
    };
    // The fences always keep the quartiles themselves, so `kept` is
    // non-empty whenever `sorted` is.
    Some(SampleStats {
        min: *kept.first().unwrap(),
        median: median_of_sorted(&kept),
        max: *kept.last().unwrap(),
        rejected: sorted.len() - kept.len(),
    })
}

fn run_one(
    full_id: &str,
    sample_size: usize,
    sample_budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_size,
        sample_budget,
    };
    f(&mut bencher);
    let Some(stats) = robust_stats(&samples) else {
        println!("{full_id:<50} (no samples)");
        return;
    };
    let outliers = if stats.rejected > 0 {
        format!(" ({} outliers rejected)", stats.rejected)
    } else {
        String::new()
    };
    println!(
        "{full_id:<50} time: [{} {} {}]{outliers}",
        format_duration(stats.min),
        format_duration(stats.median),
        format_duration(stats.max),
    );
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Compatibility no-op: the shim sizes samples from a fixed budget.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_one(
            &full_id,
            self.sample_size,
            self.criterion.sample_budget,
            &mut routine,
        );
        self
    }

    /// Benchmarks `routine` with a borrowed input under `{group}/{id}`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_one(
            &full_id,
            self.sample_size,
            self.criterion.sample_budget,
            &mut |b| routine(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level harness handle passed to `criterion_group!` functions.
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Per-sample time budget; keeps `cargo bench` runs short.
            sample_budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Opens a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks `routine` under `id` without a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.sample_budget;
        run_one(&id.to_string(), 10, budget, &mut routine);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_millis(v)).collect()
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(robust_stats(&[]).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        let stats = robust_stats(&ms(&[3, 1, 2])).unwrap();
        assert_eq!(stats.median, Duration::from_millis(2));
        assert_eq!(stats.rejected, 0);
        let stats = robust_stats(&ms(&[4, 1, 2, 3])).unwrap();
        // Mean of the middle two: (2 + 3) / 2.
        assert_eq!(stats.median, Duration::from_micros(2500));
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let stats = robust_stats(&ms(&[7])).unwrap();
        assert_eq!(stats.min, stats.median);
        assert_eq!(stats.median, stats.max);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn a_wild_outlier_is_rejected() {
        // Nine tight samples and one scheduler hiccup 100× slower.
        let mut samples = ms(&[10, 11, 10, 12, 11, 10, 11, 12, 10]);
        samples.push(Duration::from_millis(1000));
        let stats = robust_stats(&samples).unwrap();
        assert_eq!(stats.rejected, 1, "the 1s sample is outside the fence");
        assert_eq!(stats.max, Duration::from_millis(12));
        assert_eq!(stats.median, Duration::from_millis(11));
    }

    #[test]
    fn tight_samples_keep_everything() {
        let stats = robust_stats(&ms(&[10, 11, 12, 13, 14, 15])).unwrap();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.min, Duration::from_millis(10));
        assert_eq!(stats.max, Duration::from_millis(15));
    }

    #[test]
    fn identical_samples_survive_a_zero_iqr() {
        let stats = robust_stats(&ms(&[5, 5, 5, 5, 5])).unwrap();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.median, Duration::from_millis(5));
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order. Command-line arguments
/// (e.g. the `--bench` flag cargo passes) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
