//! Microbenchmarks of the rankers (§3.4): feature computation, symbolic
//! scoring, and the neural ranker's attention forward pass.

use cornet_bench::bench_tasks;
use cornet_core::features::rule_features;
use cornet_core::predgen::infer_type;
use cornet_core::rank::{NeuralMode, NeuralRanker, RankContext, Ranker, SymbolicRanker};
use cornet_table::CellValue;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking");
    group.sample_size(30);
    let task = bench_tasks(100, 1, 41).pop().expect("task");
    let rule = task.rule.clone();
    let execution = rule.execute(&task.cells);
    let labels = task.formatted.clone();
    let cell_texts: Vec<String> = task.cells.iter().map(CellValue::display_string).collect();
    let dtype = infer_type(&task.cells);

    group.bench_function("rule_features", |b| {
        b.iter(|| std::hint::black_box(rule_features(&rule, &execution, &labels, dtype)));
    });

    let features = rule_features(&rule, &execution, &labels, dtype);
    let no_negatives = cornet_table::BitVec::zeros(task.cells.len());
    let ctx = RankContext {
        rule: &rule,
        cell_texts: &cell_texts,
        execution: &execution,
        cluster_labels: &labels,
        negatives: &no_negatives,
        dtype,
        features,
    };

    let symbolic = SymbolicRanker::heuristic();
    group.bench_function("symbolic_score", |b| {
        b.iter(|| std::hint::black_box(symbolic.score(&ctx)));
    });

    let mut rng = StdRng::seed_from_u64(43);
    let neural = NeuralRanker::new(NeuralMode::Hybrid, 43, &mut rng);
    group.bench_function("neural_score", |b| {
        b.iter(|| std::hint::black_box(neural.score(&ctx)));
    });
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
