//! Scaling of the parallel `full_search` over thread counts.
//!
//! One fixed seeded text column (the Figure 11 construction at depth 3),
//! one uncapped-budget search, measured with the worker count pinned to
//! 1, 2, 4 and 8 via `cornet_pool::with_threads`. Predicate generation and
//! clustering are hoisted out of the measured body: the bench isolates the
//! stage the pool parallelises. On multicore hardware the 4-thread line
//! should sit well under half the 1-thread line; on a single hardware
//! core the lines collapse (the pool still schedules correctly, there is
//! just no parallelism to harvest).

use cornet_core::cluster::{cluster, ClusterConfig, ClusterOutcome};
use cornet_core::fullsearch::{full_search, FullSearchConfig};
use cornet_core::predgen::{generate_predicates, GenConfig, PredicateSet};
use cornet_core::predicate::{Predicate, TextOp};
use cornet_core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_core::signature::CellSignatures;
use cornet_pool::with_threads;
use cornet_table::CellValue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fig11 deep-rule column: random `{AX,BX}-nnn-S` ids whose target rule
/// is an AND chain of `depth` literals.
fn deep_task(depth: usize, n: usize, seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    const SUFFIXES: [&str; 6] = ["T", "U", "V", "W", "X", "Y"];
    let mut rng = StdRng::seed_from_u64(seed);
    let cells: Vec<CellValue> = (0..n)
        .map(|_| {
            let prefix = if rng.gen_bool(0.5) { "AX" } else { "BX" };
            let num = rng.gen_range(100..1000);
            let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
            CellValue::Text(format!("{prefix}-{num}-{suffix}"))
        })
        .collect();
    let mut literals = vec![RuleLiteral::pos(Predicate::Text {
        op: TextOp::StartsWith,
        pattern: "AX".into(),
    })];
    for suffix in SUFFIXES.iter().take(depth.saturating_sub(1)) {
        literals.push(RuleLiteral::neg(Predicate::Text {
            op: TextOp::EndsWith,
            pattern: (*suffix).to_string(),
        }));
    }
    let rule = Rule::new(vec![Conjunct::new(literals)]);
    let observed: Vec<usize> = rule.execute(&cells).iter_ones().take(3).collect();
    (cells, observed)
}

fn fixture() -> (PredicateSet, ClusterOutcome, FullSearchConfig) {
    let (cells, observed) = deep_task(3, 80, 29);
    let predicates = generate_predicates(
        &cells,
        &GenConfig {
            max_predicates: 28,
            ..GenConfig::default()
        },
    );
    let signatures = CellSignatures::from_predicates(&predicates);
    let outcome = cluster(&signatures, &observed, &ClusterConfig::default());
    let config = FullSearchConfig {
        max_depth: 3,
        max_candidates: 1 << 30,
        max_conjuncts: 1 << 30,
        max_pair_evals: 1 << 30,
        ..FullSearchConfig::default()
    };
    (predicates, outcome, config)
}

fn bench_fullsearch_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullsearch_parallel");
    group.sample_size(10);
    let (predicates, outcome, config) = fixture();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    with_threads(threads, || {
                        std::hint::black_box(full_search(&predicates, &outcome, &config))
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fullsearch_parallel);
criterion_main!(benches);
