//! Figure 9: rule learning time vs column length, for Cornet, the decision
//! tree baseline, Popper and the TUTA-style neural baseline.
//!
//! The paper's shape: Cornet and the decision tree stay fast as columns
//! grow; Popper's hypothesis space blows up; TUTA inference is the
//! slowest at scale.

use cornet_baselines::{
    CellClassifier, CornetLearner, NeuralVariant, PopperBaseline, PredicateDecisionTree,
    TaskLearner,
};
use cornet_bench::bench_tasks;
use cornet_core::learner::CornetConfig;
use cornet_core::rank::SymbolicRanker;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_column_length");
    group.sample_size(10);
    let cornet = CornetLearner::new(
        CornetConfig::default(),
        SymbolicRanker::heuristic(),
        "cornet",
    );
    let dtree = PredicateDecisionTree::plain();
    let popper = PopperBaseline::with_predicates();
    let mut rng = StdRng::seed_from_u64(17);
    let tuta = CellClassifier::new(NeuralVariant::TutaLike, 17, &mut rng);

    for &n in &[10usize, 50, 100, 500] {
        let tasks = bench_tasks(n, 3, 7);
        let systems: Vec<(&str, &dyn TaskLearner)> = vec![
            ("cornet", &cornet),
            ("decision_tree", &dtree),
            ("popper", &popper),
            ("tuta", &tuta),
        ];
        for (name, learner) in systems {
            group.bench_with_input(BenchmarkId::new(name, n), &tasks, |b, tasks| {
                b.iter(|| {
                    for task in tasks {
                        let observed = task.examples(3);
                        std::hint::black_box(learner.predict(&task.cells, &observed));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
