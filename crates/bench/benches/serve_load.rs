//! Open-loop HTTP load harness: N concurrent keep-alive connections
//! firing `/score` requests at a fixed target arrival rate against a
//! real `cornet-serve` socket, reporting p50/p95/p99 latency and
//! achieved requests/sec.
//!
//! Open loop means latency is measured from each request's *scheduled*
//! arrival time, not from when the client got around to sending it — a
//! slow server cannot hide queueing delay by slowing the generator down
//! (coordinated omission). Each connection keeps its socket alive for
//! the whole run, so the numbers exercise the keep-alive front-end, not
//! connection setup.
//!
//! Knobs (environment):
//! * `SERVE_LOAD_CONNS` — concurrent connections (default 8)
//! * `SERVE_LOAD_RPS` — target aggregate arrival rate (default 400)
//! * `SERVE_LOAD_REQUESTS` — total requests (default 2000)
//! * `SERVE_LOAD_SMOKE=1` — short CI mode (4 conns, 200 req @ 200/s)
//!
//! Runs under `cargo bench -p cornet-bench --bench serve_load`; exits
//! non-zero if any request fails, so CI's `serve-load-smoke` job
//! exercises the whole client/server path on every push.

use cornet_corpus::{generate_corpus_sharded, CorpusConfig};
use cornet_obs::expo::Exposition;
use cornet_serve::http::{http_request_text, HttpClient};
use cornet_serve::service::{CornetService, LearnRequest, ServiceConfig};
use cornet_serve::{Server, ServerConfig};
use cornet_table::CellValue;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Percentile by nearest rank over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Scrapes and parses `GET /metrics`; `None` (skipping the server-side
/// report) if the endpoint is off or the exposition does not parse.
fn scrape(addr: SocketAddr) -> Option<Exposition> {
    let (status, text) = http_request_text(addr, "GET", "/metrics").ok()?;
    if status != 200 {
        return None;
    }
    cornet_obs::expo::parse(&text).ok()
}

/// Counter/gauge delta between two scrapes (0 when a sample is absent).
fn delta(before: &Exposition, after: &Exposition, name: &str, labels: &[(&str, &str)]) -> f64 {
    after.value(name, labels).unwrap_or(0.0) - before.value(name, labels).unwrap_or(0.0)
}

fn main() {
    // Cargo passes `--bench` (and test-filter args); accept and ignore.
    let smoke = std::env::var("SERVE_LOAD_SMOKE").is_ok_and(|v| v == "1");
    // Same knob as the cornet-serve binary: CORNET_TRACE installs the
    // stderr span sink, so the harness can measure tracing overhead
    // (results/serve_load_obs.md) with the identical production path.
    let traced = std::env::var("CORNET_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    if traced {
        cornet_obs::set_trace_sink(Arc::new(cornet_obs::StderrSink));
    }
    let conns = env_usize("SERVE_LOAD_CONNS", if smoke { 4 } else { 8 });
    let rps = env_usize("SERVE_LOAD_RPS", if smoke { 200 } else { 400 });
    let total = env_usize("SERVE_LOAD_REQUESTS", if smoke { 200 } else { 2000 });

    let dir = std::env::temp_dir().join(format!("cornet-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = CornetService::new(&ServiceConfig {
        store_dir: dir.clone(),
        cache_capacity: 64,
        ..ServiceConfig::default()
    })
    .expect("open store");

    // Pre-learn a realistic corpus mix; the load is scoring stored rules
    // (the bulk workload of a deployed service).
    let corpus = generate_corpus_sharded(
        &CorpusConfig {
            seed: 0xBEEF,
            n_tasks: 24,
            ..CorpusConfig::default()
        },
        8,
    );
    let mut work: Vec<(String, String)> = Vec::new(); // (rule_id, cells json)
    for task in &corpus.tasks {
        let cells: Vec<String> = task.cells.iter().map(CellValue::display_string).collect();
        let req = LearnRequest {
            cells: cells.clone(),
            examples: task.examples(3),
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        if let Ok(learned) = service.learn(&req) {
            let quoted: Vec<String> = cells.iter().map(|c| format!("{:?}", c)).collect();
            work.push((learned.rule_id, format!("[{}]", quoted.join(","))));
        }
    }
    assert!(!work.is_empty(), "no rules learned from the corpus");
    let work = Arc::new(work);

    let config = ServerConfig {
        max_connections: conns + 16,
        ..ServerConfig::from_env()
    };
    let server = Server::start_with("127.0.0.1:0", Arc::new(service), config).expect("bind");
    let addr = server.addr();

    println!(
        "serve_load: {conns} keep-alive connections, target {rps} req/s, {total} requests{}{}",
        if smoke { " (smoke mode)" } else { "" },
        if traced { " (stderr trace sink)" } else { "" }
    );

    // Server-side view: scrape /metrics before and after the run, report
    // deltas alongside the client-side percentiles below.
    let metrics_before = scrape(addr);

    let start = Instant::now() + Duration::from_millis(50);
    let per_request = Duration::from_secs_f64(1.0 / rps as f64);
    let handles: Vec<_> = (0..conns)
        .map(|t| {
            let work = Arc::clone(&work);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    HttpClient::connect(addr).map_err(|e| format!("conn {t}: connect: {e}"))?;
                let mut latencies = Vec::new();
                let mut j = 0usize;
                loop {
                    // Global request index: connections interleave on the
                    // shared schedule, so the aggregate arrival rate is
                    // `rps` regardless of the connection count.
                    let i = j * conns + t;
                    if i >= total {
                        return Ok(latencies);
                    }
                    let scheduled = start + per_request * i as u32;
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let (rule_id, cells) = &work[i % work.len()];
                    let body = format!(r#"{{"rule_id":"{rule_id}","cells":{cells}}}"#);
                    let response = client
                        .request("POST", "/score", Some(&body))
                        .map_err(|e| format!("conn {t} req {i}: {e}"))?;
                    if response.status != 200 {
                        return Err(format!("conn {t} req {i}: status {}", response.status));
                    }
                    let done = Instant::now();
                    latencies.push(done.duration_since(scheduled).as_micros() as u64);
                    j += 1;
                }
            })
        })
        .collect();

    let mut all: Vec<u64> = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("load thread panicked") {
            Ok(lat) => all.extend(lat),
            Err(e) => failures.push(e),
        }
    }
    let elapsed = start.elapsed();
    let metrics_after = scrape(addr);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("serve_load: FAIL {f}");
        }
        std::process::exit(1);
    }
    assert_eq!(all.len(), total, "every scheduled request completed");
    all.sort_unstable();
    let achieved = all.len() as f64 / elapsed.as_secs_f64();
    println!(
        "serve_load: p50 {} µs · p95 {} µs · p99 {} µs · max {} µs · {:.0} req/s achieved",
        percentile(&all, 50.0),
        percentile(&all, 95.0),
        percentile(&all, 99.0),
        all.last().copied().unwrap_or(0),
        achieved,
    );
    if let (Some(before), Some(after)) = (metrics_before, metrics_after) {
        let score = [("route", "/score")];
        let served = delta(
            &before,
            &after,
            "cornet_http_requests_total",
            &[("route", "/score"), ("status", "200")],
        );
        let dur_sum = delta(
            &before,
            &after,
            "cornet_http_request_duration_seconds_sum",
            &score,
        );
        let dur_count = delta(
            &before,
            &after,
            "cornet_http_request_duration_seconds_count",
            &score,
        );
        let mean_us = if dur_count > 0.0 {
            dur_sum / dur_count * 1e6
        } else {
            0.0
        };
        let hits = delta(&before, &after, "cornet_store_hits_total", &[]);
        let misses = delta(&before, &after, "cornet_store_misses_total", &[]);
        println!(
            "serve_load: server-side /score: {served:.0} × 200 · mean {mean_us:.0} µs \
             (routing + write) · store hits {hits:.0} / misses {misses:.0}"
        );
    } else {
        println!("serve_load: /metrics unavailable, server-side report skipped");
    }
}
