//! Retrieval scaling harness for the suggestion index: exact ball-tree
//! k-NN vs the brute-force linear scan over real stored-rule embeddings,
//! swept across corpus sizes. This is the perf claim behind `/suggest`
//! being viable at production scale — retrieval must be sublinear in the
//! number of stored rules, and the two sides must return *identical*
//! neighbor lists (the differential suite pins the same property; the
//! harness re-checks it on every corpus before timing anything).
//!
//! Knobs (environment):
//! * `SUGGEST_INDEX_QUERIES` — queries per corpus (default 256)
//! * `SUGGEST_INDEX_K` — neighbors per query (default 8)
//! * `SUGGEST_INDEX_SMOKE=1` — short CI mode (64 queries, 100/1k corpora)
//!
//! Runs under `cargo bench -p cornet-bench --bench suggest_index`; exits
//! non-zero if the tree and the scan ever disagree.

use cornet_nn::BallTree;
use cornet_serve::suggest::embed_column;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Column families a cross-corpus store accumulates: each is a distinct
/// column *vocabulary* — the value set of one spreadsheet template's
/// status/category/id column, shared by every user of that template.
/// Two users' columns sample different subsets of the same vocabulary
/// but rarely invent values outside it (a "status" column holds the
/// template's statuses, an id column its prefix scheme). Many such
/// families with a few stored rules each is what "millions of users"
/// looks like, and it is exactly the structure ball-tree pruning
/// exploits: a query lands inside its family's ball and the rest are
/// excluded by the triangle inequality.
struct Families {
    vocabularies: Vec<Vec<String>>,
    rng: StdRng,
}

/// Distinct values per family vocabulary.
const VOCAB_SIZE: usize = 6;

/// Cells sampled per column.
const COLUMN_CELLS: usize = 12;

/// Stored rules per family: how many users of one template have learned
/// a rule over its column. Pruning sharpens as families grow past the
/// tree's leaf size, because leaves become family-pure.
const FAMILY_SIZE: usize = 64;

impl Families {
    fn new(count: usize, seed: u64) -> Families {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocabularies = (0..count)
            .map(|_| {
                let len = rng.gen_range(10..16usize);
                let prefix: String = (0..len)
                    .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
                    .collect();
                (0..VOCAB_SIZE).map(|v| format!("{prefix}-{v}")).collect()
            })
            .collect();
        Families { vocabularies, rng }
    }

    /// A column of family `f`: cells sampled from the family's
    /// vocabulary (the way two users' columns share a template's value
    /// set but not the same subset of it).
    fn column(&mut self, f: usize) -> Vec<String> {
        let vocab = &self.vocabularies[f % self.vocabularies.len()];
        (0..COLUMN_CELLS)
            .map(|_| vocab[self.rng.gen_range(0..vocab.len())].clone())
            .collect()
    }
}

/// `n` stored-rule embeddings through the real suggestion embedder,
/// round-robin across the families.
fn corpus(families: &mut Families, n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| embed_column(&families.column(i))).collect()
}

/// Median of a sorted-in-place sample, in nanoseconds per query.
fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("SUGGEST_INDEX_SMOKE").is_ok_and(|v| v == "1");
    let n_queries = env_usize("SUGGEST_INDEX_QUERIES", if smoke { 64 } else { 256 });
    let k = env_usize("SUGGEST_INDEX_K", 8);
    let sizes: &[usize] = if smoke {
        &[100, 1000]
    } else {
        &[100, 1000, 10_000]
    };

    println!("suggest_index: exact ball-tree k-NN vs brute-force linear scan");
    println!("queries per corpus: {n_queries}, k: {k}");

    let mut speedup_at_largest = 0.0f64;
    for &n in sizes {
        // A store of n rules holds roughly one family per FAMILY_SIZE rules.
        let mut families = Families::new((n / FAMILY_SIZE).max(8), 0xC0DE + n as u64);
        let points = corpus(&mut families, n);
        let dim = points[0].len();
        let tree = BallTree::build(dim, &points);
        // Off-corpus queries from the same families (the bare columns a
        // user submits are never byte-identical to a stored one).
        let queries: Vec<Vec<f64>> = (0..n_queries)
            .map(|i| embed_column(&families.column(i * 7 + 3)))
            .collect();

        // Correctness gate before any timing: both sides must agree on
        // every query, bitwise.
        for q in &queries {
            assert_eq!(
                tree.nearest(q, k),
                tree.nearest_linear(q, k),
                "tree and linear scan disagree at n={n}"
            );
        }

        let mut tree_ns: Vec<u128> = Vec::with_capacity(queries.len());
        let mut linear_ns: Vec<u128> = Vec::with_capacity(queries.len());
        // Interleave the two sides per query so drift (thermal, cache)
        // hits both equally.
        for q in &queries {
            let started = Instant::now();
            black_box(tree.nearest(black_box(q), k));
            tree_ns.push(started.elapsed().as_nanos());
            let started = Instant::now();
            black_box(tree.nearest_linear(black_box(q), k));
            linear_ns.push(started.elapsed().as_nanos());
        }
        let tree_med = median(&mut tree_ns).max(1);
        let linear_med = median(&mut linear_ns).max(1);
        let speedup = linear_med as f64 / tree_med as f64;
        speedup_at_largest = speedup;
        println!(
            "n={n:>6}  tree {:>9} ns/query   linear {:>9} ns/query   speedup {speedup:.1}x",
            tree_med, linear_med
        );
    }

    if !smoke {
        // The acceptance bar: sublinear retrieval must beat the scan by
        // at least 5x at the 10k corpus.
        assert!(
            speedup_at_largest >= 5.0,
            "ball tree is only {speedup_at_largest:.1}x faster than the linear scan at n=10000"
        );
    }
}
