//! Cold learn vs constrained re-learn (`LearnSpec` with 1–4 negatives).
//!
//! The correct-and-relearn loop re-runs the learner after every
//! correction, so re-learn latency is what the interactive user feels.
//! Negative corrections *prune during search*: conjuncts covering no
//! observed example leave the exhaustive frontier, and conjuncts covering
//! a negative leave the quadratic disjunct-pair stage — so a re-learn
//! with negatives is expected to be *faster* than the cold learn, not
//! slower, despite doing strictly more constraint checking.
//!
//! Run: `cargo bench -p cornet-bench --bench learn_negatives`

use cornet_core::learner::{Cornet, CornetConfig, LearnSpec, SearchStrategy};
use cornet_core::rank::SymbolicRanker;
use cornet_table::CellValue;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fig11-style id column: prefixes, digits and suffixes generate a rich
/// predicate pool, and the `-T` suffixed ids are natural correction
/// targets.
fn id_column(n: usize, seed: u64) -> Vec<CellValue> {
    const SUFFIXES: [&str; 3] = ["", "-T", "-U"];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let prefix = if rng.gen_bool(0.5) { "AX" } else { "BX" };
            let num = rng.gen_range(100..1000);
            let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
            CellValue::Text(format!("{prefix}-{num}{suffix}"))
        })
        .collect()
}

fn bench_learn_negatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_negatives");
    group.sample_size(10);

    let cells = id_column(60, 51);
    // Positives: the first three AX ids; negatives: AX ids the cold best
    // rule would generalise over (suffixed ones), as a user would correct.
    let positives: Vec<usize> = (0..cells.len())
        .filter(|&i| cells[i].display_string().starts_with("AX"))
        .take(3)
        .collect();
    let negative_pool: Vec<usize> = (0..cells.len())
        .filter(|&i| {
            let text = cells[i].display_string();
            text.starts_with("AX") && text.ends_with("T") && !positives.contains(&i)
        })
        .collect();
    assert!(
        negative_pool.len() >= 4,
        "fixture must offer at least 4 correction targets"
    );

    let config = CornetConfig {
        strategy: SearchStrategy::Exhaustive,
        ..CornetConfig::default()
    };
    let cornet = Cornet::new(config, SymbolicRanker::heuristic());

    let cold = LearnSpec::new(cells.clone(), positives.clone());
    cornet.learn_spec(&cold).expect("cold learn succeeds");
    group.bench_function("cold_learn", |b| {
        b.iter(|| std::hint::black_box(cornet.learn_spec(&cold).expect("learns")));
    });

    for k in [1usize, 2, 4] {
        let spec = LearnSpec::new(cells.clone(), positives.clone())
            .with_negatives(negative_pool.iter().copied().take(k).collect());
        cornet
            .learn_spec(&spec)
            .expect("constrained learn succeeds");
        group.bench_function(format!("relearn_{k}_negatives"), |b| {
            b.iter(|| std::hint::black_box(cornet.learn_spec(&spec).expect("learns")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_learn_negatives);
criterion_main!(benches);
