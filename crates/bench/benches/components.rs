//! Microbenchmarks of the pipeline stages (§3): predicate generation,
//! clustering, iterative rule enumeration, and full-pipeline learning.

use cornet_bench::bench_tasks;
use cornet_core::cluster::{cluster, ClusterConfig};
use cornet_core::enumerate::{enumerate_rules, EnumConfig};
use cornet_core::learner::Cornet;
use cornet_core::predgen::{generate_predicates, GenConfig};
use cornet_core::signature::CellSignatures;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);
    for &n in &[50usize, 200] {
        let task = bench_tasks(n, 1, 31).pop().expect("task");
        let observed = task.examples(3);

        group.bench_with_input(
            BenchmarkId::new("predicate_generation", n),
            &task,
            |b, task| {
                b.iter(|| {
                    std::hint::black_box(generate_predicates(&task.cells, &GenConfig::default()))
                });
            },
        );

        let predicates = generate_predicates(&task.cells, &GenConfig::default());
        group.bench_with_input(
            BenchmarkId::new("clustering", n),
            &predicates,
            |b, predicates| {
                b.iter(|| {
                    let signatures = CellSignatures::from_predicates(predicates);
                    std::hint::black_box(cluster(&signatures, &observed, &ClusterConfig::default()))
                });
            },
        );

        let signatures = CellSignatures::from_predicates(&predicates);
        let outcome = cluster(&signatures, &observed, &ClusterConfig::default());
        group.bench_with_input(
            BenchmarkId::new("rule_enumeration", n),
            &(&predicates, &outcome),
            |b, (predicates, outcome)| {
                b.iter(|| {
                    std::hint::black_box(enumerate_rules(
                        predicates,
                        outcome,
                        &EnumConfig::default(),
                    ))
                });
            },
        );

        let cornet = Cornet::with_default_ranker();
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &task, |b, task| {
            b.iter(|| std::hint::black_box(cornet.learn(&task.cells, &observed)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
