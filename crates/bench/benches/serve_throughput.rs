//! End-to-end service throughput: sustained learn+score tasks/sec on the
//! in-process `cornet-serve` service layer over a realistic corpus mix
//! (Table 3 type shares), the bench anchoring the ROADMAP's "serve
//! millions of users" north star.
//!
//! Three regimes:
//! * `learn_cold` — every request is a fresh column: the learner runs.
//! * `learn_cached` — the same requests repeated: answered from the rule
//!   store's LRU without learning (the steady state of the demo's
//!   re-open-my-workbook traffic).
//! * `score_stored` — scoring fresh rows against stored rules (the bulk
//!   workload of a deployed formatting service).
//!
//! Per-iteration time here is per *request*; tasks/sec is its inverse.

use cornet_corpus::{generate_corpus_sharded, CorpusConfig};
use cornet_serve::service::{CornetService, LearnRequest, ScoreRequest, ServiceConfig};
use cornet_table::CellValue;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cornet-serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Learn requests from a realistic corpus mix: 3 top-down examples each
/// (the paper's default protocol).
fn corpus_requests(n: usize) -> Vec<LearnRequest> {
    let corpus = generate_corpus_sharded(
        &CorpusConfig {
            seed: 0xBEEF,
            n_tasks: n,
            ..CorpusConfig::default()
        },
        8,
    );
    corpus
        .tasks
        .iter()
        .map(|task| LearnRequest {
            cells: task.cells.iter().map(CellValue::display_string).collect(),
            examples: task.examples(3),
            negatives: vec![],
            classes: vec![],
            tenant: None,
        })
        .collect()
}

fn service_throughput(c: &mut Criterion) {
    let requests = corpus_requests(24);
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    // Cold learning: every iteration must actually run the learner, so
    // each request is made unique by re-texting one non-example cell
    // with a serial number — the content fingerprint changes, the store
    // can never answer, and the column is realistic except for one cell.
    {
        let dir = temp_store("cold");
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 4,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut next = 0usize;
        let total = requests.len();
        group.bench_function("learn_cold", |b| {
            b.iter(|| {
                let mut req = requests[next % total].clone();
                let victim = (0..req.cells.len())
                    .rev()
                    .find(|i| !req.examples.contains(i))
                    .unwrap_or(0);
                req.cells[victim] = format!("uniq-{next}");
                next += 1;
                service.learn(&req).map(|r| r.matches.len()).unwrap_or(0)
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    // Steady state: every request already stored.
    {
        let dir = temp_store("cached");
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 64,
            ..ServiceConfig::default()
        })
        .unwrap();
        for req in &requests {
            let _ = service.learn(req);
        }
        let mut next = 0usize;
        let total = requests.len();
        group.bench_function("learn_cached", |b| {
            b.iter(|| {
                let req = &requests[next % total];
                next += 1;
                service.learn(req).map(|r| r.matches.len()).unwrap_or(0)
            })
        });

        // Bulk scoring against the stored rules.
        let rule_ids: Vec<String> = requests
            .iter()
            .filter_map(|req| service.learn(req).ok().map(|r| r.rule_id))
            .collect();
        let mut next = 0usize;
        group.bench_function("score_stored", |b| {
            b.iter(|| {
                let i = next % rule_ids.len();
                next += 1;
                service
                    .score(&ScoreRequest {
                        rule_id: Some(rule_ids[i].clone()),
                        rule: None,
                        cells: requests[i].cells.clone(),
                    })
                    .map(|r| r.matches.len())
                    .unwrap_or(0)
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
