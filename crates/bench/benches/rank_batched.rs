//! Per-candidate vs batched candidate ranking (§3.4, ROADMAP "Batch the
//! ranker").
//!
//! A fig11-style synthetic id column yields ≥32 candidate rules; the serial
//! path re-embeds the identical column for every candidate while the
//! batched path embeds it once, fans the attention passes across
//! `cornet-pool`, and runs `col_linear`/`head` as single matrix multiplies.
//! The two paths are bit-identical (`tests/rank_batched_differential.rs`);
//! this bench measures the amortisation.

use cornet_core::cluster::{cluster, ClusterConfig};
use cornet_core::features::{rule_features, FEATURE_DIM};
use cornet_core::predgen::{generate_predicates, infer_type, GenConfig};
use cornet_core::rank::{NeuralMode, NeuralRanker, RankContext, Ranker, SymbolicRanker};
use cornet_core::rule::Rule;
use cornet_core::signature::CellSignatures;
use cornet_table::{BitVec, CellValue};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of candidate rules scored per iteration.
const N_CANDIDATES: usize = 32;

/// Same flavour as the fig11 bench: a synthetic id column
/// (`AX-412-T`, `BX-833-Y`, …) whose prefixes, digits and suffixes generate
/// a rich predicate pool.
fn fig11_style_column(n: usize, seed: u64) -> Vec<CellValue> {
    const SUFFIXES: [&str; 6] = ["T", "U", "V", "W", "X", "Y"];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let prefix = if rng.gen_bool(0.5) { "AX" } else { "BX" };
            let num = rng.gen_range(100..1000);
            let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
            CellValue::Text(format!("{prefix}-{num}-{suffix}"))
        })
        .collect()
}

/// Ranking inputs for `N_CANDIDATES` single-predicate rules over one column.
struct Fixture {
    cell_texts: Vec<String>,
    labels: BitVec,
    no_negatives: BitVec,
    dtype: Option<cornet_table::DataType>,
    rules: Vec<Rule>,
    executions: Vec<(BitVec, [f64; FEATURE_DIM])>,
}

impl Fixture {
    fn build() -> Fixture {
        let cells = fig11_style_column(100, 51);
        let predicates = generate_predicates(&cells, &GenConfig::default());
        assert!(
            predicates.len() >= N_CANDIDATES,
            "fixture column must generate at least {N_CANDIDATES} predicates"
        );
        let signatures = CellSignatures::from_predicates(&predicates);
        let observed: Vec<usize> = predicates.signatures[0].iter_ones().take(3).collect();
        let outcome = cluster(&signatures, &observed, &ClusterConfig::default());
        let dtype = infer_type(&cells);
        let rules: Vec<Rule> = predicates
            .predicates
            .iter()
            .take(N_CANDIDATES)
            .cloned()
            .map(Rule::from_predicate)
            .collect();
        let executions: Vec<(BitVec, [f64; FEATURE_DIM])> = rules
            .iter()
            .map(|rule| {
                let exec = rule.execute(&cells);
                let features = rule_features(rule, &exec, &outcome.labels, dtype);
                (exec, features)
            })
            .collect();
        Fixture {
            no_negatives: BitVec::zeros(cells.len()),
            cell_texts: cells.iter().map(CellValue::display_string).collect(),
            labels: outcome.labels,
            dtype,
            rules,
            executions,
        }
    }

    fn contexts(&self) -> Vec<RankContext<'_>> {
        self.rules
            .iter()
            .zip(&self.executions)
            .map(|(rule, (execution, features))| RankContext {
                rule,
                cell_texts: &self.cell_texts,
                execution,
                cluster_labels: &self.labels,
                negatives: &self.no_negatives,
                dtype: self.dtype,
                features: *features,
            })
            .collect()
    }
}

fn bench_rank_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_batched");
    group.sample_size(20);
    let fixture = Fixture::build();
    let ctxs = fixture.contexts();

    let mut rng = StdRng::seed_from_u64(43);
    let neural = NeuralRanker::new(NeuralMode::Hybrid, 43, &mut rng);
    group.bench_function("neural_per_candidate_x32", |b| {
        b.iter(|| {
            let scores: Vec<f64> = ctxs.iter().map(|ctx| neural.score(ctx)).collect();
            std::hint::black_box(scores)
        });
    });
    group.bench_function("neural_batched_x32", |b| {
        b.iter(|| std::hint::black_box(neural.score_batch(&ctxs)));
    });

    let symbolic = SymbolicRanker::heuristic();
    group.bench_function("symbolic_per_candidate_x32", |b| {
        b.iter(|| {
            let scores: Vec<f64> = ctxs.iter().map(|ctx| symbolic.score(ctx)).collect();
            std::hint::black_box(scores)
        });
    });
    group.bench_function("symbolic_batched_x32", |b| {
        b.iter(|| std::hint::black_box(symbolic.score_batch(&ctxs)));
    });
    group.finish();
}

criterion_group!(benches, bench_rank_batched);
criterion_main!(benches);
