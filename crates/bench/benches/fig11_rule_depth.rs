//! Figure 11: rule learning time vs the depth of the target rule — greedy
//! iterative learning (Cornet) vs a single decision tree vs depth-bounded
//! exhaustive search.
//!
//! The paper's shape: Cornet stays flat while the exhaustive search blows
//! up combinatorially (40–80× slower by depth 5).

use cornet_baselines::{CornetLearner, PredicateDecisionTree, TaskLearner};
use cornet_core::cluster::{cluster, ClusterConfig};
use cornet_core::fullsearch::{full_search, FullSearchConfig};
use cornet_core::learner::CornetConfig;
use cornet_core::predgen::{generate_predicates, GenConfig};
use cornet_core::predicate::{Predicate, TextOp};
use cornet_core::rank::SymbolicRanker;
use cornet_core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_core::signature::CellSignatures;
use cornet_table::CellValue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Same construction as `cornet-eval`'s fig11: an AND chain of `depth`
/// literals over a synthetic id column.
fn deep_task(depth: usize, n: usize, seed: u64) -> (Vec<CellValue>, Vec<usize>) {
    const SUFFIXES: [&str; 6] = ["T", "U", "V", "W", "X", "Y"];
    let mut rng = StdRng::seed_from_u64(seed);
    let cells: Vec<CellValue> = (0..n)
        .map(|_| {
            let prefix = if rng.gen_bool(0.5) { "AX" } else { "BX" };
            let num = rng.gen_range(100..1000);
            let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
            CellValue::Text(format!("{prefix}-{num}-{suffix}"))
        })
        .collect();
    let mut literals = vec![RuleLiteral::pos(Predicate::Text {
        op: TextOp::StartsWith,
        pattern: "AX".into(),
    })];
    for suffix in SUFFIXES.iter().take(depth.saturating_sub(1)) {
        literals.push(RuleLiteral::neg(Predicate::Text {
            op: TextOp::EndsWith,
            pattern: (*suffix).to_string(),
        }));
    }
    let rule = Rule::new(vec![Conjunct::new(literals)]);
    let observed: Vec<usize> = rule.execute(&cells).iter_ones().take(3).collect();
    (cells, observed)
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_rule_depth");
    group.sample_size(10);
    let cornet = CornetLearner::new(
        CornetConfig::default(),
        SymbolicRanker::heuristic(),
        "cornet",
    );
    let dtree = PredicateDecisionTree::plain();

    for depth in 1..=4usize {
        let (cells, observed) = deep_task(depth, 60, 23 + depth as u64);
        if observed.len() < 3 {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("cornet", depth),
            &(&cells, &observed),
            |b, (cells, observed)| {
                b.iter(|| std::hint::black_box(cornet.predict(cells, observed)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decision_tree", depth),
            &(&cells, &observed),
            |b, (cells, observed)| {
                b.iter(|| std::hint::black_box(dtree.predict(cells, observed)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_search", depth),
            &(&cells, &observed),
            |b, (cells, observed)| {
                b.iter(|| {
                    let predicates = generate_predicates(cells, &GenConfig::default());
                    let signatures = CellSignatures::from_predicates(&predicates);
                    let outcome = cluster(&signatures, observed, &ClusterConfig::default());
                    std::hint::black_box(full_search(
                        &predicates,
                        &outcome,
                        &FullSearchConfig {
                            max_depth: depth,
                            max_candidates: 100_000,
                            max_conjuncts: 400_000,
                            ..FullSearchConfig::default()
                        },
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
