//! Shared fixtures for the Criterion benches.
//!
//! The benches regenerate the paper's timing results: Figure 9 (learning
//! time vs column length) and Figure 11 (learning time vs rule depth), plus
//! microbenchmarks of the pipeline stages. Run with `cargo bench`.

use cornet_corpus::taskgen::generate_task_with_len;
use cornet_corpus::{CorpusConfig, Task};
use cornet_table::DataType;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic fixed-length benchmark tasks (text-dominated mix, like the
/// corpus).
pub fn bench_tasks(n_cells: usize, count: usize, seed: u64) -> Vec<Task> {
    let config = CorpusConfig {
        seed,
        ..CorpusConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ n_cells as u64);
    let mut out = Vec::new();
    let mut id = 0u64;
    while out.len() < count && id < 50 * count as u64 {
        let dtype = match id % 5 {
            0..=2 => DataType::Text,
            3 => DataType::Number,
            _ => DataType::Date,
        };
        if let Some(task) = generate_task_with_len(id, dtype, n_cells, &config, &mut rng) {
            out.push(task);
        }
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_requested_length() {
        let tasks = bench_tasks(50, 3, 1);
        assert_eq!(tasks.len(), 3);
        assert!(tasks.iter().all(|t| t.cells.len() == 50));
    }
}
