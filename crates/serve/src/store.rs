//! The persistent rule store: one JSON file per learned rule, sharded by
//! id prefix and fronted by an in-memory LRU cache.
//!
//! Layout: `<dir>/<id[1..3]>/<rule-id>.json` — 256 shard subdirectories
//! named by the first two hex digits of the fingerprint, so a store of
//! millions of rules never puts more than ~1/256th of them in one
//! directory. Each file is a versioned
//! `{"v":1,"kind":"stored-rule","payload":…}` envelope. Rule ids are
//! content fingerprints of the learn request (cells + examples +
//! negatives), so identical requests map to the same file across
//! processes and restarts — that is what lets a restarted server answer
//! `learn` and `score` without re-learning.
//!
//! Stores written before sharding used the flat `<dir>/<rule-id>.json`
//! layout; reads fall back to the flat path and transparently migrate the
//! file into its shard, so old stores upgrade in place with no tooling.
//!
//! The LRU bounds only memory: eviction never deletes a file, and a miss
//! falls back to disk before reporting absence.

use cornet_core::rule::Rule;
use cornet_serde::{decode, encode, field_t, DecodeError, FromJson, Json, ToJson};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

/// Envelope kind for rule-store files.
pub const STORED_RULE_KIND: &str = "stored-rule";

/// A learned rule at rest: the rule plus the request that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRule {
    /// Content-fingerprint identifier (also the file stem).
    pub id: String,
    /// The learned rule.
    pub rule: Rule,
    /// Ranker score of the chosen candidate.
    pub score: f64,
    /// Example (positive) indices of the learn request.
    pub examples: Vec<usize>,
    /// Negative-correction indices of the learn request.
    pub negatives: Vec<usize>,
    /// Length of the column the rule was learned from.
    pub column_len: usize,
    /// False when no candidate excluded every negative and the best
    /// candidate was stored anyway (see `LearnResponse::consistent`).
    pub consistent: bool,
}

impl ToJson for StoredRule {
    fn to_json(&self) -> Json {
        Json::object([
            ("id", Json::str(self.id.clone())),
            ("rule", self.rule.to_json()),
            ("score", Json::Number(self.score)),
            ("examples", self.examples.to_json()),
            ("negatives", self.negatives.to_json()),
            ("column_len", self.column_len.to_json()),
            ("consistent", Json::Bool(self.consistent)),
        ])
    }
}

impl FromJson for StoredRule {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(StoredRule {
            id: field_t(json, "id")?,
            rule: field_t(json, "rule")?,
            score: field_t(json, "score")?,
            examples: field_t(json, "examples")?,
            negatives: field_t(json, "negatives")?,
            column_len: field_t(json, "column_len")?,
            consistent: field_t(json, "consistent")?,
        })
    }
}

/// True when `id` is shaped like a rule id this store hands out
/// (lowercase hex fingerprint, `r`-prefixed). Anything else is rejected
/// before it can reach the filesystem.
pub fn valid_rule_id(id: &str) -> bool {
    let mut chars = id.chars();
    chars.next() == Some('r')
        && id.len() > 1
        && id.len() <= 64
        && chars.all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

/// Fingerprints a learn request into a rule id: SHA-256 over the cell
/// texts and the sorted example/negative index sets, truncated to 128
/// bits. A shared store directory is keyed by these ids, so the hash
/// must be collision-resistant — a weak fingerprint would let a crafted
/// request be answered with another request's stored rule.
pub fn rule_id(cells: &[String], examples: &[usize], negatives: &[usize]) -> String {
    let mut hasher = crate::sha256::Sha256::new();
    // Every variable-length field is length-prefixed: a bare separator
    // byte would let ["a\u{1f}", "b"] and ["a", "\u{1f}b"] collide.
    for cell in cells {
        hasher.update(&(cell.len() as u64).to_le_bytes());
        hasher.update(cell.as_bytes());
    }
    let mut feed_indices = |tag: u8, indices: &[usize]| {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        hasher.update(&[tag]);
        hasher.update(&(sorted.len() as u64).to_le_bytes());
        for i in sorted {
            hasher.update(&(i as u64).to_le_bytes());
        }
    };
    feed_indices(0x01, examples);
    feed_indices(0x02, negatives);
    let digest = hasher.finish();
    let mut id = String::with_capacity(33);
    id.push('r');
    for b in &digest[..16] {
        id.push_str(&format!("{b:02x}"));
    }
    id
}

/// File-backed rule store with an LRU-bounded in-memory cache.
#[derive(Debug)]
pub struct RuleStore {
    dir: PathBuf,
    capacity: usize,
    cache: HashMap<String, StoredRule>,
    /// Most-recently-used at the back.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl RuleStore {
    /// Opens (creating if needed) a store rooted at `dir`. `capacity`
    /// bounds the in-memory cache, minimum 1.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<RuleStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RuleStore {
            dir,
            capacity: capacity.max(1),
            cache: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of rules currently cached in memory.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// `(memory hits, misses that went to disk or failed)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The sharded path of a rule: `<dir>/<shard>/<id>.json`.
    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(shard_of(id)).join(format!("{id}.json"))
    }

    /// The pre-sharding flat path, still consulted (and migrated from) on
    /// reads so old stores keep working.
    fn flat_path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == id) {
            self.order.remove(pos);
        }
        self.order.push_back(id.to_string());
        while self.cache.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.cache.remove(&evicted);
            } else {
                break;
            }
        }
    }

    /// Looks a rule up: memory first, then the sharded path, then the
    /// legacy flat path (migrating the file into its shard on a hit).
    /// Returns `None` for malformed ids, absent files, and files that fail
    /// to decode (a corrupt file should read as a miss, not take the
    /// server down).
    pub fn get(&mut self, id: &str) -> Option<StoredRule> {
        if !valid_rule_id(id) {
            return None;
        }
        if let Some(found) = self.cache.get(id).cloned() {
            self.hits += 1;
            self.touch(id);
            return Some(found);
        }
        self.misses += 1;
        let sharded = self.path_for(id);
        let entry: StoredRule = match std::fs::read_to_string(&sharded) {
            Ok(text) => decode(STORED_RULE_KIND, &text).ok()?,
            Err(_) => {
                // Flat-layout fallback: decode first, migrate second, so a
                // corrupt legacy file is left in place for inspection.
                let flat = self.flat_path_for(id);
                let text = std::fs::read_to_string(&flat).ok()?;
                let entry: StoredRule = decode(STORED_RULE_KIND, &text).ok()?;
                if std::fs::create_dir_all(sharded.parent().expect("sharded path has parent"))
                    .is_ok()
                {
                    // Best-effort: a failed rename still serves the rule.
                    let _ = std::fs::rename(&flat, &sharded);
                }
                entry
            }
        };
        if entry.id != id {
            return None;
        }
        self.cache.insert(id.to_string(), entry.clone());
        self.touch(id);
        Some(entry)
    }

    /// Persists a rule (write file, then cache). The write goes through a
    /// temp file + rename so a crash never leaves a half-written rule;
    /// the temp name carries the pid and a counter so two processes
    /// sharing the store directory cannot interleave writes to one temp
    /// file and rename a torn document into place.
    pub fn put(&mut self, entry: StoredRule) -> io::Result<()> {
        if !valid_rule_id(&entry.id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid rule id `{}`", entry.id),
            ));
        }
        let text = encode(STORED_RULE_KIND, &entry);
        let shard = self.dir.join(shard_of(&entry.id));
        std::fs::create_dir_all(&shard)?;
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = shard.join(format!(
            "{}.{}.{}.tmp",
            entry.id,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.path_for(&entry.id))?;
        let id = entry.id.clone();
        self.cache.insert(id.clone(), entry);
        self.touch(&id);
        Ok(())
    }

    /// Number of rules persisted on disk (counts `.json` files). This
    /// walks the directory — call [`persisted_in`] with a saved
    /// [`RuleStore::dir`] to scan without holding a store lock.
    pub fn persisted(&self) -> usize {
        persisted_in(&self.dir)
    }
}

/// The shard subdirectory of a rule id: its first two hex digits (after
/// the `r` prefix). Short ids — legal per [`valid_rule_id`] but never
/// produced by [`rule_id`] — shard on whatever digits they have.
pub fn shard_of(id: &str) -> &str {
    let end = id.len().min(3);
    &id[1..end]
}

/// True when a directory name is shaped like a shard (one or two
/// lowercase hex characters). Anything else under the store root — e.g.
/// the service's `sessions` directory — is not scanned for rules.
fn is_shard_name(name: &str) -> bool {
    (1..=2).contains(&name.len())
        && name
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

/// Counts the `.json` rule files under a store directory: flat files at
/// the root (legacy layout) plus the contents of every shard
/// subdirectory, in one pass over the root.
pub fn persisted_in(dir: &Path) -> usize {
    let json_files = |dir: &Path| -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        e.path().is_file() && e.path().extension().is_some_and(|x| x == "json")
                    })
                    .count()
            })
            .unwrap_or(0)
    };
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_file() && path.extension().is_some_and(|x| x == "json") {
                total += 1;
            } else if path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(is_shard_name)
            {
                total += json_files(&path);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_core::predicate::{Predicate, TextOp};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cornet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(id: &str, pattern: &str) -> StoredRule {
        StoredRule {
            id: id.to_string(),
            rule: Rule::from_predicate(Predicate::Text {
                op: TextOp::StartsWith,
                pattern: pattern.into(),
            }),
            score: 0.5,
            examples: vec![0, 2],
            negatives: vec![],
            column_len: 6,
            consistent: true,
        }
    }

    #[test]
    fn rule_ids_are_stable_and_order_insensitive() {
        let cells: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let a = rule_id(&cells, &[0, 2], &[1]);
        let b = rule_id(&cells, &[2, 0], &[1]);
        assert_eq!(a, b, "example order must not change the fingerprint");
        assert!(valid_rule_id(&a), "{a}");
        assert_ne!(a, rule_id(&cells, &[0], &[1]));
        assert_ne!(a, rule_id(&cells, &[0, 2], &[]));
        // Cell boundaries matter: ["ab","c"] != ["a","bc"].
        let ab_c = rule_id(&["ab".into(), "c".into()], &[0], &[]);
        let a_bc = rule_id(&["a".into(), "bc".into()], &[0], &[]);
        assert_ne!(ab_c, a_bc);
        // Including when a cell contains what a naive encoding would use
        // as its separator byte (regression: delimiter injection).
        let tricky_a = rule_id(&["a\u{1f}".into(), "b".into()], &[0], &[]);
        let tricky_b = rule_id(&["a".into(), "\u{1f}b".into()], &[0], &[]);
        assert_ne!(tricky_a, tricky_b);
    }

    #[test]
    fn id_validation_blocks_path_shapes() {
        assert!(valid_rule_id("r0123456789abcdef"));
        for bad in ["", "r", "x0f", "r../evil", "r0F", "R00", "r0123/45"] {
            assert!(!valid_rule_id(bad), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn put_get_survives_a_reopen() {
        let dir = temp_dir("reopen");
        let id = rule_id(&["x".into()], &[0], &[]);
        {
            let mut store = RuleStore::open(&dir, 8).unwrap();
            store.put(entry(&id, "RW")).unwrap();
            assert_eq!(store.persisted(), 1);
        }
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.cached(), 0, "fresh process starts cold");
        let got = reopened.get(&id).expect("loads from disk");
        assert_eq!(got, entry(&id, "RW"));
        assert_eq!(reopened.cached(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_memory_but_not_disk() {
        let dir = temp_dir("lru");
        let mut store = RuleStore::open(&dir, 2).unwrap();
        let ids: Vec<String> = (0..4)
            .map(|i| rule_id(&[format!("cell{i}")], &[0], &[]))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            store.put(entry(id, &format!("P{i}"))).unwrap();
        }
        assert_eq!(store.cached(), 2, "capacity bounds the cache");
        assert_eq!(store.persisted(), 4, "eviction never deletes files");
        // The evicted entry is still retrievable (from disk).
        assert!(store.get(&ids[0]).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let dir = temp_dir("lru-order");
        let mut store = RuleStore::open(&dir, 2).unwrap();
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("k{i}")], &[0], &[]))
            .collect();
        store.put(entry(&ids[0], "A")).unwrap();
        store.put(entry(&ids[1], "B")).unwrap();
        store.get(&ids[0]); // refresh 0 → 1 is now least recent
        store.put(entry(&ids[2], "C")).unwrap();
        assert!(store.cache.contains_key(&ids[0]));
        assert!(!store.cache.contains_key(&ids[1]), "LRU entry evicted");
        assert!(store.cache.contains_key(&ids[2]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn puts_land_in_shard_subdirectories() {
        let dir = temp_dir("shard");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let id = rule_id(&["x".into()], &[0], &[]);
        store.put(entry(&id, "RW")).unwrap();
        let sharded = dir.join(shard_of(&id)).join(format!("{id}.json"));
        assert!(sharded.is_file(), "rule not at {}", sharded.display());
        assert!(!dir.join(format!("{id}.json")).exists(), "no flat file");
        assert_eq!(persisted_in(&dir), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_layout_files_migrate_on_read() {
        let dir = temp_dir("migrate");
        let id = rule_id(&["legacy".into()], &[0], &[]);
        let e = entry(&id, "RW");
        // Simulate a pre-sharding store: the envelope sits at the root.
        std::fs::create_dir_all(&dir).unwrap();
        let flat = dir.join(format!("{id}.json"));
        std::fs::write(&flat, encode(STORED_RULE_KIND, &e)).unwrap();

        let mut store = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(store.get(&id).as_ref(), Some(&e), "flat file readable");
        let sharded = dir.join(shard_of(&id)).join(format!("{id}.json"));
        assert!(sharded.is_file(), "file migrated into its shard");
        assert!(!flat.exists(), "flat copy removed by the migration");
        assert_eq!(persisted_in(&dir), 1, "migration does not duplicate");

        // A cold re-open reads it straight from the shard.
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.get(&id).as_ref(), Some(&e));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_flat_files_miss_without_migrating() {
        let dir = temp_dir("corrupt-flat");
        std::fs::create_dir_all(&dir).unwrap();
        let id = rule_id(&["bad".into()], &[0], &[]);
        let flat = dir.join(format!("{id}.json"));
        std::fs::write(&flat, "{not json").unwrap();
        let mut store = RuleStore::open(&dir, 8).unwrap();
        assert!(store.get(&id).is_none());
        assert!(flat.exists(), "corrupt legacy file left for inspection");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_scans_shards_but_not_foreign_directories() {
        let dir = temp_dir("persisted");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("p{i}")], &[0], &[]))
            .collect();
        for id in &ids {
            store.put(entry(id, "P")).unwrap();
        }
        // A legacy flat file still counts…
        let legacy = rule_id(&["flat".into()], &[0], &[]);
        std::fs::write(
            dir.join(format!("{legacy}.json")),
            encode(STORED_RULE_KIND, &entry(&legacy, "F")),
        )
        .unwrap();
        // …but json files in non-shard directories (e.g. sessions) do not.
        let sessions = dir.join("sessions");
        std::fs::create_dir_all(&sessions).unwrap();
        std::fs::write(sessions.join("s1.json"), "{}").unwrap();
        assert_eq!(persisted_in(&dir), 4);
        assert!(shard_of(&ids[0]).len() == 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_read_as_misses() {
        let dir = temp_dir("corrupt");
        let mut store = RuleStore::open(&dir, 4).unwrap();
        let id = rule_id(&["z".into()], &[0], &[]);
        std::fs::write(store.dir().join(format!("{id}.json")), "{not json").unwrap();
        assert!(store.get(&id).is_none());
        // Wrong envelope kind is also a miss, not a panic.
        std::fs::write(
            store.dir().join(format!("{id}.json")),
            cornet_serde::encode("table", &Json::Null),
        )
        .unwrap();
        assert!(store.get(&id).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_rule_envelope_round_trip() {
        let id = rule_id(&["q".into()], &[0], &[]);
        let e = entry(&id, "Dr");
        let wire = encode(STORED_RULE_KIND, &e);
        let back: StoredRule = decode(STORED_RULE_KIND, &wire).unwrap();
        assert_eq!(back, e);
    }
}
