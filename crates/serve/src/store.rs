//! The persistent rule store: one JSON file per learned rule, sharded by
//! id prefix and fronted by an in-memory LRU cache.
//!
//! Layout: `<dir>/<id[1..3]>/<rule-id>.json` — 256 shard subdirectories
//! named by the first two hex digits of the fingerprint, so a store of
//! millions of rules never puts more than ~1/256th of them in one
//! directory. Each file is a versioned
//! `{"v":1,"kind":"stored-rule","payload":…}` envelope. Rule ids are
//! content fingerprints of the learn request (cells + examples +
//! negatives), so identical requests map to the same file across
//! processes and restarts — that is what lets a restarted server answer
//! `learn` and `score` without re-learning.
//!
//! Stores written before sharding used the flat `<dir>/<rule-id>.json`
//! layout; reads fall back to the flat path and transparently migrate the
//! file into its shard, so old stores upgrade in place with no tooling.
//!
//! ## Segment packing
//!
//! A million stored rules must not mean a million inodes. [`RuleStore::pack`]
//! migrates every loose per-rule file (sharded *and* legacy flat) into one
//! append-only **segment file** under `<dir>/segments/seg-NNNNNN.seg` — one
//! JSON envelope per line (the codec escapes control characters, so records
//! never contain raw newlines). An in-memory index (`id → segment/offset/len`)
//! is rebuilt by scanning the segment files at open, and reads seek straight
//! to the record. Packing is crash-safe: the whole segment is written to a
//! temp file and renamed into place *before* the loose sources are deleted,
//! so a crash can duplicate a rule (ids are content fingerprints — both
//! copies are identical and the index dedups) but never lose one. Corrupt
//! loose files are left in place for inspection, matching the flat-layout
//! migration contract; corrupt segment lines are skipped at scan.
//!
//! Writes (`put`) still land as per-rule files — the hot set stays
//! individually replaceable — and reads fall through transparently:
//! memory → segment index → sharded file → flat file.
//!
//! The LRU bounds only memory: eviction never deletes a file, and a miss
//! falls back to disk before reporting absence.

use cornet_core::rule::Rule;
use cornet_core::ruleset::RuleSet;
use cornet_obs::Counter;
use cornet_serde::{
    decode, encode, field_t, optional_field_t, to_string, DecodeError, FromJson, Json, ToJson,
};
use cornet_table::{Format, TargetScope};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Process-wide store counters, registered once in the global
/// [`cornet_obs`] registry. The per-store `hits`/`misses` fields keep
/// serving `/health` (they reset with the store); these aggregate across
/// every store in the process for `/metrics`.
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    segment_reads: Counter,
    fastpath_misses: Counter,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = cornet_obs::registry();
        StoreMetrics {
            hits: registry.counter(
                "cornet_store_hits_total",
                "Rule lookups answered from the in-memory cache.",
            ),
            misses: registry.counter(
                "cornet_store_misses_total",
                "Rule lookups that fell through to disk or reported absence.",
            ),
            segment_reads: registry.counter(
                "cornet_store_segment_reads_total",
                "Rule records read out of packed segment files.",
            ),
            fastpath_misses: registry.counter(
                "cornet_store_fastpath_misses_total",
                "Known-absent lookups short-circuited without touching disk.",
            ),
        }
    })
}

/// How long a cached persisted-rule count stays fresh before
/// [`RuleStore::persisted_cached`] rescans the directory.
const PERSISTED_SCAN_INTERVAL: Duration = Duration::from_secs(1);

/// Envelope kind for rule-store files.
pub const STORED_RULE_KIND: &str = "stored-rule";

/// A learned rule at rest: the rule plus the request that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRule {
    /// Content-fingerprint identifier (also the file stem).
    pub id: String,
    /// The learned rule.
    pub rule: Rule,
    /// Ranker score of the chosen candidate.
    pub score: f64,
    /// Example (positive) indices of the learn request.
    pub examples: Vec<usize>,
    /// Negative-correction indices of the learn request.
    pub negatives: Vec<usize>,
    /// Length of the column the rule was learned from.
    pub column_len: usize,
    /// False when no candidate excluded every negative and the best
    /// candidate was stored anyway (see `LearnResponse::consistent`).
    pub consistent: bool,
    /// The full prioritized rule set of a multi-class learn, when this
    /// record came from one. `None` for single-rule learns — and for
    /// every record written before rule sets existed, so old stores load
    /// unchanged (the field is optional on the wire and omitted when
    /// absent, keeping legacy bytes byte-identical).
    pub rule_set: Option<RuleSet>,
    /// The tenant namespace the rule was learned under. `None` for
    /// untenanted requests (and every pre-tenancy record): those rules
    /// live in the shared global suggestion index; tenanted rules are
    /// only ever suggested back to their own tenant. Optional on the
    /// wire and omitted when absent.
    pub tenant: Option<String>,
    /// The column-signature embedding of the learn request's cells
    /// (fixed-dim, L2-normalised — see `cornet_serve::suggest`),
    /// persisted so the suggestion index rebuilds from segments/shards
    /// at open without re-embedding (or needing the original cell
    /// texts, which are never stored). `None` on pre-suggestion records,
    /// which simply stay out of the index until re-learned. Optional on
    /// the wire and omitted when absent.
    pub embedding: Option<Vec<f64>>,
}

impl ToJson for StoredRule {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("rule".to_string(), self.rule.to_json()),
            ("score".to_string(), Json::Number(self.score)),
            ("examples".to_string(), self.examples.to_json()),
            ("negatives".to_string(), self.negatives.to_json()),
            ("column_len".to_string(), self.column_len.to_json()),
            ("consistent".to_string(), Json::Bool(self.consistent)),
        ];
        if let Some(set) = &self.rule_set {
            pairs.push(("rule_set".to_string(), set.to_json()));
        }
        if let Some(tenant) = &self.tenant {
            pairs.push(("tenant".to_string(), Json::str(tenant.clone())));
        }
        if let Some(embedding) = &self.embedding {
            pairs.push(("embedding".to_string(), embedding.to_json()));
        }
        Json::Object(pairs)
    }
}

impl FromJson for StoredRule {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(StoredRule {
            id: field_t(json, "id")?,
            rule: field_t(json, "rule")?,
            score: field_t(json, "score")?,
            examples: field_t(json, "examples")?,
            negatives: field_t(json, "negatives")?,
            column_len: field_t(json, "column_len")?,
            consistent: field_t(json, "consistent")?,
            rule_set: optional_field_t(json, "rule_set")?,
            tenant: optional_field_t(json, "tenant")?,
            embedding: optional_field_t(json, "embedding")?,
        })
    }
}

/// True when `id` is shaped like a rule id this store hands out
/// (lowercase hex fingerprint, `r`-prefixed). Anything else is rejected
/// before it can reach the filesystem.
pub fn valid_rule_id(id: &str) -> bool {
    let mut chars = id.chars();
    chars.next() == Some('r')
        && id.len() > 1
        && id.len() <= 64
        && chars.all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

/// Fingerprints a learn request into a rule id: SHA-256 over the cell
/// texts and the sorted example/negative index sets, truncated to 128
/// bits. A shared store directory is keyed by these ids, so the hash
/// must be collision-resistant — a weak fingerprint would let a crafted
/// request be answered with another request's stored rule.
pub fn rule_id(cells: &[String], examples: &[usize], negatives: &[usize]) -> String {
    rule_id_for(None, cells, examples, negatives)
}

/// [`rule_id`] with a tenant namespace: a tenanted request feeds the
/// tenant name under its own tag, so two tenants learning from
/// identical cells get distinct ids (and distinct stored records — one
/// tenant's learn must never be served as another's cache hit).
/// `tenant: None` is byte-identical to the historical construction, so
/// untenanted ids — and every pre-tenancy store — are unchanged.
pub fn rule_id_for(
    tenant: Option<&str>,
    cells: &[String],
    examples: &[usize],
    negatives: &[usize],
) -> String {
    let mut hasher = crate::sha256::Sha256::new();
    // Every variable-length field is length-prefixed: a bare separator
    // byte would let ["a\u{1f}", "b"] and ["a", "\u{1f}b"] collide.
    for cell in cells {
        hasher.update(&(cell.len() as u64).to_le_bytes());
        hasher.update(cell.as_bytes());
    }
    let mut feed_indices = |tag: u8, indices: &[usize]| {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        hasher.update(&[tag]);
        hasher.update(&(sorted.len() as u64).to_le_bytes());
        for i in sorted {
            hasher.update(&(i as u64).to_le_bytes());
        }
    };
    feed_indices(0x01, examples);
    feed_indices(0x02, negatives);
    feed_tenant(&mut hasher, tenant);
    let digest = hasher.finish();
    let mut id = String::with_capacity(33);
    id.push('r');
    for b in &digest[..16] {
        id.push_str(&format!("{b:02x}"));
    }
    id
}

/// Feeds the tenant namespace into a fingerprint under tag `0x04`.
/// `None` feeds nothing at all, keeping untenanted ids byte-identical
/// to the pre-tenancy construction.
fn feed_tenant(hasher: &mut crate::sha256::Sha256, tenant: Option<&str>) {
    if let Some(tenant) = tenant {
        hasher.update(&[0x04]);
        hasher.update(&(tenant.len() as u64).to_le_bytes());
        hasher.update(tenant.as_bytes());
    }
}

/// One format class of a multi-class learn request, as the fingerprint
/// sees it: the style payload, its scope, and the example indices the
/// user painted. Borrowed views — fingerprinting allocates nothing but
/// the digest input.
#[derive(Debug, Clone, Copy)]
pub struct ClassFingerprint<'a> {
    /// The class's style payload.
    pub style: &'a Format,
    /// Cell- or row-scoped painting.
    pub scope: TargetScope,
    /// Example indices of this class.
    pub examples: &'a [usize],
}

/// Fingerprints a multi-class learn request into a rule id. Same
/// construction as [`rule_id`] — SHA-256 over length-prefixed cell texts,
/// then tagged index sets, truncated to 128 bits — but the per-class
/// section covers the *k-class observed formats*: each class contributes
/// its canonical style JSON, its scope byte and its sorted example
/// indices under tag `0x03`, so two requests differing only in a fill
/// colour, a scope, or the class order map to different ids. The global
/// negatives keep their `0x02` tag. Single-class requests deliberately do
/// NOT collide with [`rule_id`] of the same examples: a rule-set learn
/// and a boolean learn return different response shapes, so they must
/// cache separately.
pub fn rule_set_id(
    cells: &[String],
    classes: &[ClassFingerprint<'_>],
    negatives: &[usize],
) -> String {
    rule_set_id_for(None, cells, classes, negatives)
}

/// [`rule_set_id`] with a tenant namespace, mirroring [`rule_id_for`]:
/// the tenant feeds under tag `0x04`, `None` is byte-identical to the
/// historical construction.
pub fn rule_set_id_for(
    tenant: Option<&str>,
    cells: &[String],
    classes: &[ClassFingerprint<'_>],
    negatives: &[usize],
) -> String {
    let mut hasher = crate::sha256::Sha256::new();
    for cell in cells {
        hasher.update(&(cell.len() as u64).to_le_bytes());
        hasher.update(cell.as_bytes());
    }
    for class in classes {
        hasher.update(&[0x03]);
        // The canonical style encoding (non-default channels only, fixed
        // order) makes equal styles hash equal regardless of how the
        // request spelled them.
        let style = to_string(&class.style.to_json());
        hasher.update(&(style.len() as u64).to_le_bytes());
        hasher.update(style.as_bytes());
        hasher.update(&[match class.scope {
            TargetScope::Cell => 0x00,
            TargetScope::Row => 0x01,
        }]);
        let mut sorted: Vec<usize> = class.examples.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        hasher.update(&(sorted.len() as u64).to_le_bytes());
        for i in sorted {
            hasher.update(&(i as u64).to_le_bytes());
        }
    }
    let mut feed_indices = |tag: u8, indices: &[usize]| {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        hasher.update(&[tag]);
        hasher.update(&(sorted.len() as u64).to_le_bytes());
        for i in sorted {
            hasher.update(&(i as u64).to_le_bytes());
        }
    };
    feed_indices(0x02, negatives);
    feed_tenant(&mut hasher, tenant);
    let digest = hasher.finish();
    let mut id = String::with_capacity(33);
    id.push('r');
    for b in &digest[..16] {
        id.push_str(&format!("{b:02x}"));
    }
    id
}

/// Subdirectory of the store root holding packed segment files.
pub const SEGMENTS_DIR: &str = "segments";

/// Location of one rule inside a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegLoc {
    seg: u32,
    offset: u64,
    len: u32,
}

/// File-backed rule store with an LRU-bounded in-memory cache and an
/// append-only segment layer for cold rules (see the module docs).
#[derive(Debug)]
pub struct RuleStore {
    dir: PathBuf,
    segments_dir: PathBuf,
    capacity: usize,
    cache: HashMap<String, StoredRule>,
    /// Most-recently-used at the back.
    order: VecDeque<String>,
    /// `id → segment location` for every packed rule.
    index: HashMap<String, SegLoc>,
    /// Every rule id known to be persisted anywhere under the store —
    /// segments, shards or the legacy flat layout. Seeded by the
    /// open-time scan and kept current by `put`/`pack`, this is the miss
    /// fast-path: a `get` for an id not in this set short-circuits
    /// without a single filesystem call. Single-writer contract: a rule
    /// written by *another* process after open is invisible until this
    /// store reopens (the service owns its store directory, so that
    /// only re-learns — content-addressed ids make the re-put a no-op).
    known: HashSet<String>,
    next_segment: u32,
    hits: u64,
    misses: u64,
    /// Cached result of the last [`persisted_in`] walk, kept current
    /// incrementally by `put` and refreshed by [`RuleStore::persisted_cached`]
    /// at most once per [`PERSISTED_SCAN_INTERVAL`].
    persisted_count: usize,
    persisted_at: Option<Instant>,
}

impl RuleStore {
    /// Opens (creating if needed) a store rooted at `dir`, scanning any
    /// existing segment files into the in-memory index. `capacity`
    /// bounds the in-memory cache, minimum 1.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<RuleStore> {
        let dir = dir.into();
        let segments_dir = dir.join(SEGMENTS_DIR);
        std::fs::create_dir_all(&dir)?;
        std::fs::create_dir_all(&segments_dir)?;
        let mut seg_numbers: Vec<u32> = std::fs::read_dir(&segments_dir)?
            .filter_map(Result::ok)
            .filter_map(|e| segment_number(&e.path()))
            .collect();
        seg_numbers.sort_unstable();
        let mut index = HashMap::new();
        for &seg in &seg_numbers {
            // Ascending order: a rule re-packed into a later segment wins.
            scan_segment(&segments_dir, seg, |id, loc| {
                index.insert(id.to_string(), loc);
            });
        }
        // Seed the miss fast-path with every id persisted anywhere:
        // packed records plus the stems of loose per-rule files (flat
        // and sharded — one directory walk, no file is opened).
        let mut known: HashSet<String> = index.keys().cloned().collect();
        for_each_loose_id(&dir, |id| {
            known.insert(id.to_string());
        });
        Ok(RuleStore {
            dir,
            segments_dir,
            capacity: capacity.max(1),
            cache: HashMap::new(),
            order: VecDeque::new(),
            index,
            known,
            next_segment: seg_numbers.last().map_or(1, |n| n + 1),
            hits: 0,
            misses: 0,
            persisted_count: 0,
            persisted_at: None,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of rules currently cached in memory.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// `(memory hits, misses that went to disk or failed)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The sharded path of a rule: `<dir>/<shard>/<id>.json`.
    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(shard_of(id)).join(format!("{id}.json"))
    }

    /// The pre-sharding flat path, still consulted (and migrated from) on
    /// reads so old stores keep working.
    fn flat_path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == id) {
            self.order.remove(pos);
        }
        self.order.push_back(id.to_string());
        while self.cache.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.cache.remove(&evicted);
            } else {
                break;
            }
        }
    }

    /// Looks a rule up: memory first, then the segment index, then the
    /// sharded path, then the legacy flat path (migrating the file into
    /// its shard on a hit). Returns `None` for malformed ids, absent
    /// files, and files that fail to decode (a corrupt file should read
    /// as a miss, not take the server down).
    pub fn get(&mut self, id: &str) -> Option<StoredRule> {
        if !valid_rule_id(id) {
            return None;
        }
        if let Some(found) = self.cache.get(id).cloned() {
            self.hits += 1;
            store_metrics().hits.inc();
            self.touch(id);
            return Some(found);
        }
        self.misses += 1;
        store_metrics().misses.inc();
        // Miss fast-path: an id the open-time scan and every `put` since
        // have never seen cannot be on disk — report absence without the
        // segment lookup and the two-path file probe.
        if !self.known.contains(id) {
            store_metrics().fastpath_misses.inc();
            return None;
        }
        let entry = self
            .read_from_segment(id)
            .or_else(|| self.read_from_loose_file(id))?;
        if entry.id != id {
            return None;
        }
        self.cache.insert(id.to_string(), entry.clone());
        self.touch(id);
        Some(entry)
    }

    /// Reads a packed rule through the segment index. A stale or corrupt
    /// index entry degrades to `None` (the loose-file paths still run).
    fn read_from_segment(&self, id: &str) -> Option<StoredRule> {
        let loc = self.index.get(id).copied()?;
        let mut file = std::fs::File::open(segment_path(&self.segments_dir, loc.seg)).ok()?;
        file.seek(SeekFrom::Start(loc.offset)).ok()?;
        let mut record = vec![0u8; loc.len as usize];
        file.read_exact(&mut record).ok()?;
        let text = String::from_utf8(record).ok()?;
        let entry = decode(STORED_RULE_KIND, &text).ok()?;
        store_metrics().segment_reads.inc();
        Some(entry)
    }

    /// Reads a rule from its per-rule file: sharded path first, then the
    /// legacy flat path (migrating flat hits into their shard).
    fn read_from_loose_file(&self, id: &str) -> Option<StoredRule> {
        let sharded = self.path_for(id);
        match std::fs::read_to_string(&sharded) {
            Ok(text) => decode(STORED_RULE_KIND, &text).ok(),
            Err(_) => {
                // Flat-layout fallback: decode first, migrate second, so a
                // corrupt legacy file is left in place for inspection.
                let flat = self.flat_path_for(id);
                let text = std::fs::read_to_string(&flat).ok()?;
                let entry: StoredRule = decode(STORED_RULE_KIND, &text).ok()?;
                if std::fs::create_dir_all(sharded.parent().expect("sharded path has parent"))
                    .is_ok()
                {
                    // Best-effort: a failed rename still serves the rule.
                    let _ = std::fs::rename(&flat, &sharded);
                }
                Some(entry)
            }
        }
    }

    /// Persists a rule (write file, then cache). The write goes through a
    /// temp file + rename so a crash never leaves a half-written rule;
    /// the temp name carries the pid and a counter so two processes
    /// sharing the store directory cannot interleave writes to one temp
    /// file and rename a torn document into place.
    pub fn put(&mut self, entry: StoredRule) -> io::Result<()> {
        if !valid_rule_id(&entry.id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid rule id `{}`", entry.id),
            ));
        }
        let text = encode(STORED_RULE_KIND, &entry);
        let shard = self.dir.join(shard_of(&entry.id));
        std::fs::create_dir_all(&shard)?;
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = shard.join(format!(
            "{}.{}.{}.tmp",
            entry.id,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        // The known-id set answers "is this rule already on disk?" from
        // memory — the historical implementation probed the segment
        // index plus two candidate paths with filesystem calls here.
        let newly_persisted = !self.known.contains(&entry.id);
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.path_for(&entry.id))?;
        if newly_persisted {
            self.known.insert(entry.id.clone());
            // Keep the cached persisted count current without a rescan
            // (only while a scan is live — before the first
            // `persisted_cached` call there is no count to maintain).
            if self.persisted_at.is_some() {
                self.persisted_count += 1;
            }
        }
        let id = entry.id.clone();
        self.cache.insert(id.clone(), entry);
        self.touch(&id);
        Ok(())
    }

    /// Number of rules persisted on disk (loose per-rule files plus
    /// distinct rules inside segments). This walks the directory — call
    /// [`persisted_in`] with a saved [`RuleStore::dir`] to scan without
    /// holding a store lock, or [`RuleStore::persisted_cached`] for the
    /// throttled count that `/health` and `/metrics` report.
    pub fn persisted(&self) -> usize {
        persisted_in(&self.dir)
    }

    /// The persisted-rule count backed by a cache: the full directory
    /// walk of [`persisted_in`] runs at most once per second, `put`
    /// keeps the count current in between, and every other call is a
    /// field read. This is what `/health` and `/metrics` use so a
    /// monitoring scrape never stalls a request behind a directory walk.
    pub fn persisted_cached(&mut self) -> usize {
        let stale = self
            .persisted_at
            .map_or(true, |at| at.elapsed() >= PERSISTED_SCAN_INTERVAL);
        if stale {
            self.persisted_count = persisted_in(&self.dir);
            self.persisted_at = Some(Instant::now());
        }
        self.persisted_count
    }

    /// Number of distinct rules reachable through the segment index.
    pub fn segment_rules(&self) -> usize {
        self.index.len()
    }

    /// Number of segment files referenced by the index.
    pub fn segment_files(&self) -> usize {
        self.index
            .values()
            .map(|loc| loc.seg)
            .collect::<BTreeSet<u32>>()
            .len()
    }

    /// Packs every loose per-rule file — sharded and legacy flat — into
    /// one new append-only segment file, then deletes the loose sources
    /// and indexes the packed records. Returns the number of rules
    /// packed (`0` when there was nothing loose).
    ///
    /// Crash-safe: the full segment is written to a temp file and
    /// renamed into place before any source file is removed. Corrupt or
    /// mismatched loose files are skipped and **stay put** for
    /// inspection, exactly like the flat-layout migration path.
    pub fn pack(&mut self) -> io::Result<usize> {
        let mut sources: Vec<(PathBuf, StoredRule)> = Vec::new();
        let mut consider = |path: PathBuf| {
            let id = match path.file_stem().and_then(|s| s.to_str()) {
                Some(stem) if valid_rule_id(stem) => stem.to_string(),
                _ => return,
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                return;
            };
            match decode::<StoredRule>(STORED_RULE_KIND, &text) {
                Ok(entry) if entry.id == id => sources.push((path, entry)),
                // Corrupt / mismatched: leave the file alone.
                _ => {}
            }
        };
        for entry in std::fs::read_dir(&self.dir)?.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_file() && path.extension().is_some_and(|x| x == "json") {
                consider(path);
            } else if path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(is_shard_name)
            {
                for file in std::fs::read_dir(&path)?.filter_map(Result::ok) {
                    let file = file.path();
                    if file.is_file() && file.extension().is_some_and(|x| x == "json") {
                        consider(file);
                    }
                }
            }
        }
        if sources.is_empty() {
            return Ok(0);
        }

        let seg = self.next_segment;
        let mut text = String::new();
        let mut locs: Vec<(String, SegLoc)> = Vec::with_capacity(sources.len());
        for (_, entry) in &sources {
            let record = encode(STORED_RULE_KIND, entry);
            debug_assert!(!record.contains('\n'), "codec must escape newlines");
            locs.push((
                entry.id.clone(),
                SegLoc {
                    seg,
                    offset: text.len() as u64,
                    len: record.len() as u32,
                },
            ));
            text.push_str(&record);
            text.push('\n');
        }
        let tmp = self
            .segments_dir
            .join(format!("seg-{seg:06}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, segment_path(&self.segments_dir, seg))?;
        self.next_segment = seg + 1;
        for (path, _) in &sources {
            let _ = std::fs::remove_file(path);
        }
        for (id, loc) in locs {
            // Invariant: ids never change across a pack. Packing moves a
            // record between layouts (loose file → segment) but the rule
            // set itself — and therefore `persisted_cached()` and any
            // index keyed by rule id, like the suggestion index — is
            // unchanged. Under the single-writer contract every packed
            // id was already known (seeded at open or inserted by the
            // `put` that wrote the loose file).
            debug_assert!(
                self.known.contains(&id),
                "pack packed an id the store never saw: {id}"
            );
            self.known.insert(id.clone());
            self.index.insert(id, loc);
        }
        Ok(sources.len())
    }

    /// Number of distinct rule ids the in-memory fast-path set tracks.
    /// Equal to [`RuleStore::persisted`] under the single-writer
    /// contract (and pinned equal across `pack` by the invariant test).
    pub fn tracked_ids(&self) -> usize {
        self.known.len()
    }

    /// Reads every persisted rule once — packed records first, then
    /// loose files whose ids the segment index does not cover (the same
    /// precedence a `get` uses) — calling `found` for each. Corrupt or
    /// mismatched records are skipped. This is the open-time feed for
    /// the suggestion index; it never touches the LRU cache.
    pub fn for_each_stored(&self, mut found: impl FnMut(StoredRule)) {
        for id in self.index.keys() {
            if let Some(entry) = self.read_from_segment(id) {
                if entry.id == *id {
                    found(entry);
                }
            }
        }
        for_each_loose_id(&self.dir, |id| {
            if self.index.contains_key(id) {
                return;
            }
            if let Some(entry) = self.read_from_loose_file(id) {
                if entry.id == id {
                    found(entry);
                }
            }
        });
    }
}

/// Walks the loose per-rule files of a store — flat `.json` files at the
/// root and the contents of every shard subdirectory — yielding each
/// valid rule-id stem. Files are not opened; ids are read off the names.
fn for_each_loose_id(dir: &Path, mut found: impl FnMut(&str)) {
    let visit = |dir: &Path, found: &mut dyn FnMut(&str)| {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_file() && path.extension().is_some_and(|x| x == "json") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        if valid_rule_id(stem) {
                            found(stem);
                        }
                    }
                }
            }
        }
    };
    visit(dir, &mut found);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(is_shard_name)
            {
                visit(&path, &mut found);
            }
        }
    }
}

/// The segment number encoded in a `seg-NNNNNN.seg` file name, if the
/// path is shaped like one.
fn segment_number(path: &Path) -> Option<u32> {
    if path.extension().and_then(|x| x.to_str()) != Some("seg") {
        return None;
    }
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|stem| stem.strip_prefix("seg-"))
        .and_then(|n| n.parse().ok())
}

fn segment_path(segments_dir: &Path, seg: u32) -> PathBuf {
    segments_dir.join(format!("seg-{seg:06}.seg"))
}

/// Scans one segment file, calling `found` for every decodable record
/// (corrupt lines — e.g. a torn tail — are skipped). I/O errors read as
/// an empty segment.
fn scan_segment(segments_dir: &Path, seg: u32, mut found: impl FnMut(&str, SegLoc)) {
    let Ok(text) = std::fs::read_to_string(segment_path(segments_dir, seg)) else {
        return;
    };
    let mut offset = 0u64;
    for line in text.split_inclusive('\n') {
        let record = line.trim_end_matches('\n');
        if !record.is_empty() {
            if let Ok(doc) = cornet_serde::parse(record) {
                if let Ok(payload) = cornet_serde::open_envelope(&doc, STORED_RULE_KIND) {
                    if let Some(id) = payload.get("id").and_then(Json::as_str) {
                        if valid_rule_id(id) {
                            found(
                                id,
                                SegLoc {
                                    seg,
                                    offset,
                                    len: record.len() as u32,
                                },
                            );
                        }
                    }
                }
            }
        }
        offset += line.len() as u64;
    }
}

/// The shard subdirectory of a rule id: its first two hex digits (after
/// the `r` prefix). Short ids — legal per [`valid_rule_id`] but never
/// produced by [`rule_id`] — shard on whatever digits they have.
pub fn shard_of(id: &str) -> &str {
    let end = id.len().min(3);
    &id[1..end]
}

/// True when a directory name is shaped like a shard (one or two
/// lowercase hex characters). Anything else under the store root — e.g.
/// the service's `sessions` directory — is not scanned for rules.
fn is_shard_name(name: &str) -> bool {
    (1..=2).contains(&name.len())
        && name
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

/// Counts the **distinct** rules persisted under a store directory:
/// flat `.json` files at the root (legacy layout), the contents of every
/// shard subdirectory, and the records inside packed segment files —
/// deduplicated by rule id, since packing can briefly leave a rule both
/// loose and in a segment (crash between rename and source delete).
pub fn persisted_in(dir: &Path) -> usize {
    let mut ids: BTreeSet<String> = BTreeSet::new();
    let mut collect_stems = |dir: &Path| {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_file() && path.extension().is_some_and(|x| x == "json") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        ids.insert(stem.to_string());
                    }
                }
            }
        }
    };
    collect_stems(dir);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(is_shard_name)
            {
                collect_stems(&path);
            }
        }
    }
    let segments_dir = dir.join(SEGMENTS_DIR);
    let mut seg_numbers: Vec<u32> = std::fs::read_dir(&segments_dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| segment_number(&e.path()))
                .collect()
        })
        .unwrap_or_default();
    seg_numbers.sort_unstable();
    for seg in seg_numbers {
        scan_segment(&segments_dir, seg, |id, _| {
            ids.insert(id.to_string());
        });
    }
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_core::predicate::{Predicate, TextOp};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cornet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(id: &str, pattern: &str) -> StoredRule {
        StoredRule {
            id: id.to_string(),
            rule: Rule::from_predicate(Predicate::Text {
                op: TextOp::StartsWith,
                pattern: pattern.into(),
            }),
            score: 0.5,
            examples: vec![0, 2],
            negatives: vec![],
            column_len: 6,
            consistent: true,
            rule_set: None,
            tenant: None,
            embedding: None,
        }
    }

    #[test]
    fn rule_ids_are_stable_and_order_insensitive() {
        let cells: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let a = rule_id(&cells, &[0, 2], &[1]);
        let b = rule_id(&cells, &[2, 0], &[1]);
        assert_eq!(a, b, "example order must not change the fingerprint");
        assert!(valid_rule_id(&a), "{a}");
        assert_ne!(a, rule_id(&cells, &[0], &[1]));
        assert_ne!(a, rule_id(&cells, &[0, 2], &[]));
        // Cell boundaries matter: ["ab","c"] != ["a","bc"].
        let ab_c = rule_id(&["ab".into(), "c".into()], &[0], &[]);
        let a_bc = rule_id(&["a".into(), "bc".into()], &[0], &[]);
        assert_ne!(ab_c, a_bc);
        // Including when a cell contains what a naive encoding would use
        // as its separator byte (regression: delimiter injection).
        let tricky_a = rule_id(&["a\u{1f}".into(), "b".into()], &[0], &[]);
        let tricky_b = rule_id(&["a".into(), "\u{1f}b".into()], &[0], &[]);
        assert_ne!(tricky_a, tricky_b);
    }

    #[test]
    fn rule_set_ids_cover_styles_scopes_and_class_order() {
        let cells: Vec<String> = ["done", "todo", "fail"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let green = Format::fill("#dcfce7");
        let yellow = Format::fill("#fef9c3");
        let class = |style, scope, examples| ClassFingerprint {
            style,
            scope,
            examples,
        };
        let base = rule_set_id(
            &cells,
            &[
                class(&green, TargetScope::Cell, &[0]),
                class(&yellow, TargetScope::Cell, &[1]),
            ],
            &[],
        );
        assert!(valid_rule_id(&base), "{base}");
        // Example order inside a class is canonicalised…
        let cells4: Vec<String> = ["done", "todo", "fail", "done"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let fwd = rule_set_id(&cells4, &[class(&green, TargetScope::Cell, &[0, 3])], &[]);
        let rev = rule_set_id(&cells4, &[class(&green, TargetScope::Cell, &[3, 0])], &[]);
        assert_eq!(fwd, rev);
        // …but the style payload, the scope, the class order and the
        // negatives all change the fingerprint.
        let restyled = rule_set_id(
            &cells,
            &[
                class(&yellow, TargetScope::Cell, &[0]),
                class(&green, TargetScope::Cell, &[1]),
            ],
            &[],
        );
        assert_ne!(base, restyled);
        let rescoped = rule_set_id(
            &cells,
            &[
                class(&green, TargetScope::Row, &[0]),
                class(&yellow, TargetScope::Cell, &[1]),
            ],
            &[],
        );
        assert_ne!(base, rescoped);
        let with_negative = rule_set_id(
            &cells,
            &[
                class(&green, TargetScope::Cell, &[0]),
                class(&yellow, TargetScope::Cell, &[1]),
            ],
            &[2],
        );
        assert_ne!(base, with_negative);
        // A single-class set learn never collides with the boolean learn
        // of the same examples: the response shapes differ, so they must
        // cache under different ids.
        let single = rule_set_id(&cells, &[class(&green, TargetScope::Cell, &[0])], &[]);
        assert_ne!(single, rule_id(&cells, &[0], &[]));
    }

    #[test]
    fn stored_rules_with_rule_sets_round_trip_and_stay_legacy_compatible() {
        use cornet_core::ruleset::{RuleSet, StyledRule};
        let mut with_set = entry("r01", "done");
        with_set.rule_set = Some(RuleSet {
            rules: vec![StyledRule {
                rule: with_set.rule.clone(),
                style: Format::fill("#dcfce7"),
                scope: TargetScope::Row,
                priority: 0,
                score: 0.5,
                consistent: true,
            }],
        });
        let wire = encode(STORED_RULE_KIND, &with_set);
        let back: StoredRule = decode(STORED_RULE_KIND, &wire).unwrap();
        assert_eq!(back, with_set);
        // A single-rule record omits the field entirely — its bytes are
        // identical to what pre-rule-set builds wrote, and records written
        // by those builds (no `rule_set` key) decode to None.
        let legacy = entry("r02", "todo");
        let legacy_wire = encode(STORED_RULE_KIND, &legacy);
        assert!(!legacy_wire.contains("rule_set"), "{legacy_wire}");
        let legacy_back: StoredRule = decode(STORED_RULE_KIND, &legacy_wire).unwrap();
        assert_eq!(legacy_back.rule_set, None);
    }

    #[test]
    fn id_validation_blocks_path_shapes() {
        assert!(valid_rule_id("r0123456789abcdef"));
        for bad in ["", "r", "x0f", "r../evil", "r0F", "R00", "r0123/45"] {
            assert!(!valid_rule_id(bad), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn put_get_survives_a_reopen() {
        let dir = temp_dir("reopen");
        let id = rule_id(&["x".into()], &[0], &[]);
        {
            let mut store = RuleStore::open(&dir, 8).unwrap();
            store.put(entry(&id, "RW")).unwrap();
            assert_eq!(store.persisted(), 1);
        }
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.cached(), 0, "fresh process starts cold");
        let got = reopened.get(&id).expect("loads from disk");
        assert_eq!(got, entry(&id, "RW"));
        assert_eq!(reopened.cached(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_memory_but_not_disk() {
        let dir = temp_dir("lru");
        let mut store = RuleStore::open(&dir, 2).unwrap();
        let ids: Vec<String> = (0..4)
            .map(|i| rule_id(&[format!("cell{i}")], &[0], &[]))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            store.put(entry(id, &format!("P{i}"))).unwrap();
        }
        assert_eq!(store.cached(), 2, "capacity bounds the cache");
        assert_eq!(store.persisted(), 4, "eviction never deletes files");
        // The evicted entry is still retrievable (from disk).
        assert!(store.get(&ids[0]).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let dir = temp_dir("lru-order");
        let mut store = RuleStore::open(&dir, 2).unwrap();
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("k{i}")], &[0], &[]))
            .collect();
        store.put(entry(&ids[0], "A")).unwrap();
        store.put(entry(&ids[1], "B")).unwrap();
        store.get(&ids[0]); // refresh 0 → 1 is now least recent
        store.put(entry(&ids[2], "C")).unwrap();
        assert!(store.cache.contains_key(&ids[0]));
        assert!(!store.cache.contains_key(&ids[1]), "LRU entry evicted");
        assert!(store.cache.contains_key(&ids[2]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn puts_land_in_shard_subdirectories() {
        let dir = temp_dir("shard");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let id = rule_id(&["x".into()], &[0], &[]);
        store.put(entry(&id, "RW")).unwrap();
        let sharded = dir.join(shard_of(&id)).join(format!("{id}.json"));
        assert!(sharded.is_file(), "rule not at {}", sharded.display());
        assert!(!dir.join(format!("{id}.json")).exists(), "no flat file");
        assert_eq!(persisted_in(&dir), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_layout_files_migrate_on_read() {
        let dir = temp_dir("migrate");
        let id = rule_id(&["legacy".into()], &[0], &[]);
        let e = entry(&id, "RW");
        // Simulate a pre-sharding store: the envelope sits at the root.
        std::fs::create_dir_all(&dir).unwrap();
        let flat = dir.join(format!("{id}.json"));
        std::fs::write(&flat, encode(STORED_RULE_KIND, &e)).unwrap();

        let mut store = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(store.get(&id).as_ref(), Some(&e), "flat file readable");
        let sharded = dir.join(shard_of(&id)).join(format!("{id}.json"));
        assert!(sharded.is_file(), "file migrated into its shard");
        assert!(!flat.exists(), "flat copy removed by the migration");
        assert_eq!(persisted_in(&dir), 1, "migration does not duplicate");

        // A cold re-open reads it straight from the shard.
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.get(&id).as_ref(), Some(&e));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_flat_files_miss_without_migrating() {
        let dir = temp_dir("corrupt-flat");
        std::fs::create_dir_all(&dir).unwrap();
        let id = rule_id(&["bad".into()], &[0], &[]);
        let flat = dir.join(format!("{id}.json"));
        std::fs::write(&flat, "{not json").unwrap();
        let mut store = RuleStore::open(&dir, 8).unwrap();
        assert!(store.get(&id).is_none());
        assert!(flat.exists(), "corrupt legacy file left for inspection");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_scans_shards_but_not_foreign_directories() {
        let dir = temp_dir("persisted");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("p{i}")], &[0], &[]))
            .collect();
        for id in &ids {
            store.put(entry(id, "P")).unwrap();
        }
        // A legacy flat file still counts…
        let legacy = rule_id(&["flat".into()], &[0], &[]);
        std::fs::write(
            dir.join(format!("{legacy}.json")),
            encode(STORED_RULE_KIND, &entry(&legacy, "F")),
        )
        .unwrap();
        // …but json files in non-shard directories (e.g. sessions) do not.
        let sessions = dir.join("sessions");
        std::fs::create_dir_all(&sessions).unwrap();
        std::fs::write(sessions.join("s1.json"), "{}").unwrap();
        assert_eq!(persisted_in(&dir), 4);
        assert!(shard_of(&ids[0]).len() == 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_read_as_misses() {
        let dir = temp_dir("corrupt");
        let mut store = RuleStore::open(&dir, 4).unwrap();
        let id = rule_id(&["z".into()], &[0], &[]);
        std::fs::write(store.dir().join(format!("{id}.json")), "{not json").unwrap();
        assert!(store.get(&id).is_none());
        // Wrong envelope kind is also a miss, not a panic.
        std::fs::write(
            store.dir().join(format!("{id}.json")),
            cornet_serde::encode("table", &Json::Null),
        )
        .unwrap();
        assert!(store.get(&id).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_rule_envelope_round_trip() {
        let id = rule_id(&["q".into()], &[0], &[]);
        let e = entry(&id, "Dr");
        let wire = encode(STORED_RULE_KIND, &e);
        let back: StoredRule = decode(STORED_RULE_KIND, &wire).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn pack_round_trips_and_survives_a_reopen() {
        let dir = temp_dir("pack");
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("seg{i}")], &[0], &[]))
            .collect();
        {
            let mut store = RuleStore::open(&dir, 8).unwrap();
            for (i, id) in ids.iter().enumerate() {
                store.put(entry(id, &format!("S{i}"))).unwrap();
            }
            assert_eq!(store.pack().unwrap(), 3);
            assert_eq!(store.segment_rules(), 3);
            assert_eq!(store.segment_files(), 1);
            // The loose files are gone; reads come from the segment.
            for id in &ids {
                assert!(!dir.join(shard_of(id)).join(format!("{id}.json")).exists());
            }
            assert_eq!(store.pack().unwrap(), 0, "nothing left to pack");
        }
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.segment_rules(), 3, "index rebuilt at open");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                reopened.get(id).as_ref(),
                Some(&entry(id, &format!("S{i}"))),
                "rule {i} readable from the segment after a cold open"
            );
        }
        assert_eq!(persisted_in(&dir), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_migrates_flat_and_sharded_but_leaves_corrupt_files() {
        let dir = temp_dir("pack-migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // A legacy flat file, a sharded file, and a corrupt flat file.
        let flat_id = rule_id(&["flat-src".into()], &[0], &[]);
        let flat = dir.join(format!("{flat_id}.json"));
        std::fs::write(&flat, encode(STORED_RULE_KIND, &entry(&flat_id, "F"))).unwrap();
        let bad_id = rule_id(&["bad-src".into()], &[0], &[]);
        let bad = dir.join(format!("{bad_id}.json"));
        std::fs::write(&bad, "{torn").unwrap();

        let mut store = RuleStore::open(&dir, 8).unwrap();
        let sharded_id = rule_id(&["shard-src".into()], &[0], &[]);
        store.put(entry(&sharded_id, "Sh")).unwrap();

        assert_eq!(
            store.pack().unwrap(),
            2,
            "flat + sharded, not the corrupt one"
        );
        assert!(!flat.exists(), "packed flat source removed");
        assert!(bad.exists(), "corrupt legacy file left for inspection");
        assert_eq!(store.get(&flat_id).as_ref(), Some(&entry(&flat_id, "F")));
        assert_eq!(store.get(&bad_id), None, "corrupt file still a miss");

        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(
            reopened.get(&sharded_id).as_ref(),
            Some(&entry(&sharded_id, "Sh"))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_counts_segments_and_loose_files_without_double_counting() {
        let dir = temp_dir("pack-persisted");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let packed_ids: Vec<String> = (0..2)
            .map(|i| rule_id(&[format!("cold{i}")], &[0], &[]))
            .collect();
        for id in &packed_ids {
            store.put(entry(id, "C")).unwrap();
        }
        assert_eq!(store.pack().unwrap(), 2);
        // New hot rules land as loose files after the pack.
        let hot = rule_id(&["hot".into()], &[0], &[]);
        store.put(entry(&hot, "H")).unwrap();
        assert_eq!(persisted_in(&dir), 3, "2 packed + 1 loose");
        assert_eq!(store.persisted(), 3);
        // Re-packing folds the hot rule into a second segment.
        assert_eq!(store.pack().unwrap(), 1);
        assert_eq!(store.segment_files(), 2);
        assert_eq!(persisted_in(&dir), 3, "distinct ids, no double count");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_cached_tracks_puts_incrementally() {
        let dir = temp_dir("persisted-cached");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(store.persisted_cached(), 0, "first call scans");
        let ids: Vec<String> = (0..3)
            .map(|i| rule_id(&[format!("inc{i}")], &[0], &[]))
            .collect();
        for id in &ids {
            store.put(entry(id, "I")).unwrap();
        }
        assert_eq!(store.persisted_cached(), 3, "puts advance the count");
        // Re-putting an existing id must not double count.
        store.put(entry(&ids[0], "I2")).unwrap();
        assert_eq!(store.persisted_cached(), 3);
        assert_eq!(store.persisted(), 3, "cached count matches the walk");
        // Packing moves rules into a segment; the distinct count holds.
        assert_eq!(store.pack().unwrap(), 3);
        assert_eq!(store.persisted_cached(), 3);
        // …and a put of a packed id is still not new on disk.
        store.put(entry(&ids[1], "I3")).unwrap();
        assert_eq!(store.persisted_cached(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn global_store_counters_advance() {
        // The global registry is shared by every test in the binary, so
        // assert deltas only — never exact values.
        let dir = temp_dir("obs-counters");
        let metrics = store_metrics();
        let (h0, m0, s0) = (
            metrics.hits.get(),
            metrics.misses.get(),
            metrics.segment_reads.get(),
        );
        let id = rule_id(&["obs".into()], &[0], &[]);
        {
            let mut store = RuleStore::open(&dir, 8).unwrap();
            store.put(entry(&id, "O")).unwrap();
            assert!(store.get(&id).is_some(), "cache hit");
            store.pack().unwrap();
        }
        // A cold store must miss memory and read from the segment.
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert!(reopened.get(&id).is_some());
        assert!(metrics.hits.get() > h0, "cache hit counted");
        assert!(metrics.misses.get() > m0, "cold lookup counted as a miss");
        assert!(metrics.segment_reads.get() > s0, "segment read counted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_lines_are_skipped_at_scan() {
        let dir = temp_dir("pack-corrupt-line");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let id = rule_id(&["ok".into()], &[0], &[]);
        store.put(entry(&id, "Ok")).unwrap();
        store.pack().unwrap();
        // Append a torn record to the segment (simulated crash tail).
        let seg = segment_path(&dir.join(SEGMENTS_DIR), 1);
        let mut text = std::fs::read_to_string(&seg).unwrap();
        text.push_str("{\"v\":1,\"kind\":\"stored-rule\",\"payl");
        std::fs::write(&seg, text).unwrap();

        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.segment_rules(), 1, "torn tail ignored");
        assert_eq!(reopened.get(&id).as_ref(), Some(&entry(&id, "Ok")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn known_absent_ids_short_circuit_without_disk() {
        let dir = temp_dir("fastpath");
        let metrics = store_metrics();
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let present = rule_id(&["here".into()], &[0], &[]);
        store.put(entry(&present, "H")).unwrap();

        // A known-absent id is a fast-path miss (global counters are
        // shared across the test binary: assert deltas only).
        let f0 = metrics.fastpath_misses.get();
        let absent = rule_id(&["nowhere".into()], &[0], &[]);
        assert!(store.get(&absent).is_none());
        assert_eq!(metrics.fastpath_misses.get(), f0 + 1);

        // A present id never takes the fast path — not even on the cold
        // read of a reopened store, where the open-time scan seeds it.
        let f1 = metrics.fastpath_misses.get();
        let mut reopened = RuleStore::open(&dir, 8).unwrap();
        assert!(reopened.get(&present).is_some(), "cold read still served");
        assert!(reopened.get(&absent).is_none());
        assert_eq!(
            metrics.fastpath_misses.get(),
            f1 + 1,
            "only the absent id short-circuited"
        );
        assert_eq!(reopened.tracked_ids(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tenant_namespaces_the_fingerprint() {
        let cells: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let global = rule_id_for(None, &cells, &[0], &[]);
        assert_eq!(
            global,
            rule_id(&cells, &[0], &[]),
            "untenanted ids are byte-identical to the historical construction"
        );
        let acme = rule_id_for(Some("acme"), &cells, &[0], &[]);
        let globex = rule_id_for(Some("globex"), &cells, &[0], &[]);
        assert!(valid_rule_id(&acme));
        assert_ne!(global, acme, "a tenant never hits the global record");
        assert_ne!(acme, globex, "tenants never hit each other's records");

        let green = Format::fill("#dcfce7");
        let class = ClassFingerprint {
            style: &green,
            scope: TargetScope::Cell,
            examples: &[0],
        };
        let set_global = rule_set_id_for(None, &cells, &[class], &[]);
        assert_eq!(set_global, rule_set_id(&cells, &[class], &[]));
        assert_ne!(
            set_global,
            rule_set_id_for(Some("acme"), &cells, &[class], &[])
        );
    }

    #[test]
    fn tenanted_embedded_records_round_trip_and_stay_legacy_compatible() {
        let mut tenanted = entry("r03", "done");
        tenanted.tenant = Some("acme".into());
        tenanted.embedding = Some(vec![0.5, -0.25, 0.125]);
        let wire = encode(STORED_RULE_KIND, &tenanted);
        let back: StoredRule = decode(STORED_RULE_KIND, &wire).unwrap();
        assert_eq!(back, tenanted, "f64 embeddings round-trip exactly");
        // Untenanted, unembedded records omit both keys — bytes identical
        // to what pre-suggestion builds wrote — and legacy records with
        // neither key decode to None.
        let legacy = entry("r04", "todo");
        let legacy_wire = encode(STORED_RULE_KIND, &legacy);
        assert!(!legacy_wire.contains("tenant"), "{legacy_wire}");
        assert!(!legacy_wire.contains("embedding"), "{legacy_wire}");
        let legacy_back: StoredRule = decode(STORED_RULE_KIND, &legacy_wire).unwrap();
        assert_eq!(legacy_back.tenant, None);
        assert_eq!(legacy_back.embedding, None);
    }

    #[test]
    fn pack_never_changes_the_id_set() {
        // The invariant `/health` and the suggestion index both lean on:
        // ids never change across a pack. `persisted_cached()` and the
        // fast-path set must agree before, across and after the pack —
        // any transient disagreement here would surface as a suggestion
        // for a rule `get` then reports absent.
        let dir = temp_dir("pack-id-set");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let ids: Vec<String> = (0..4)
            .map(|i| rule_id(&[format!("inv{i}")], &[0], &[]))
            .collect();
        for id in &ids {
            store.put(entry(id, "V")).unwrap();
        }
        assert_eq!(store.persisted_cached(), 4);
        assert_eq!(store.tracked_ids(), 4);
        assert_eq!(store.pack().unwrap(), 4);
        assert_eq!(store.tracked_ids(), 4, "pack minted or dropped an id");
        assert_eq!(store.persisted_cached(), 4);
        assert_eq!(store.persisted(), 4, "the walk agrees with the caches");
        // Every id is still readable, now out of the segment.
        for id in &ids {
            assert!(store.get(id).is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn for_each_stored_visits_segments_and_loose_files_once_each() {
        let dir = temp_dir("scan-all");
        let mut store = RuleStore::open(&dir, 8).unwrap();
        let packed = rule_id(&["packed".into()], &[0], &[]);
        store.put(entry(&packed, "P")).unwrap();
        store.pack().unwrap();
        let loose = rule_id(&["loose".into()], &[0], &[]);
        store.put(entry(&loose, "L")).unwrap();
        // Re-put a packed id as a loose file: the segment copy wins and
        // the id is visited once, matching `get`'s precedence.
        store.put(entry(&packed, "P")).unwrap();

        let mut seen: Vec<String> = Vec::new();
        store.for_each_stored(|r| seen.push(r.id));
        seen.sort();
        let mut want = vec![packed.clone(), loose.clone()];
        want.sort();
        assert_eq!(seen, want);

        // A reopened store scans identically (the index rebuild path).
        let reopened = RuleStore::open(&dir, 8).unwrap();
        let mut seen2: Vec<String> = Vec::new();
        reopened.for_each_stored(|r| seen2.push(r.id));
        seen2.sort();
        assert_eq!(seen2, want);
        std::fs::remove_dir_all(&dir).ok();
    }
}
