//! Zero-example rule suggestion: the embedding index behind `POST /suggest`.
//!
//! Every learned rule's column is embedded into a fixed-dimension vector
//! (the [`HashEmbedder`]'s order-invariant token average) and persisted
//! inside the [`crate::store::StoredRule`] record, so the index rebuilds
//! from the store alone at open — no side files, no re-reading cell text.
//! Retrieval is an exact k-nearest-neighbour query over a
//! [`BallTree`] per namespace, which is what makes the lookup sublinear
//! in the corpus size (see the `suggest_index` bench).
//!
//! ## Tenancy
//!
//! The index is namespaced: rules learned without a tenant live in the
//! shared global namespace, rules learned under a tenant live in that
//! tenant's namespace. A `/suggest` under tenant A searches A's namespace
//! plus the global one and *never* touches tenant B's — one tenant's cell
//! data can never surface in another tenant's suggestions. The tenant is
//! also fed into the rule fingerprint ([`crate::store::rule_id_for`]), so
//! two tenants learning the same column produce distinct store records.

use cornet_nn::{BallTree, HashEmbedder};
use cornet_obs::Counter;
use cornet_serde::{field_t, optional_field_t, DecodeError, FromJson, Json, ToJson};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Width of a stored-rule embedding. Changing this (or the seed below)
/// orphans every persisted embedding: records whose stored vector no
/// longer matches the live dimension are skipped at index rebuild and
/// only become suggestible again once re-learned.
pub const SUGGEST_EMBED_DIM: usize = 16;

/// Hash-table rows of the suggestion embedder.
const SUGGEST_EMBED_BUCKETS: usize = 1024;

/// Fixed seed of the suggestion embedder. Part of the on-disk contract:
/// persisted embeddings are only comparable to fresh ones because every
/// process derives the identical frozen table from this seed.
const SUGGEST_EMBED_SEED: u64 = 0x5347_5354; // "SGST"

/// The process-wide suggestion embedder (frozen, deterministic).
pub fn suggest_embedder() -> &'static HashEmbedder {
    static EMBEDDER: OnceLock<HashEmbedder> = OnceLock::new();
    EMBEDDER.get_or_init(|| {
        HashEmbedder::new(SUGGEST_EMBED_DIM, SUGGEST_EMBED_BUCKETS, SUGGEST_EMBED_SEED)
    })
}

/// Embeds a column's cells into its signature vector: the order-invariant
/// L2-normalised token average, so `["a","b"]` and `["b","a"]` retrieve
/// the same stored rules. A column of empty cells maps to the zero
/// vector, which the index refuses to store (it carries no signal).
pub fn embed_column<S: AsRef<str>>(cells: &[S]) -> Vec<f64> {
    suggest_embedder().embed_tokens(cells)
}

/// Process-wide suggestion counters in the global [`cornet_obs`] registry.
pub(crate) struct SuggestMetrics {
    /// `/suggest` queries served (including empty results).
    pub queries: Counter,
    /// Queries that produced no suggestions.
    pub empty: Counter,
    /// Suggestions returned across all queries.
    pub candidates: Counter,
}

pub(crate) fn suggest_metrics() -> &'static SuggestMetrics {
    static METRICS: OnceLock<SuggestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = cornet_obs::registry();
        SuggestMetrics {
            queries: registry.counter(
                "cornet_suggest_queries_total",
                "Zero-example suggestion queries served.",
            ),
            empty: registry.counter(
                "cornet_suggest_empty_total",
                "Suggestion queries that returned no candidates.",
            ),
            candidates: registry.counter(
                "cornet_suggest_candidates_total",
                "Suggestions returned across all queries.",
            ),
        }
    })
}

/// One tenancy namespace: a ball tree plus the rule ids aligned with its
/// point indices, and the id set that makes re-inserts idempotent (a
/// cache-hit learn or a rebuild-plus-put must not duplicate a point).
struct Namespace {
    tree: BallTree,
    ids: Vec<String>,
    seen: HashSet<String>,
}

impl Namespace {
    fn new() -> Namespace {
        Namespace {
            tree: BallTree::new(SUGGEST_EMBED_DIM),
            ids: Vec::new(),
            seen: HashSet::new(),
        }
    }
}

/// The tenant-namespaced embedding index over stored rules.
///
/// Key `""` is the shared global namespace (rules learned without a
/// tenant); every other key is a tenant's private namespace. Queries
/// merge the caller's namespace with the global one and nothing else.
pub struct SuggestIndex {
    namespaces: HashMap<String, Namespace>,
}

impl Default for SuggestIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SuggestIndex {
    /// An empty index.
    pub fn new() -> SuggestIndex {
        SuggestIndex {
            namespaces: HashMap::new(),
        }
    }

    /// Indexes a stored rule's embedding under its tenant (global when
    /// `None`). Idempotent per id. Vectors of the wrong dimension (a
    /// record persisted under an older [`SUGGEST_EMBED_DIM`]) and
    /// all-zero vectors (an empty-cell column) are skipped — both are
    /// unretrievable, not errors. Returns whether the point was added.
    pub fn insert(&mut self, tenant: Option<&str>, id: &str, embedding: &[f64]) -> bool {
        if embedding.len() != SUGGEST_EMBED_DIM || embedding.iter().all(|&v| v == 0.0) {
            return false;
        }
        let ns = self
            .namespaces
            .entry(tenant.unwrap_or("").to_string())
            .or_insert_with(Namespace::new);
        if !ns.seen.insert(id.to_string()) {
            return false;
        }
        ns.tree.insert(embedding);
        ns.ids.push(id.to_string());
        true
    }

    /// Total indexed points across every namespace.
    pub fn len(&self) -> usize {
        self.namespaces.values().map(|ns| ns.tree.len()).sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest stored rules to `query` visible to `tenant`: its
    /// own namespace merged with the global one, sorted by
    /// `(distance, rule_id)`. The id tiebreak (not the tree's internal
    /// point index) keeps the order stable across restarts, where
    /// namespace rebuild order — and therefore point numbering — differs.
    pub fn query(&self, tenant: Option<&str>, query: &[f64], k: usize) -> Vec<(String, f64)> {
        let mut merged: Vec<(String, f64)> = Vec::new();
        let mut scan = |key: &str| {
            if let Some(ns) = self.namespaces.get(key) {
                for n in ns.tree.nearest(query, k) {
                    merged.push((ns.ids[n.index].clone(), n.dist));
                }
            }
        };
        scan("");
        if let Some(t) = tenant {
            if !t.is_empty() {
                scan(t);
            }
        }
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        merged.truncate(k);
        merged
    }
}

/// `suggest`: a bare column (zero examples) to retrieve stored rules for.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestRequest {
    /// Raw cell texts of the unformatted column.
    pub cells: Vec<String>,
    /// Tenancy scope: search this tenant's rules plus the global ones.
    pub tenant: Option<String>,
    /// Maximum suggestions to return (default 3, capped at 16).
    pub k: Option<usize>,
}

impl FromJson for SuggestRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(SuggestRequest {
            cells: field_t(json, "cells")?,
            tenant: optional_field_t(json, "tenant")?,
            k: optional_field_t(json, "k")?,
        })
    }
}

impl ToJson for SuggestRequest {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("cells".to_string(), self.cells.to_json())];
        if let Some(t) = &self.tenant {
            pairs.push(("tenant".to_string(), Json::str(t.clone())));
        }
        if let Some(k) = self.k {
            pairs.push(("k".to_string(), k.to_json()));
        }
        Json::Object(pairs)
    }
}

/// One suggested rule, re-scored against the fresh column.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Store id of the suggested rule — usable directly with `/score`.
    pub rule_id: String,
    /// Human-readable rule text.
    pub rule_text: String,
    /// Excel conditional-formatting formula equivalent.
    pub formula: String,
    /// Indices the rule formats on the *submitted* column.
    pub matches: Vec<usize>,
    /// Embedding similarity `1 / (1 + distance)` in `(0, 1]`.
    pub similarity: f64,
    /// Ranking score: similarity × selectivity of the rule on the fresh
    /// column (see [`CornetService::suggest`](crate::CornetService::suggest)).
    pub score: f64,
    /// The stored rule's consistency flag (see `LearnResponse`).
    pub consistent: bool,
}

impl ToJson for Suggestion {
    fn to_json(&self) -> Json {
        Json::object([
            ("rule_id", Json::str(self.rule_id.clone())),
            ("rule_text", Json::str(self.rule_text.clone())),
            ("formula", Json::str(self.formula.clone())),
            ("matches", self.matches.to_json()),
            ("similarity", Json::Number(self.similarity)),
            ("score", Json::Number(self.score)),
            ("consistent", Json::Bool(self.consistent)),
        ])
    }
}

impl FromJson for Suggestion {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(Suggestion {
            rule_id: field_t(json, "rule_id")?,
            rule_text: field_t(json, "rule_text")?,
            formula: field_t(json, "formula")?,
            matches: field_t(json, "matches")?,
            similarity: field_t(json, "similarity")?,
            score: field_t(json, "score")?,
            consistent: field_t(json, "consistent")?,
        })
    }
}

/// `suggest` result: re-scored nearest stored rules, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestResponse {
    /// Suggestions ordered by descending score.
    pub suggestions: Vec<Suggestion>,
    /// Points in the embedding index at query time (all namespaces the
    /// process holds, not just the ones this query searched).
    pub indexed: usize,
    /// Number of cells in the submitted column.
    pub n_cells: usize,
}

impl ToJson for SuggestResponse {
    fn to_json(&self) -> Json {
        Json::object([
            ("suggestions", self.suggestions.to_json()),
            ("indexed", self.indexed.to_json()),
            ("n_cells", self.n_cells.to_json()),
        ])
    }
}

impl FromJson for SuggestResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(SuggestResponse {
            suggestions: field_t(json, "suggestions")?,
            indexed: field_t(json, "indexed")?,
            n_cells: field_t(json, "n_cells")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_serde::{decode, encode};

    fn emb(cells: &[&str]) -> Vec<f64> {
        embed_column(cells)
    }

    #[test]
    fn embedding_is_order_invariant_and_normalised() {
        let a = emb(&["RW-187", "TW-224"]);
        let b = emb(&["TW-224", "RW-187"]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(a.len(), SUGGEST_EMBED_DIM);
    }

    #[test]
    fn insert_is_idempotent_and_rejects_bad_vectors() {
        let mut index = SuggestIndex::new();
        let e = emb(&["alpha", "beta"]);
        assert!(index.insert(None, "r1", &e));
        assert!(!index.insert(None, "r1", &e), "same id twice");
        assert_eq!(index.len(), 1);
        assert!(!index.insert(None, "r2", &vec![0.0; SUGGEST_EMBED_DIM]));
        assert!(!index.insert(None, "r3", &[1.0, 2.0]), "wrong dimension");
        assert_eq!(index.len(), 1);
        // The same id under a different tenant is a distinct point — the
        // fingerprint already separates them, this mirrors it.
        assert!(index.insert(Some("acme"), "r1", &e));
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn query_merges_tenant_and_global_but_never_other_tenants() {
        let mut index = SuggestIndex::new();
        index.insert(None, "global", &emb(&["RW-1", "RW-2"]));
        index.insert(Some("acme"), "acme-rule", &emb(&["RW-3", "RW-4"]));
        index.insert(Some("globex"), "globex-rule", &emb(&["RW-5", "RW-6"]));

        let q = emb(&["RW-7", "RW-8"]);
        let acme: Vec<String> = index
            .query(Some("acme"), &q, 10)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert!(acme.contains(&"global".to_string()));
        assert!(acme.contains(&"acme-rule".to_string()));
        assert!(
            !acme.contains(&"globex-rule".to_string()),
            "tenant isolation breached: {acme:?}"
        );
        let anon: Vec<String> = index
            .query(None, &q, 10)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(anon, vec!["global".to_string()], "anonymous = global only");
    }

    #[test]
    fn query_order_is_deterministic_across_rebuild_orders() {
        // Two indexes built in opposite insertion order must answer
        // identically — the restart guarantee.
        let points = [
            ("a", emb(&["PASS", "FAIL"])),
            ("b", emb(&["pass", "fail"])), // identical after lowercasing
            ("c", emb(&["2021-01-01", "2021-02-03"])),
        ];
        let mut fwd = SuggestIndex::new();
        let mut rev = SuggestIndex::new();
        for (id, e) in &points {
            fwd.insert(None, id, e);
        }
        for (id, e) in points.iter().rev() {
            rev.insert(None, id, e);
        }
        let q = emb(&["PASS", "PASS"]);
        assert_eq!(fwd.query(None, &q, 3), rev.query(None, &q, 3));
    }

    #[test]
    fn wire_types_round_trip() {
        let req = SuggestRequest {
            cells: vec!["RW-187".into(), "TW-224".into()],
            tenant: Some("acme".into()),
            k: Some(5),
        };
        let back: SuggestRequest = decode("t", &encode("t", &req)).unwrap();
        assert_eq!(back, req);

        let bare = SuggestRequest {
            cells: vec!["x".into()],
            tenant: None,
            k: None,
        };
        let wire = encode("t", &bare);
        assert!(
            !wire.contains("tenant") && !wire.contains("\"k\""),
            "{wire}"
        );
        let back: SuggestRequest = decode("t", &wire).unwrap();
        assert_eq!(back, bare);

        let resp = SuggestResponse {
            suggestions: vec![Suggestion {
                rule_id: "r1".into(),
                rule_text: "TextStartsWith(\"RW\")".into(),
                formula: "=LEFT(A1,2)=\"RW\"".into(),
                matches: vec![0, 2],
                similarity: 0.75,
                score: 0.5,
                consistent: true,
            }],
            indexed: 7,
            n_cells: 4,
        };
        let back: SuggestResponse = decode("t", &encode("t", &resp)).unwrap();
        assert_eq!(back, resp);
    }
}
