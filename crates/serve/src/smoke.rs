//! The scripted end-to-end smoke session: learn → score → correct →
//! re-learn → restart → score again from the persisted store.
//!
//! Run via `cornet-serve smoke` (the CI `serve-smoke` job) or call
//! [`run`] from a test. Everything happens over a real loopback socket
//! against a throwaway store directory; any assertion failure is
//! returned as `Err` and the binary exits non-zero.

use crate::http::http_request;
use crate::service::{CornetService, ServiceConfig};
use crate::Server;
use cornet_serde::{open_envelope, FromJson, Json};
use std::net::SocketAddr;
use std::sync::Arc;

/// The running-example column driven through the session.
const CELLS: &str = r#"["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"]"#;

fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    kind: &str,
    log: &mut Vec<String>,
) -> Result<Json, String> {
    let (status, doc) =
        http_request(addr, "POST", path, Some(body)).map_err(|e| format!("POST {path}: {e}"))?;
    if status != 200 {
        return Err(format!("POST {path}: status {status}, body {doc}"));
    }
    let payload = open_envelope(&doc, kind).map_err(|e| format!("POST {path}: {e}"))?;
    log.push(format!("POST {path} → 200 {payload}"));
    Ok(payload.clone())
}

fn get(addr: SocketAddr, path: &str, kind: &str) -> Result<Json, String> {
    let (status, doc) =
        http_request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}, body {doc}"));
    }
    Ok(open_envelope(&doc, kind)
        .map_err(|e| format!("GET {path}: {e}"))?
        .clone())
}

fn matches_of(payload: &Json) -> Result<Vec<usize>, String> {
    Vec::<usize>::from_json(
        payload
            .get("matches")
            .ok_or_else(|| format!("no matches in {payload}"))?,
    )
    .map_err(|e| e.to_string())
}

fn expect(cond: bool, what: &str, log: &[String]) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!(
            "assertion failed: {what}\ntranscript:\n{}",
            log.join("\n")
        ))
    }
}

/// Runs the full scripted session; returns the transcript on success.
pub fn run() -> Result<Vec<String>, String> {
    let dir = std::env::temp_dir().join(format!("cornet-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_in(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn start_server(dir: &std::path::Path) -> Result<Server, String> {
    let service = CornetService::new(&ServiceConfig {
        store_dir: dir.to_path_buf(),
        cache_capacity: 64,
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;
    Server::start("127.0.0.1:0", Arc::new(service)).map_err(|e| format!("bind: {e}"))
}

fn run_in(dir: &std::path::Path) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let mut server = start_server(dir)?;
    let addr = server.addr();
    log.push(format!("server up on {addr} (store {})", dir.display()));

    // 1. Learn from examples {0, 2, 5} — the paper's running example.
    let learn_body = format!(r#"{{"cells":{CELLS},"examples":[0,2,5]}}"#);
    let learned = post(addr, "/learn", &learn_body, "learn", &mut log)?;
    let rule_id = learned
        .get("rule_id")
        .and_then(Json::as_str)
        .ok_or("learn response missing rule_id")?
        .to_string();
    expect(
        matches_of(&learned)? == vec![0, 2, 5],
        "learned rule formats exactly the examples",
        &log,
    )?;
    expect(
        learned.get("cached").and_then(Json::as_bool) == Some(false),
        "first learn is not cached",
        &log,
    )?;

    // 2. Score fresh rows with the stored rule.
    let score_body =
        format!(r#"{{"rule_id":"{rule_id}","cells":["RW-555","XX-1","RW-9-T","rw-777"]}}"#);
    let scored = post(addr, "/score", &score_body, "score", &mut log)?;
    let fresh = matches_of(&scored)?;
    expect(
        fresh.contains(&0) && fresh.contains(&3) && !fresh.contains(&1),
        "stored rule scores fresh rows (case-insensitively)",
        &log,
    )?;

    // 3. The demo loop: open a session with one example, then correct it.
    let session = post(
        addr,
        "/session",
        &format!(r#"{{"cells":{CELLS},"examples":[0]}}"#),
        "session",
        &mut log,
    )?;
    let sid = session
        .get("session_id")
        .and_then(Json::as_str)
        .ok_or("session response missing session_id")?
        .to_string();

    // The user formats RW-312 (5) and unformats RW-131-T (3); the service
    // must re-learn a rule honouring both corrections.
    let corrected = post(
        addr,
        &format!("/session/{sid}/correct"),
        r#"{"format":[5],"unformat":[3]}"#,
        "session",
        &mut log,
    )?;
    let result = corrected
        .get("result")
        .filter(|r| !r.is_null())
        .ok_or("corrected session has no rule")?;
    let relearned = matches_of(result)?;
    expect(
        relearned.contains(&5) && !relearned.contains(&3),
        "re-learned rule honours both corrections",
        &log,
    )?;

    // 4. Restart: a new server process (fresh service) over the same
    // store directory must answer from persisted rules without learning.
    server.shutdown();
    log.push("server restarted".into());
    let mut server = start_server(dir)?;
    let addr = server.addr();

    let scored = post(addr, "/score", &score_body, "score", &mut log)?;
    let fresh_again = matches_of(&scored)?;
    expect(
        fresh_again == fresh,
        "restarted server scores identically from the persisted store",
        &log,
    )?;
    let learned_again = post(addr, "/learn", &learn_body, "learn", &mut log)?;
    expect(
        learned_again.get("cached").and_then(Json::as_bool) == Some(true),
        "identical learn after restart is a store hit",
        &log,
    )?;
    let health = get(addr, "/health", "health")?;
    expect(
        health.get("learns_performed").and_then(Json::as_u64) == Some(0),
        "restarted server never invoked the learner",
        &log,
    )?;
    log.push(format!("health after restart: {health}"));
    server.shutdown();
    Ok(log)
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_session_passes() {
        let log = super::run().unwrap_or_else(|e| panic!("{e}"));
        assert!(log.iter().any(|l| l.contains("restarted")));
    }
}
