//! The scripted end-to-end smoke session: learn → score → correct →
//! re-learn → restart → score again from the persisted store, resume the
//! persisted session, and keep correcting it.
//!
//! Run via `cornet-serve smoke` (the CI `serve-smoke` job) or call
//! [`run`] from a test. Everything happens over a real loopback socket
//! against a throwaway store directory; any assertion failure is
//! returned as `Err` and the binary exits non-zero.

use crate::http::{http_request, http_request_text};
use crate::service::{CornetService, ServiceConfig};
use crate::Server;
use cornet_serde::{open_envelope, FromJson, Json};
use std::net::SocketAddr;
use std::sync::Arc;

/// Scrapes `GET /metrics` and returns the value of one unlabelled
/// sample, failing loudly when the exposition does not parse.
fn scrape(addr: SocketAddr, name: &str) -> Result<f64, String> {
    let (status, text) =
        http_request_text(addr, "GET", "/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: status {status}"));
    }
    let expo =
        cornet_obs::expo::parse(&text).map_err(|e| format!("/metrics did not parse: {e}"))?;
    expo.value(name, &[])
        .ok_or_else(|| format!("/metrics is missing `{name}`"))
}

/// The running-example column driven through the session.
const CELLS: &str = r#"["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"]"#;

/// A three-format status column for the multi-class rule-set leg.
const STATUS_CELLS: &str =
    r#"["completed","pending","failed","completed","pending","failed","completed"]"#;

/// The three format classes painted on [`STATUS_CELLS`]: green, yellow
/// and red row fills, one example each.
const STATUS_CLASSES: &str = concat!(
    r##"[{"style":{"fill":"#dcfce7"},"scope":"row","examples":[0]},"##,
    r##"{"style":{"fill":"#fef9c3"},"scope":"row","examples":[1]},"##,
    r##"{"style":{"fill":"#fee2e2"},"scope":"row","examples":[2]}]"##
);

/// Asserts a learn/session result carries the full 3-class status rule
/// set: one rule per class with its style payload, class-order priority
/// and a consistent flag.
fn check_status_rule_set(result: &Json, log: &[String]) -> Result<(), String> {
    let rules = result
        .get("rule_set")
        .and_then(|s| s.get("rules"))
        .and_then(Json::as_array)
        .ok_or_else(|| format!("result has no rule_set.rules: {result}"))?;
    expect(rules.len() == 3, "rule set keeps all three classes", log)?;
    for (k, (rule, fill)) in rules
        .iter()
        .zip(["#dcfce7", "#fef9c3", "#fee2e2"])
        .enumerate()
    {
        expect(
            rule.get("style")
                .and_then(|s| s.get("fill"))
                .and_then(Json::as_str)
                == Some(fill),
            &format!("rule {k} keeps its style payload"),
            log,
        )?;
        expect(
            rule.get("scope").and_then(Json::as_str) == Some("row"),
            &format!("rule {k} keeps its row scope"),
            log,
        )?;
        expect(
            rule.get("priority").and_then(Json::as_u64) == Some(k as u64),
            &format!("rule {k} keeps its class-order priority"),
            log,
        )?;
        expect(
            rule.get("consistent").and_then(Json::as_bool) == Some(true),
            &format!("rule {k} is consistent with its class"),
            log,
        )?;
    }
    Ok(())
}

fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    kind: &str,
    log: &mut Vec<String>,
) -> Result<Json, String> {
    let (status, doc) =
        http_request(addr, "POST", path, Some(body)).map_err(|e| format!("POST {path}: {e}"))?;
    if status != 200 {
        return Err(format!("POST {path}: status {status}, body {doc}"));
    }
    let payload = open_envelope(&doc, kind).map_err(|e| format!("POST {path}: {e}"))?;
    log.push(format!("POST {path} → 200 {payload}"));
    Ok(payload.clone())
}

fn get(addr: SocketAddr, path: &str, kind: &str) -> Result<Json, String> {
    let (status, doc) =
        http_request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}, body {doc}"));
    }
    Ok(open_envelope(&doc, kind)
        .map_err(|e| format!("GET {path}: {e}"))?
        .clone())
}

fn matches_of(payload: &Json) -> Result<Vec<usize>, String> {
    Vec::<usize>::from_json(
        payload
            .get("matches")
            .ok_or_else(|| format!("no matches in {payload}"))?,
    )
    .map_err(|e| e.to_string())
}

fn expect(cond: bool, what: &str, log: &[String]) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!(
            "assertion failed: {what}\ntranscript:\n{}",
            log.join("\n")
        ))
    }
}

/// Runs the full scripted session; returns the transcript on success.
pub fn run() -> Result<Vec<String>, String> {
    let dir = std::env::temp_dir().join(format!("cornet-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_in(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn start_server(dir: &std::path::Path) -> Result<Server, String> {
    let service = CornetService::new(&ServiceConfig {
        store_dir: dir.to_path_buf(),
        cache_capacity: 64,
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;
    Server::start("127.0.0.1:0", Arc::new(service)).map_err(|e| format!("bind: {e}"))
}

fn run_in(dir: &std::path::Path) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let mut server = start_server(dir)?;
    let addr = server.addr();
    log.push(format!("server up on {addr} (store {})", dir.display()));

    // 1. Learn from examples {0, 2, 5} — the paper's running example.
    let learn_body = format!(r#"{{"cells":{CELLS},"examples":[0,2,5]}}"#);
    let learned = post(addr, "/learn", &learn_body, "learn", &mut log)?;
    let rule_id = learned
        .get("rule_id")
        .and_then(Json::as_str)
        .ok_or("learn response missing rule_id")?
        .to_string();
    expect(
        matches_of(&learned)? == vec![0, 2, 5],
        "learned rule formats exactly the examples",
        &log,
    )?;
    expect(
        learned.get("cached").and_then(Json::as_bool) == Some(false),
        "first learn is not cached",
        &log,
    )?;

    // 2. Score fresh rows with the stored rule.
    let score_body =
        format!(r#"{{"rule_id":"{rule_id}","cells":["RW-555","XX-1","RW-9-T","rw-777"]}}"#);
    let scored = post(addr, "/score", &score_body, "score", &mut log)?;
    let fresh = matches_of(&scored)?;
    expect(
        fresh.contains(&0) && fresh.contains(&3) && !fresh.contains(&1),
        "stored rule scores fresh rows (case-insensitively)",
        &log,
    )?;

    // 2b. Zero-example suggestion: a bare column (no examples at all)
    // retrieves the stored rule from the embedding index and re-scores
    // it against the fresh cells. No learner run is involved.
    let suggest_body = r#"{"cells":["RW-555","XX-1","RW-9-T","rw-777"]}"#;
    let suggested = post(addr, "/suggest", suggest_body, "suggest", &mut log)?;
    let suggestions = suggested
        .get("suggestions")
        .and_then(Json::as_array)
        .ok_or("suggest response missing suggestions")?;
    expect(
        !suggestions.is_empty(),
        "bare column finds the stored rule",
        &log,
    )?;
    expect(
        suggestions[0].get("rule_id").and_then(Json::as_str) == Some(rule_id.as_str()),
        "suggestion is the learned rule",
        &log,
    )?;
    let suggested_matches = matches_of(&suggestions[0])?;
    expect(
        suggested_matches.contains(&0) && !suggested_matches.contains(&1),
        "suggestion is re-scored against the fresh cells",
        &log,
    )?;
    expect(
        scrape(addr, "cornet_suggest_queries_total")? >= 1.0,
        "suggest queries show on /metrics",
        &log,
    )?;

    // 3. The demo loop: open a session with one example, then correct it.
    let session = post(
        addr,
        "/session",
        &format!(r#"{{"cells":{CELLS},"examples":[0]}}"#),
        "session",
        &mut log,
    )?;
    let sid = session
        .get("session_id")
        .and_then(Json::as_str)
        .ok_or("session response missing session_id")?
        .to_string();

    // The user formats RW-312 (5) and unformats RW-131-T (3); the service
    // must re-learn, through the constrained learner, a rule honouring
    // both corrections — consistent:true means the rule itself excludes
    // the negative, not that a filter scrubbed it from the matches.
    let corrected = post(
        addr,
        &format!("/session/{sid}/correct"),
        r#"{"format":[5],"unformat":[3]}"#,
        "session",
        &mut log,
    )?;
    let result = corrected
        .get("result")
        .filter(|r| !r.is_null())
        .ok_or("corrected session has no rule")?;
    let relearned = matches_of(result)?;
    expect(
        relearned.contains(&5) && !relearned.contains(&3),
        "re-learned rule honours both corrections",
        &log,
    )?;
    expect(
        result.get("consistent").and_then(Json::as_bool) == Some(true),
        "constrained re-learn is consistent",
        &log,
    )?;
    // The rule (not a filtered mask) excludes the corrected value: a
    // fresh row holding it stays unformatted.
    let corrected_rule = result.get("rule").ok_or("corrected result has no rule")?;
    let rescored = post(
        addr,
        "/score",
        &format!(
            r#"{{"rule":{},"cells":["RW-131-T","RW-312"]}}"#,
            cornet_serde::to_string(corrected_rule)
        ),
        "score",
        &mut log,
    )?;
    expect(
        matches_of(&rescored)? == vec![1],
        "re-learned rule excludes the corrected value on fresh rows",
        &log,
    )?;

    // An unsatisfiable correction abstains: cells 0 and 1 hold the same
    // value, so no rule can format one and not the other —
    // consistent:false now means "provably no rule in the language".
    let abstain = post(
        addr,
        "/learn",
        r#"{"cells":["x","x","y","z"],"examples":[0],"negatives":[1]}"#,
        "learn",
        &mut log,
    )?;
    expect(
        abstain.get("consistent").and_then(Json::as_bool) == Some(false),
        "unsatisfiable corrections abstain with consistent:false",
        &log,
    )?;

    // 3b. Multi-class: a session over a three-format status column learns
    // a whole rule set in one call — one styled, prioritized rule per
    // class. Correcting one cell re-learns the set; the per-class state
    // and the stored set must survive the restart below.
    let multi = post(
        addr,
        "/session",
        &format!(r#"{{"cells":{STATUS_CELLS},"classes":{STATUS_CLASSES}}}"#),
        "session",
        &mut log,
    )?;
    let msid = multi
        .get("session_id")
        .and_then(Json::as_str)
        .ok_or("multi-class session response missing session_id")?
        .to_string();
    check_status_rule_set(
        multi
            .get("result")
            .filter(|r| !r.is_null())
            .ok_or("multi-class session has no rule set")?,
        &log,
    )?;
    // The user paints the last "completed" row green explicitly (class 0).
    let multi_corrected = post(
        addr,
        &format!("/session/{msid}/correct"),
        r#"{"format":[6],"class":0}"#,
        "session",
        &mut log,
    )?;
    let multi_result = multi_corrected
        .get("result")
        .filter(|r| !r.is_null())
        .ok_or("corrected multi-class session has no rule set")?
        .clone();
    check_status_rule_set(&multi_result, &log)?;
    let multi_rule_id = multi_result
        .get("rule_id")
        .and_then(Json::as_str)
        .ok_or("multi-class result missing rule_id")?
        .to_string();

    // The scripted session so far must be visible on /metrics: the
    // per-service learn gauge counts the real learner invocations above
    // (cache hits excluded), and some rules are persisted.
    let learns_before = scrape(addr, "cornet_service_learns_performed")?;
    expect(
        learns_before >= 3.0,
        "session's learner invocations show on /metrics",
        &log,
    )?;
    expect(
        scrape(addr, "cornet_service_store_persisted_rules")? >= 3.0,
        "persisted rules show on /metrics",
        &log,
    )?;
    log.push(format!("metrics before restart: learns={learns_before}"));

    // 4. Pack the store: every loose per-rule file folds into an
    // append-only segment, so the restart below answers from segments.
    let packed = post(addr, "/admin/pack", "{}", "pack", &mut log)?;
    let packed_count = packed
        .get("packed")
        .and_then(Json::as_u64)
        .ok_or("pack response missing packed count")?;
    expect(
        packed_count >= 3,
        "pack folds the session's learned rules into a segment",
        &log,
    )?;

    // 5. Restart: a new server process (fresh service) over the same
    // store directory must answer from persisted rules without learning.
    server.shutdown();
    log.push("server restarted".into());
    let mut server = start_server(dir)?;
    let addr = server.addr();

    let scored = post(addr, "/score", &score_body, "score", &mut log)?;
    let fresh_again = matches_of(&scored)?;
    expect(
        fresh_again == fresh,
        "restarted server scores identically from the persisted store",
        &log,
    )?;
    let learned_again = post(addr, "/learn", &learn_body, "learn", &mut log)?;
    expect(
        learned_again.get("cached").and_then(Json::as_bool) == Some(true),
        "identical learn after restart is a store hit",
        &log,
    )?;

    // 6. The session survived the restart: same id, same corrections,
    // same rule — served from the persisted session state, not re-learned.
    let resumed = get(addr, &format!("/session/{sid}"), "session")?;
    expect(
        resumed.get("revision").and_then(Json::as_u64) == Some(1),
        "restored session keeps its revision",
        &log,
    )?;
    expect(
        resumed.get("negatives").map(ToString::to_string) == Some("[3]".to_string()),
        "restored session keeps its corrections",
        &log,
    )?;
    let resumed_result = resumed
        .get("result")
        .filter(|r| !r.is_null())
        .ok_or("restored session lost its rule")?;
    expect(
        matches_of(resumed_result)? == relearned,
        "restored session serves the same rule",
        &log,
    )?;

    // 6b. The multi-class session and its stored rule set also survived:
    // style payloads, priorities and consistency flags all come back from
    // the persisted store, and repeating the class learn is a store hit.
    let multi_resumed = get(addr, &format!("/session/{msid}"), "session")?;
    expect(
        multi_resumed.get("revision").and_then(Json::as_u64) == Some(1),
        "restored multi-class session keeps its revision",
        &log,
    )?;
    let resumed_classes = multi_resumed
        .get("classes")
        .and_then(Json::as_array)
        .ok_or("restored multi-class session lost its classes")?;
    expect(
        resumed_classes.len() == 3
            && resumed_classes[0].get("examples").map(ToString::to_string)
                == Some("[0,6]".to_string()),
        "restored multi-class session keeps its per-class corrections",
        &log,
    )?;
    let multi_resumed_result = multi_resumed
        .get("result")
        .filter(|r| !r.is_null())
        .ok_or("restored multi-class session lost its rule set")?;
    check_status_rule_set(multi_resumed_result, &log)?;
    let multi_rescored = post(
        addr,
        "/score",
        &format!(r#"{{"rule_id":"{multi_rule_id}","cells":{STATUS_CELLS}}}"#),
        "score",
        &mut log,
    )?;
    expect(
        multi_rescored.get("assignments").map(ToString::to_string)
            == Some("[0,1,2,0,1,2,0]".to_string()),
        "stored rule set conflict-resolves every status row after restart",
        &log,
    )?;

    // 6c. The suggestion index rebuilt itself from the packed store: the
    // same bare column still surfaces the learned rule on the restarted
    // server (by now the session's corrected re-learns of the same column
    // are indexed too, so ask for enough neighbors and check membership),
    // and doing so never invoked the learner (checked just below).
    let suggested_again = post(
        addr,
        "/suggest",
        r#"{"cells":["RW-555","XX-1","RW-9-T","rw-777"],"k":8}"#,
        "suggest",
        &mut log,
    )?;
    let again = suggested_again
        .get("suggestions")
        .and_then(Json::as_array)
        .ok_or("post-restart suggest response missing suggestions")?;
    expect(
        again
            .iter()
            .any(|s| s.get("rule_id").and_then(Json::as_str) == Some(rule_id.as_str())),
        "restarted server suggests from the rebuilt index",
        &log,
    )?;

    let health = get(addr, "/health", "health")?;
    expect(
        health.get("learns_performed").and_then(Json::as_u64) == Some(0),
        "restarted server never invoked the learner",
        &log,
    )?;
    expect(
        health.get("suggest_indexed").and_then(Json::as_u64) >= Some(3),
        "restarted server's /health counts the rebuilt suggestion index",
        &log,
    )?;
    // The per-service families reset with the restart: the fresh server
    // answered everything from the persisted store without learning.
    expect(
        scrape(addr, "cornet_service_learns_performed")? == 0.0,
        "restarted server's /metrics learn gauge is zero",
        &log,
    )?;
    expect(
        scrape(addr, "cornet_service_store_persisted_rules")? >= packed_count as f64,
        "restarted server's /metrics still counts the persisted rules",
        &log,
    )?;
    expect(
        health.get("rules_in_segments").and_then(Json::as_u64) >= Some(packed_count),
        "restarted server indexes the packed segment",
        &log,
    )?;
    log.push(format!("health after restart: {health}"));

    // 7. Keep-alive: one socket serves several requests in a row.
    let mut client = crate::http::HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    for _ in 0..3 {
        let response = client
            .request("GET", "/health", None)
            .map_err(|e| format!("keep-alive GET /health: {e}"))?;
        expect(response.status == 200, "keep-alive health probe", &log)?;
    }
    drop(client);
    log.push("keep-alive socket served 3 requests".into());

    // 8. The restored session accepts further corrections.
    let continued = post(
        addr,
        &format!("/session/{sid}/correct"),
        r#"{"format":[2]}"#,
        "session",
        &mut log,
    )?;
    expect(
        continued.get("revision").and_then(Json::as_u64) == Some(2),
        "correction after restart bumps the revision",
        &log,
    )?;
    server.shutdown();
    Ok(log)
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_session_passes() {
        let log = super::run().unwrap_or_else(|e| panic!("{e}"));
        assert!(log.iter().any(|l| l.contains("restarted")));
    }
}
