//! A minimal `std::net` HTTP/1.0 front-end over [`CornetService`].
//!
//! Accepted connections land in a bounded queue drained by a fixed pool
//! of worker threads (sized from [`cornet_pool::current_threads`]); each
//! worker reads the request, routes it, and writes the JSON response,
//! while `/batch` requests additionally fan their items onto
//! `cornet-pool`. Every response body is a versioned envelope
//! (`{"v":1,"kind":<endpoint>,"payload":…}`); errors use kind `error`
//! with `{"error":…,"status":…}`.
//!
//! | Method & path | Body | Result kind |
//! |---------------|------|-------------|
//! | `GET /health` | — | `health` |
//! | `POST /learn` | `{"cells":[…],"examples":[…],"negatives":[…]?}` | `learn` |
//! | `POST /score` | `{"rule_id":…}` or `{"rule":…}` plus `"cells"` | `score` |
//! | `POST /batch` | `{"items":[{"op":"learn"/"score",…},…]}` | `batch` |
//! | `POST /session` | `{"cells":[…],"examples":[…]?}` | `session` |
//! | `GET /session/<id>` | — | `session` |
//! | `POST /session/<id>/correct` | `{"format":[…]?,"unformat":[…]?}` | `session` |
//! | `GET /rules/<id>` | — | `rule` |

use crate::service::{BatchItem, CornetService, LearnRequest, ScoreRequest, ServeError};
use cornet_serde::{envelope, to_string, FromJson, Json, ToJson};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Header-section size cap.
const MAX_HEAD: usize = 16 * 1024;
/// Request-body size cap.
const MAX_BODY: usize = 8 * 1024 * 1024;
/// Per-connection socket timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// Bound on queued-but-unserved connections; beyond it new connections
/// are shed at accept time.
const MAX_QUEUED: usize = 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes as text.
    pub body: String,
}

/// Reads one HTTP/1.x request from a stream.
///
/// The whole request must arrive within the 10-second socket timeout:
/// a per-`read` timeout alone would let a client trickling one byte per
/// nine seconds hold its worker thread almost indefinitely.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let deadline = std::time::Instant::now() + SOCKET_TIMEOUT;
    let check_deadline = move || {
        if std::time::Instant::now() >= deadline {
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read exceeded the per-request deadline",
            ))
        } else {
            Ok(())
        }
    };
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until CRLFCRLF; request heads are tiny and this
    // keeps the parser trivially correct about not over-reading the body.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad("request head too large"));
        }
        check_deadline()?;
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        check_deadline()?;
        match stream.read(&mut body[filled..])? {
            0 => return Err(bad("connection closed mid-body")),
            n => filled += n,
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 request body"))?;
    Ok(Request { method, path, body })
}

/// Writes an HTTP/1.0 response with a JSON body.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn error_body(status: u16, message: &str) -> String {
    to_string(&envelope(
        "error",
        Json::object([
            ("error", Json::str(message)),
            ("status", Json::Number(status as f64)),
        ]),
    ))
}

fn ok_body(kind: &str, payload: Json) -> String {
    to_string(&envelope(kind, payload))
}

fn parse_body(body: &str) -> Result<Json, ServeError> {
    cornet_serde::parse(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

fn decode_request<T: FromJson>(body: &str) -> Result<T, ServeError> {
    T::from_json(&parse_body(body)?).map_err(|e| ServeError::BadRequest(e.message))
}

/// Routes one request to the service. Returns `(status, body)`.
pub fn route(service: &CornetService, request: &Request) -> (u16, String) {
    match handle(service, request) {
        Ok((kind, payload)) => (200, ok_body(kind, payload)),
        Err(e) => (e.status(), error_body(e.status(), e.message())),
    }
}

fn handle(service: &CornetService, request: &Request) -> Result<(&'static str, Json), ServeError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(("health", service.health())),
        ("POST", ["learn"]) => {
            let req: LearnRequest = decode_request(&request.body)?;
            Ok(("learn", service.learn(&req)?.to_json()))
        }
        ("POST", ["score"]) => {
            let req: ScoreRequest = decode_request(&request.body)?;
            Ok(("score", service.score(&req)?.to_json()))
        }
        ("POST", ["batch"]) => {
            let doc = parse_body(&request.body)?;
            let items: Vec<BatchItem> = cornet_serde::field_t(&doc, "items")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let results: Vec<Json> = service
                .batch(&items)
                .into_iter()
                .map(|r| match r {
                    Ok(payload) => payload,
                    Err(e) => Json::object([
                        ("error", Json::str(e.message())),
                        ("status", Json::Number(e.status() as f64)),
                    ]),
                })
                .collect();
            Ok(("batch", Json::object([("results", Json::Array(results))])))
        }
        ("POST", ["session"]) => {
            let doc = parse_body(&request.body)?;
            let cells: Vec<String> = cornet_serde::field_t(&doc, "cells")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let examples: Vec<usize> = cornet_serde::optional_field_t(&doc, "examples")
                .map_err(|e| ServeError::BadRequest(e.message))?
                .unwrap_or_default();
            Ok((
                "session",
                service.session_create(cells, examples)?.to_json(),
            ))
        }
        ("GET", ["session", id]) => Ok(("session", service.session_get(id)?.to_json())),
        ("POST", ["session", id, "correct"]) => {
            let doc = parse_body(&request.body)?;
            let read_list = |key: &str| -> Result<Vec<usize>, ServeError> {
                Ok(cornet_serde::optional_field_t(&doc, key)
                    .map_err(|e| ServeError::BadRequest(e.message))?
                    .unwrap_or_default())
            };
            let format = read_list("format")?;
            let unformat = read_list("unformat")?;
            Ok((
                "session",
                service.session_correct(id, &format, &unformat)?.to_json(),
            ))
        }
        ("GET", ["rules", id]) => Ok(("rule", service.rule(id)?.to_json())),
        (_, _) => Err(ServeError::NotFound(format!(
            "no route for {} {}",
            request.method, request.path
        ))),
    }
}

struct ConnectionQueue {
    items: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running HTTP server: an accept thread feeding a bounded connection
/// queue drained by a fixed pool of worker threads.
///
/// The worker count comes from [`cornet_pool::current_threads`] (min 2,
/// so one slow request can never serialize the server); workers block on
/// the queue's condvar and each handles one connection at a time, so a
/// slow request occupies exactly one worker and everything else keeps
/// flowing. Heavy *in-request* parallelism (the `/batch` fan-out) still
/// runs on `cornet-pool`.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnectionQueue>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service` until [`Server::shutdown`] (or drop).
    pub fn start(addr: &str, service: Arc<CornetService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnectionQueue {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            // Backpressure: beyond the queue bound the
                            // connection is dropped immediately (the
                            // client sees a reset) instead of holding an
                            // fd that will only time out later.
                            let mut items = queue.items.lock().unwrap();
                            if items.len() < MAX_QUEUED {
                                items.push_back(stream);
                                drop(items);
                                queue.ready.notify_one();
                            }
                        }
                        Err(_) => {
                            // Typically fd exhaustion; back off instead
                            // of spinning accept→error at full CPU.
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                }
            })
        };

        let workers = cornet_pool::current_threads().clamp(2, 16);
        let worker_threads = (0..workers)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                std::thread::spawn(move || loop {
                    let next = {
                        let mut items = queue.items.lock().unwrap();
                        while items.is_empty() && !stop.load(Ordering::SeqCst) {
                            items = queue.ready.wait(items).unwrap();
                        }
                        items.pop_front()
                    };
                    match next {
                        Some(mut stream) => handle_connection(&mut stream, &service),
                        None => break, // empty queue + stop flag
                    }
                })
            })
            .collect();

        Ok(Server {
            addr,
            stop,
            queue,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue, and joins the worker threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform; rewrite it to the matching loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        self.queue.ready.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: &mut TcpStream, service: &CornetService) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    match read_request(stream) {
        Ok(request) => {
            let (status, body) = route(service, &request);
            let _ = write_response(stream, status, &body);
        }
        Err(e) => {
            let _ = write_response(stream, 400, &error_body(400, &e.to_string()));
        }
    }
}

/// A minimal blocking HTTP client for tests, the smoke driver and
/// scripts: sends one request, returns `(status, envelope)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.0\r\nHost: cornet\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing status"))?;
    let doc = cornet_serde::parse(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON body: {e}")))?;
    Ok((status, doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::path::PathBuf;

    fn temp_server(tag: &str) -> (Server, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cornet-http-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: dir.clone(),
                cache_capacity: 16,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        (Server::start("127.0.0.1:0", service).unwrap(), dir)
    }

    #[test]
    fn health_and_unknown_route() {
        let (mut server, dir) = temp_server("health");
        let (status, doc) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let payload = cornet_serde::open_envelope(&doc, "health").unwrap();
        assert_eq!(payload.get("status").and_then(Json::as_str), Some("ok"));

        let (status, doc) = http_request(server.addr(), "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(cornet_serde::open_envelope(&doc, "error").is_ok());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn learn_over_the_wire() {
        let (mut server, dir) = temp_server("learn");
        let body = r#"{"cells":["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"],"examples":[0,2,5]}"#;
        let (status, doc) = http_request(server.addr(), "POST", "/learn", Some(body)).unwrap();
        assert_eq!(status, 200, "{doc}");
        let payload = cornet_serde::open_envelope(&doc, "learn").unwrap();
        let matches: Vec<usize> = Vec::from_json(payload.get("matches").unwrap()).unwrap();
        assert_eq!(matches, vec![0, 2, 5]);

        let bad = http_request(server.addr(), "POST", "/learn", Some("{oops")).unwrap();
        assert_eq!(bad.0, 400);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_slow_client_does_not_block_other_requests() {
        let (mut server, dir) = temp_server("slow-client");
        // A client that opens a connection, sends half a request head
        // and then stalls: it occupies one worker until the deadline.
        let mut slow = TcpStream::connect(server.addr()).unwrap();
        slow.write_all(b"POST /learn HTTP/1.0\r\nContent-").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let a worker pick it up
                                                       // Other clients must still be served promptly meanwhile.
        let started = std::time::Instant::now();
        let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "health blocked behind the stalled client for {:?}",
            started.elapsed()
        );
        drop(slow);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_requests_all_get_answers() {
        let (mut server, dir) = temp_server("concurrent");
        let addr = server.addr();
        let handles: Vec<_> = (0..12)
            .map(|_| {
                std::thread::spawn(move || {
                    http_request(addr, "GET", "/health", None).map(|(s, _)| s)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 200);
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn method_mismatch_is_a_404() {
        let (mut server, dir) = temp_server("method");
        let (status, _) = http_request(server.addr(), "GET", "/learn", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
