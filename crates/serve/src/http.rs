//! A keep-alive HTTP/1.1 front-end over [`CornetService`] built on
//! `std::net`, designed for sustained concurrent traffic.
//!
//! ## Architecture: continuous per-connection scheduling
//!
//! Three kinds of threads cooperate around a connection registry:
//!
//! * The **accept thread** enforces the hard connection cap: beyond
//!   [`ServerConfig::max_connections`] live sockets, new connections are
//!   shed with a clean `503` + `Retry-After` response (never a silent
//!   drop). Admitted sockets are switched to non-blocking mode and handed
//!   to the poller.
//! * The **poller thread** owns every idle connection. It reads whatever
//!   bytes have arrived into each connection's input buffer and hands the
//!   connection to the worker queue the moment the buffer holds one
//!   complete request (or a protocol error). An idle keep-alive socket
//!   therefore never pins a worker — the old wave-dispatch design, where
//!   a worker blocked on each socket's next request, is gone. The poller
//!   also enforces the two timeouts: a per-request deadline (a partial
//!   request must complete within [`ServerConfig::request_timeout`] —
//!   slow-loris clients get a `408` and are dropped) and a keep-alive
//!   idle timeout.
//! * **Worker threads** pop ready connections, drain every complete
//!   pipelined request from the buffer *in order* (responses are written
//!   in arrival order, as HTTP/1.1 pipelining requires), then return the
//!   connection to the poller. Heavy in-request parallelism (`/batch`)
//!   still fans onto `cornet-pool`.
//!
//! ## Protocol subset
//!
//! Requests are framed by `Content-Length` (chunked transfer encoding is
//! rejected with `400`). `HTTP/1.1` connections are keep-alive unless the
//! client sends `Connection: close`; `HTTP/1.0` connections close unless
//! the client sends `Connection: keep-alive`. Oversized bodies are
//! rejected with `413`, malformed request lines and headers with `400`.
//!
//! Every response body is a versioned envelope
//! (`{"v":1,"kind":<endpoint>,"payload":…}`); errors use kind `error`
//! with `{"error":…,"status":…}`.
//!
//! | Method & path | Body | Result kind |
//! |---------------|------|-------------|
//! | `GET /health` | — | `health` |
//! | `POST /learn` | `{"cells":[…],"examples":[…],"negatives":[…]?}` | `learn` |
//! | `POST /score` | `{"rule_id":…}` or `{"rule":…}` plus `"cells"` | `score` |
//! | `POST /batch` | `{"items":[{"op":"learn"/"score",…},…]}` | `batch` |
//! | `POST /session` | `{"cells":[…],"examples":[…]?}` | `session` |
//! | `GET /session/<id>` | — | `session` |
//! | `POST /session/<id>/correct` | `{"format":[…]?,"unformat":[…]?}` | `session` |
//! | `GET /rules/<id>` | — | `rule` |
//! | `POST /admin/pack` | — | `pack` |
//!
//! Per-request structured logging goes through the [`RequestLog`] seam:
//! method, path, status, handling latency in µs, and the connection id
//! (so keep-alive reuse is visible in the log stream).

use crate::service::{BatchItem, CornetService, LearnRequest, ScoreRequest, ServeError};
use cornet_serde::{envelope, to_string, FromJson, Json, ToJson};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Header-section size cap.
pub const MAX_HEAD: usize = 16 * 1024;
/// Request-body size cap (larger `Content-Length` values get a `413`).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// How long the poller sleeps when no connection had activity.
const POLL_TICK: Duration = Duration::from_micros(500);
/// Per-tick read cap per connection, so one firehose client cannot
/// starve the poll loop.
const READ_BURST: usize = 64 * 1024;
/// Socket timeout used by the bundled client helpers.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component (query strings are stripped; this API ignores them).
    pub path: String,
    /// Raw body bytes as text.
    pub body: String,
    /// Whether the connection stays open after the response
    /// (`HTTP/1.1` default, overridable with a `Connection` header).
    pub keep_alive: bool,
}

/// Outcome of one incremental parse attempt over a connection buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete request; read more bytes.
    Incomplete,
    /// One complete request, occupying the first `consumed` buffer bytes.
    Ready {
        /// The parsed request.
        request: Request,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
    /// A protocol violation; respond with `status` and close.
    Bad {
        /// `400` for malformed requests, `413` for oversized bodies.
        status: u16,
        /// Human-readable rejection reason.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ParseOutcome {
    ParseOutcome::Bad {
        status,
        message: message.into(),
    }
}

/// Incrementally parses the first request out of `buf`.
///
/// Pure function of the buffer: callers re-invoke it as bytes arrive
/// (`Incomplete`), after draining a request (`Ready` — pipelined requests
/// are parsed strictly in arrival order), or to learn the rejection
/// status (`Bad`). The head must be UTF-8 and under [`MAX_HEAD`] bytes;
/// bodies are framed by `Content-Length` and capped at [`MAX_BODY`].
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            return if buf.len() > MAX_HEAD {
                bad(400, "request head too large")
            } else {
                ParseOutcome::Incomplete
            };
        }
    };
    if head_end > MAX_HEAD {
        return bad(400, "request head too large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return bad(400, "non-UTF-8 request head"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let parts: Vec<&str> = request_line.split(' ').collect();
    let [method, target, version] = parts.as_slice() else {
        return bad(400, format!("malformed request line `{request_line}`"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_graphic()) {
        return bad(400, format!("malformed method in `{request_line}`"));
    }
    if target.is_empty() {
        return bad(400, "empty request target");
    }
    let http11 = match *version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return bad(400, format!("unsupported protocol version `{other}`")),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return bad(400, format!("malformed header line `{line}`"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return bad(400, format!("malformed header name `{name}`"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = match value.parse() {
                Ok(n) => n,
                Err(_) => return bad(400, format!("invalid Content-Length `{value}`")),
            };
            if let Some(prev) = content_length {
                if prev != parsed {
                    return bad(400, "conflicting Content-Length headers");
                }
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return bad(400, "transfer encodings are not supported");
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return bad(413, "request body too large");
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    let body = match std::str::from_utf8(&buf[body_start..total]) {
        Ok(b) => b.to_string(),
        Err(_) => return bad(400, "non-UTF-8 request body"),
    };
    ParseOutcome::Ready {
        request: Request {
            method: method.to_string(),
            path: target.split('?').next().unwrap_or(target).to_string(),
            body,
            keep_alive,
        },
        consumed: total,
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes an HTTP/1.1 response with a JSON body. `retry_after` adds a
/// `Retry-After` header (load-shedding responses carry one).
fn respond(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
    retry_after: Option<u32>,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let retry = retry_after.map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a closing HTTP/1.1 response with a JSON body (the one-shot
/// compatibility surface; the server's keep-alive path uses the richer
/// internal writer).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, body, true, None)
}

fn error_body(status: u16, message: &str) -> String {
    to_string(&envelope(
        "error",
        Json::object([
            ("error", Json::str(message)),
            ("status", Json::Number(status as f64)),
        ]),
    ))
}

fn ok_body(kind: &str, payload: Json) -> String {
    to_string(&envelope(kind, payload))
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn parse_body(body: &str) -> Result<Json, ServeError> {
    cornet_serde::parse(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

fn decode_request<T: FromJson>(body: &str) -> Result<T, ServeError> {
    T::from_json(&parse_body(body)?).map_err(|e| ServeError::BadRequest(e.message))
}

/// Routes one request to the service. Returns `(status, body)`.
pub fn route(service: &CornetService, request: &Request) -> (u16, String) {
    match handle(service, request) {
        Ok((kind, payload)) => (200, ok_body(kind, payload)),
        Err(e) => (e.status(), error_body(e.status(), e.message())),
    }
}

fn handle(service: &CornetService, request: &Request) -> Result<(&'static str, Json), ServeError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(("health", service.health())),
        ("POST", ["learn"]) => {
            let req: LearnRequest = decode_request(&request.body)?;
            Ok(("learn", service.learn(&req)?.to_json()))
        }
        ("POST", ["score"]) => {
            let req: ScoreRequest = decode_request(&request.body)?;
            Ok(("score", service.score(&req)?.to_json()))
        }
        ("POST", ["batch"]) => {
            let doc = parse_body(&request.body)?;
            let items: Vec<BatchItem> = cornet_serde::field_t(&doc, "items")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let results: Vec<Json> = service
                .batch(&items)
                .into_iter()
                .map(|r| match r {
                    Ok(payload) => payload,
                    Err(e) => Json::object([
                        ("error", Json::str(e.message())),
                        ("status", Json::Number(e.status() as f64)),
                    ]),
                })
                .collect();
            Ok(("batch", Json::object([("results", Json::Array(results))])))
        }
        ("POST", ["session"]) => {
            let doc = parse_body(&request.body)?;
            let cells: Vec<String> = cornet_serde::field_t(&doc, "cells")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let examples: Vec<usize> = cornet_serde::optional_field_t(&doc, "examples")
                .map_err(|e| ServeError::BadRequest(e.message))?
                .unwrap_or_default();
            Ok((
                "session",
                service.session_create(cells, examples)?.to_json(),
            ))
        }
        ("GET", ["session", id]) => Ok(("session", service.session_get(id)?.to_json())),
        ("POST", ["session", id, "correct"]) => {
            let doc = parse_body(&request.body)?;
            let read_list = |key: &str| -> Result<Vec<usize>, ServeError> {
                Ok(cornet_serde::optional_field_t(&doc, key)
                    .map_err(|e| ServeError::BadRequest(e.message))?
                    .unwrap_or_default())
            };
            let format = read_list("format")?;
            let unformat = read_list("unformat")?;
            Ok((
                "session",
                service.session_correct(id, &format, &unformat)?.to_json(),
            ))
        }
        ("GET", ["rules", id]) => Ok(("rule", service.rule(id)?.to_json())),
        ("POST", ["admin", "pack"]) => {
            let packed = service.pack_rules()?;
            Ok(("pack", Json::object([("packed", packed.to_json())])))
        }
        (_, _) => Err(ServeError::NotFound(format!(
            "no route for {} {}",
            request.method, request.path
        ))),
    }
}

// ---------------------------------------------------------------------------
// Request logging
// ---------------------------------------------------------------------------

/// One served request, as seen by the [`RequestLog`] seam.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Server-assigned connection id (stable across keep-alive reuse).
    pub conn: u64,
    /// Request method (`-` for protocol errors rejected before parsing).
    pub method: String,
    /// Request path (`-` for protocol errors rejected before parsing).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Handling latency in microseconds (routing + response write).
    pub micros: u64,
}

/// Structured per-request logging seam. Implementations must be cheap
/// and non-blocking — the record is emitted on the worker thread that
/// served the request.
pub trait RequestLog: Send + Sync {
    /// Called once per served request (including protocol errors).
    fn record(&self, record: &RequestRecord);
}

/// Discards every record (the default for embedded/test servers).
#[derive(Debug, Default)]
pub struct NullLog;

impl RequestLog for NullLog {
    fn record(&self, _record: &RequestRecord) {}
}

/// Writes one structured line per request to stderr (the binary's
/// default): `request conn=3 method=POST path=/learn status=200 us=512`.
#[derive(Debug, Default)]
pub struct StderrLog;

impl RequestLog for StderrLog {
    fn record(&self, r: &RequestRecord) {
        eprintln!(
            "request conn={} method={} path={} status={} us={}",
            r.conn, r.method, r.path, r.status, r.micros
        );
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server tuning knobs. [`ServerConfig::from_env`] reads the
/// `CORNET_MAX_CONNS`, `CORNET_KEEP_ALIVE_SECS`,
/// `CORNET_REQUEST_TIMEOUT_SECS` and `CORNET_HTTP_WORKERS` environment
/// variables on top of these defaults.
#[derive(Clone)]
pub struct ServerConfig {
    /// Hard cap on live connections; beyond it the accept thread sheds
    /// new sockets with `503` + `Retry-After`.
    pub max_connections: usize,
    /// How long an idle keep-alive connection may sit between requests.
    pub keep_alive: Duration,
    /// Deadline for one request to arrive completely once its first byte
    /// has been read (the slow-loris bound) — also the response write
    /// timeout.
    pub request_timeout: Duration,
    /// Worker-thread count; `0` sizes from `cornet_pool::current_threads`
    /// (clamped to 2..=16).
    pub workers: usize,
    /// Per-request logging seam.
    pub log: Arc<dyn RequestLog>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            keep_alive: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            workers: 0,
            log: Arc::new(NullLog),
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_connections", &self.max_connections)
            .field("keep_alive", &self.keep_alive)
            .field("request_timeout", &self.request_timeout)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ServerConfig {
    /// Defaults overridden by the `CORNET_MAX_CONNS`,
    /// `CORNET_KEEP_ALIVE_SECS`, `CORNET_REQUEST_TIMEOUT_SECS` and
    /// `CORNET_HTTP_WORKERS` environment variables (invalid values are
    /// ignored).
    pub fn from_env() -> ServerConfig {
        fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let mut config = ServerConfig::default();
        if let Some(n) = env_parse::<usize>("CORNET_MAX_CONNS") {
            config.max_connections = n.max(1);
        }
        if let Some(secs) = env_parse::<u64>("CORNET_KEEP_ALIVE_SECS") {
            config.keep_alive = Duration::from_secs(secs.max(1));
        }
        if let Some(secs) = env_parse::<u64>("CORNET_REQUEST_TIMEOUT_SECS") {
            config.request_timeout = Duration::from_secs(secs.max(1));
        }
        if let Some(n) = env_parse::<usize>("CORNET_HTTP_WORKERS") {
            config.workers = n;
        }
        config
    }
}

/// Decrements the live-connection counter when a connection dies,
/// however it dies — the accept thread's cap check reads this counter.
struct ConnPermit(Arc<AtomicUsize>);

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One live connection: the socket plus its unparsed input bytes.
struct Conn {
    id: u64,
    stream: TcpStream,
    buf: Vec<u8>,
    /// Set while a partial request sits in `buf` (the slow-loris clock).
    started: Option<Instant>,
    /// Last time the connection went idle (the keep-alive clock).
    idle_since: Instant,
    _permit: ConnPermit,
}

/// State shared between the accept thread, the poller and the workers.
struct Shared {
    stop: AtomicBool,
    /// Connections with a complete request buffered, awaiting a worker.
    ready: Mutex<VecDeque<Conn>>,
    ready_cv: Condvar,
    /// Connections handed back to the poller (newly accepted or drained).
    returned: Mutex<Vec<Conn>>,
}

/// What the poller decided about one idle connection this tick.
enum PollVerdict {
    Idle,
    Dispatch,
    Drop,
}

fn poll_conn(conn: &mut Conn, config: &ServerConfig) -> PollVerdict {
    let mut chunk = [0u8; 4096];
    let mut read = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            // A peer close with a partial request pending is a
            // mid-request disconnect; either way the connection is done.
            Ok(0) => return PollVerdict::Drop,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                read += n;
                if read >= READ_BURST {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return PollVerdict::Drop,
        }
    }
    if read > 0 && conn.started.is_none() {
        conn.started = Some(Instant::now());
    }
    if !conn.buf.is_empty() {
        match parse_request(&conn.buf) {
            ParseOutcome::Incomplete => {
                if let Some(t0) = conn.started {
                    if t0.elapsed() > config.request_timeout {
                        // Slow loris: the request never completed. Tell
                        // the client (best effort on the non-blocking
                        // socket) and reclaim the connection.
                        let body = error_body(408, "request did not complete in time");
                        let _ = respond(&mut conn.stream, 408, &body, true, None);
                        config.log.record(&RequestRecord {
                            conn: conn.id,
                            method: "-".into(),
                            path: "-".into(),
                            status: 408,
                            micros: 0,
                        });
                        return PollVerdict::Drop;
                    }
                }
                PollVerdict::Idle
            }
            _ => PollVerdict::Dispatch,
        }
    } else if conn.idle_since.elapsed() > config.keep_alive {
        PollVerdict::Drop
    } else {
        PollVerdict::Idle
    }
}

/// Drains every complete pipelined request buffered on `conn`, in order,
/// then returns the connection to the poller (or drops it on
/// close/error). Runs on a worker thread with the socket in blocking
/// mode for the response writes.
fn serve_ready(mut conn: Conn, service: &CornetService, config: &ServerConfig, shared: &Shared) {
    if conn.stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = conn.stream.set_write_timeout(Some(config.request_timeout));
    loop {
        match parse_request(&conn.buf) {
            ParseOutcome::Ready { request, consumed } => {
                conn.buf.drain(..consumed);
                let t0 = Instant::now();
                let (status, body) = route(service, &request);
                let close = !request.keep_alive;
                let wrote = respond(&mut conn.stream, status, &body, close, None);
                config.log.record(&RequestRecord {
                    conn: conn.id,
                    method: request.method,
                    path: request.path,
                    status,
                    micros: t0.elapsed().as_micros() as u64,
                });
                if wrote.is_err() || close {
                    return;
                }
            }
            ParseOutcome::Bad { status, message } => {
                let body = error_body(status, &message);
                let _ = respond(&mut conn.stream, status, &body, true, None);
                config.log.record(&RequestRecord {
                    conn: conn.id,
                    method: "-".into(),
                    path: "-".into(),
                    status,
                    micros: 0,
                });
                return;
            }
            ParseOutcome::Incomplete => break,
        }
    }
    conn.started = if conn.buf.is_empty() {
        None
    } else {
        Some(Instant::now())
    };
    conn.idle_since = Instant::now();
    if conn.stream.set_nonblocking(true).is_ok() {
        shared.returned.lock().unwrap().push(conn);
    }
}

/// Sheds one over-cap connection with a `503` + `Retry-After` (on the
/// accept thread, bounded by a short write timeout).
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = error_body(503, "server at connection capacity, retry shortly");
    let _ = respond(&mut stream, 503, &body, true, Some(1));
}

/// A running HTTP server; see the module docs for the thread layout.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    live: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    poller_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `service` with [`ServerConfig::from_env`] until
    /// [`Server::shutdown`] (or drop).
    pub fn start(addr: &str, service: Arc<CornetService>) -> io::Result<Server> {
        Server::start_with(addr, service, ServerConfig::from_env())
    }

    /// [`Server::start`] with explicit tuning knobs.
    pub fn start_with(
        addr: &str,
        service: Arc<CornetService>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            returned: Mutex::new(Vec::new()),
        });
        let live = Arc::new(AtomicUsize::new(0));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let live = Arc::clone(&live);
            let config = config.clone();
            std::thread::spawn(move || {
                let next_id = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // Typically fd exhaustion; back off instead of
                        // spinning accept→error at full CPU.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    if live.load(Ordering::SeqCst) >= config.max_connections {
                        shed(stream);
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let permit = ConnPermit(Arc::clone(&live));
                    if stream.set_nonblocking(true).is_err() {
                        continue; // permit drop restores the count
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn {
                        id: next_id.fetch_add(1, Ordering::Relaxed),
                        stream,
                        buf: Vec::new(),
                        started: None,
                        idle_since: Instant::now(),
                        _permit: permit,
                    };
                    shared.returned.lock().unwrap().push(conn);
                }
            })
        };

        let poller_thread = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut idle: Vec<Conn> = Vec::new();
                loop {
                    if shared.stop.load(Ordering::SeqCst) {
                        break; // drops every idle connection
                    }
                    idle.append(&mut shared.returned.lock().unwrap());
                    let mut activity = false;
                    let mut still_idle = Vec::with_capacity(idle.len());
                    for mut conn in idle.drain(..) {
                        match poll_conn(&mut conn, &config) {
                            PollVerdict::Idle => still_idle.push(conn),
                            PollVerdict::Dispatch => {
                                shared.ready.lock().unwrap().push_back(conn);
                                shared.ready_cv.notify_one();
                                activity = true;
                            }
                            PollVerdict::Drop => activity = true,
                        }
                    }
                    idle = still_idle;
                    if !activity {
                        std::thread::sleep(POLL_TICK);
                    }
                }
            })
        };

        let workers = if config.workers > 0 {
            config.workers
        } else {
            cornet_pool::current_threads().clamp(2, 16)
        };
        let worker_threads = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&service);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    let next = {
                        let mut ready = shared.ready.lock().unwrap();
                        loop {
                            if let Some(conn) = ready.pop_front() {
                                break Some(conn);
                            }
                            if shared.stop.load(Ordering::SeqCst) {
                                break None;
                            }
                            ready = shared.ready_cv.wait(ready).unwrap();
                        }
                    };
                    match next {
                        Some(conn) => serve_ready(conn, &service, &config, &shared),
                        None => break,
                    }
                })
            })
            .collect();

        Ok(Server {
            addr,
            shared,
            live,
            accept_thread: Some(accept_thread),
            poller_thread: Some(poller_thread),
            worker_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently live connections (idle keep-alive sockets
    /// included) — the quantity the accept-time cap is enforced against.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Stops accepting, drops idle connections, and joins every thread.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform; rewrite it to the matching loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        self.shared.ready_cv.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // Connections parked in the ready queue die with the server.
        self.shared.ready.lock().unwrap().clear();
        self.shared.returned.lock().unwrap().clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client helpers
// ---------------------------------------------------------------------------

/// Serializes one request the way the bundled clients send it (HTTP/1.1,
/// length-framed body, explicit `Connection` header). Also the input
/// side of the conformance suite's serialize→parse round-trips.
pub fn encode_request(method: &str, path: &str, body: Option<&str>, close: bool) -> String {
    let body = body.unwrap_or("");
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: cornet\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
}

/// One parsed response from the bundled clients.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded JSON body.
    pub body: Json,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads exactly one `Content-Length`-framed response from `stream`
/// without over-reading into the next pipelined response.
pub fn read_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time keeps the reader trivially correct about framing;
    // response heads are tiny.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Err(invalid("response head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(invalid("connection closed mid-response")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| invalid("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("missing response status"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| invalid("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..])? {
            0 => return Err(invalid("connection closed mid-body")),
            n => filled += n,
        }
    }
    let text = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 response body"))?;
    let body =
        cornet_serde::parse(&text).map_err(|e| invalid(&format!("bad JSON response body: {e}")))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// A blocking keep-alive HTTP/1.1 client: many requests over one socket.
/// Used by the load harness, the conformance suite and the smoke driver.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects with the standard client timeouts and `TCP_NODELAY`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(HttpClient { stream })
    }

    /// Sends one keep-alive request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.stream
            .write_all(encode_request(method, path, body, false).as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }

    /// Writes raw bytes (for pipelining and protocol-error tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one framed response (pair with [`HttpClient::send_raw`]).
    pub fn read_one(&mut self) -> io::Result<HttpResponse> {
        read_response(&mut self.stream)
    }
}

/// A minimal one-shot blocking client for tests, the smoke driver and
/// scripts: sends one HTTP/1.1 request with `Connection: close`, returns
/// `(status, envelope)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(encode_request(method, path, body, true).as_bytes())?;
    stream.flush()?;
    let response = read_response(&mut stream)?;
    Ok((response.status, response.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::path::PathBuf;

    fn temp_server(tag: &str) -> (Server, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cornet-http-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: dir.clone(),
                cache_capacity: 16,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        (Server::start("127.0.0.1:0", service).unwrap(), dir)
    }

    #[test]
    fn health_and_unknown_route() {
        let (mut server, dir) = temp_server("health");
        let (status, doc) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let payload = cornet_serde::open_envelope(&doc, "health").unwrap();
        assert_eq!(payload.get("status").and_then(Json::as_str), Some("ok"));

        let (status, doc) = http_request(server.addr(), "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(cornet_serde::open_envelope(&doc, "error").is_ok());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn learn_over_the_wire() {
        let (mut server, dir) = temp_server("learn");
        let body = r#"{"cells":["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"],"examples":[0,2,5]}"#;
        let (status, doc) = http_request(server.addr(), "POST", "/learn", Some(body)).unwrap();
        assert_eq!(status, 200, "{doc}");
        let payload = cornet_serde::open_envelope(&doc, "learn").unwrap();
        let matches: Vec<usize> = Vec::from_json(payload.get("matches").unwrap()).unwrap();
        assert_eq!(matches, vec![0, 2, 5]);

        let bad = http_request(server.addr(), "POST", "/learn", Some("{oops")).unwrap();
        assert_eq!(bad.0, 400);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_slow_client_does_not_block_other_requests() {
        let (mut server, dir) = temp_server("slow-client");
        // A client that opens a connection, sends half a request head and
        // then stalls. Under continuous scheduling it sits in the poller
        // and occupies no worker at all.
        let mut slow = TcpStream::connect(server.addr()).unwrap();
        slow.write_all(b"POST /learn HTTP/1.1\r\nContent-").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "health blocked behind the stalled client for {:?}",
            started.elapsed()
        );
        drop(slow);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_requests_all_get_answers() {
        let (mut server, dir) = temp_server("concurrent");
        let addr = server.addr();
        let handles: Vec<_> = (0..12)
            .map(|_| {
                std::thread::spawn(move || {
                    http_request(addr, "GET", "/health", None).map(|(s, _)| s)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 200);
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn method_mismatch_is_a_404() {
        let (mut server, dir) = temp_server("method");
        let (status, _) = http_request(server.addr(), "GET", "/learn", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_alive_socket_serves_many_requests() {
        let (mut server, dir) = temp_server("keep-alive");
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..4 {
            let response = client.request("GET", "/health", None).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_covers_framing_and_connection_semantics() {
        // Incremental completion: every prefix is Incomplete.
        let wire = encode_request("POST", "/learn", Some(r#"{"x":1}"#), false);
        let bytes = wire.as_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                parse_request(&bytes[..cut]),
                ParseOutcome::Incomplete,
                "cut at {cut}"
            );
        }
        match parse_request(bytes) {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/learn");
                assert_eq!(request.body, r#"{"x":1}"#);
                assert!(request.keep_alive);
            }
            other => panic!("{other:?}"),
        }

        // HTTP/1.0 defaults to close, 1.1 to keep-alive; explicit
        // Connection headers override both.
        let old = b"GET /health HTTP/1.0\r\n\r\n";
        match parse_request(old) {
            ParseOutcome::Ready { request, .. } => assert!(!request.keep_alive),
            other => panic!("{other:?}"),
        }
        let old_keep = b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match parse_request(old_keep) {
            ParseOutcome::Ready { request, .. } => assert!(request.keep_alive),
            other => panic!("{other:?}"),
        }
        let close = encode_request("GET", "/health", None, true);
        match parse_request(close.as_bytes()) {
            ParseOutcome::Ready { request, .. } => assert!(!request.keep_alive),
            other => panic!("{other:?}"),
        }

        // Query strings are stripped from the path.
        let query = b"GET /health?verbose=1 HTTP/1.1\r\n\r\n";
        match parse_request(query) {
            ParseOutcome::Ready { request, .. } => assert_eq!(request.path, "/health"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parser_rejections_carry_the_right_status() {
        let cases: &[(&[u8], u16)] = &[
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 400),
            (b"GET  /x HTTP/1.1\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            (b"POST /x HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n", 413),
        ];
        for (wire, want) in cases {
            match parse_request(wire) {
                ParseOutcome::Bad { status, .. } => {
                    assert_eq!(status, *want, "{:?}", String::from_utf8_lossy(wire))
                }
                other => panic!("{:?} → {other:?}", String::from_utf8_lossy(wire)),
            }
        }
    }
}
