//! A keep-alive HTTP/1.1 front-end over [`CornetService`] built on
//! `std::net`, designed for sustained concurrent traffic.
//!
//! ## Architecture: continuous per-connection scheduling
//!
//! Three kinds of threads cooperate around a connection registry:
//!
//! * The **accept thread** enforces the hard connection cap: beyond
//!   [`ServerConfig::max_connections`] live sockets, new connections are
//!   shed with a clean `503` + `Retry-After` response (never a silent
//!   drop). Admitted sockets are switched to non-blocking mode and handed
//!   to the poller.
//! * The **poller thread** owns every idle connection. It reads whatever
//!   bytes have arrived into each connection's input buffer and hands the
//!   connection to the worker queue the moment the buffer holds one
//!   complete request (or a protocol error). An idle keep-alive socket
//!   therefore never pins a worker — the old wave-dispatch design, where
//!   a worker blocked on each socket's next request, is gone. The poller
//!   also enforces the two timeouts: a per-request deadline (a partial
//!   request must complete within [`ServerConfig::request_timeout`] —
//!   slow-loris clients get a `408` and are dropped) and a keep-alive
//!   idle timeout.
//! * **Worker threads** pop ready connections, drain every complete
//!   pipelined request from the buffer *in order* (responses are written
//!   in arrival order, as HTTP/1.1 pipelining requires), then return the
//!   connection to the poller. Heavy in-request parallelism (`/batch`)
//!   still fans onto `cornet-pool`.
//!
//! ## Protocol subset
//!
//! Requests are framed by `Content-Length` (chunked transfer encoding is
//! rejected with `400`). `HTTP/1.1` connections are keep-alive unless the
//! client sends `Connection: close`; `HTTP/1.0` connections close unless
//! the client sends `Connection: keep-alive`. Oversized bodies are
//! rejected with `413`, malformed request lines and headers with `400`.
//!
//! Every response body is a versioned envelope
//! (`{"v":1,"kind":<endpoint>,"payload":…}`); errors use kind `error`
//! with `{"error":…,"status":…}`.
//!
//! | Method & path | Body | Result kind |
//! |---------------|------|-------------|
//! | `GET /health` | — | `health` |
//! | `POST /learn` | `{"cells":[…],"examples":[…],"negatives":[…]?}` | `learn` |
//! | `POST /score` | `{"rule_id":…}` or `{"rule":…}` plus `"cells"` | `score` |
//! | `POST /batch` | `{"items":[{"op":"learn"/"score",…},…]}` | `batch` |
//! | `POST /session` | `{"cells":[…],"examples":[…]?}` | `session` |
//! | `GET /session/<id>` | — | `session` |
//! | `POST /session/<id>/correct` | `{"format":[…]?,"unformat":[…]?}` | `session` |
//! | `GET /rules/<id>` | — | `rule` |
//! | `POST /admin/pack` | — | `pack` |
//! | `GET /metrics` | — | Prometheus text (not JSON) |
//!
//! `GET /metrics` serves the Prometheus text exposition rendered by
//! [`CornetService::metrics_text`] (gate it off with
//! [`ServerConfig::metrics`]); every other endpoint keeps the JSON
//! envelope contract above. Each served request is assigned a
//! process-unique request id, installed for the handling thread via
//! [`cornet_obs::set_request_id`] so learner-stage trace events emitted
//! under the request carry it.
//!
//! Per-request structured logging goes through the [`RequestLog`] seam:
//! method, path, status, handling latency in µs, the connection id (so
//! keep-alive reuse is visible in the log stream), and the request id
//! (so log lines join against trace events).

use crate::service::{
    BatchItem, ClassRequest, CornetService, LearnRequest, ScoreRequest, ServeError,
};
use crate::suggest::SuggestRequest;
use cornet_obs::{Counter, Gauge, StageTimer};
use cornet_serde::{envelope, to_string, FromJson, Json, ToJson};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Header-section size cap.
pub const MAX_HEAD: usize = 16 * 1024;
/// Request-body size cap (larger `Content-Length` values get a `413`).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// How long the poller sleeps when no connection had activity.
const POLL_TICK: Duration = Duration::from_micros(500);
/// Per-tick read cap per connection, so one firehose client cannot
/// starve the poll loop.
const READ_BURST: usize = 64 * 1024;
/// Socket timeout used by the bundled client helpers.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// `Content-Type` of every JSON envelope response.
const JSON_CONTENT_TYPE: &str = "application/json";
/// `Content-Type` of the `/metrics` exposition (Prometheus text 0.0.4).
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

// ---------------------------------------------------------------------------
// Front-end metrics
// ---------------------------------------------------------------------------

/// Process-wide HTTP front-end metrics (global registry; see
/// `crates/obs`). Per-route families are looked up per request by label
/// through the registry — route labels are the fixed normalized set of
/// [`route_label`], so the family count stays bounded.
struct HttpMetrics {
    inflight: Gauge,
    connections: Gauge,
    shed: Counter,
    timeouts: Counter,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = cornet_obs::registry();
        HttpMetrics {
            inflight: registry.gauge(
                "cornet_http_inflight_requests",
                "Requests currently being routed or written on a worker.",
            ),
            connections: registry.gauge(
                "cornet_http_connections",
                "Live connections, idle keep-alive sockets included.",
            ),
            shed: registry.counter(
                "cornet_http_shed_total",
                "Connections shed with 503 at the accept-time cap.",
            ),
            timeouts: registry.counter(
                "cornet_http_timeouts_total",
                "Requests dropped with 408 for not completing in time.",
            ),
        }
    })
}

/// Normalizes a request to its route label for metrics: parameterized
/// segments collapse (`/session/s7` → `/session/:id`) so label
/// cardinality never grows with traffic; anything unroutable is
/// `unmatched`.
fn route_label(method: &str, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["health"]) => "/health",
        ("GET", ["metrics"]) => "/metrics",
        ("POST", ["learn"]) => "/learn",
        ("POST", ["score"]) => "/score",
        ("POST", ["suggest"]) => "/suggest",
        ("POST", ["batch"]) => "/batch",
        ("POST", ["session"]) => "/session",
        ("GET", ["session", _]) => "/session/:id",
        ("POST", ["session", _, "correct"]) => "/session/:id/correct",
        ("GET", ["rules", _]) => "/rules/:id",
        ("POST", ["admin", "pack"]) => "/admin/pack",
        _ => "unmatched",
    }
}

/// The per-route latency histogram (`cornet_http_request_duration_seconds`).
fn route_histogram(label: &'static str) -> cornet_obs::Histogram {
    cornet_obs::registry().histogram_with(
        "cornet_http_request_duration_seconds",
        "Request handling latency (routing + response write), by route.",
        &[("route", label)],
    )
}

/// Counts one finished request in `cornet_http_requests_total{route,status}`.
fn count_request(label: &'static str, status: u16) {
    cornet_obs::registry()
        .counter_with(
            "cornet_http_requests_total",
            "Requests served, by route and response status.",
            &[("route", label), ("status", &status.to_string())],
        )
        .inc();
}

/// Process-unique request id, threaded through [`RequestRecord`] and
/// (via [`cornet_obs::set_request_id`]) into trace events.
fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component (query strings are stripped; this API ignores them).
    pub path: String,
    /// Raw body bytes as text.
    pub body: String,
    /// Whether the connection stays open after the response
    /// (`HTTP/1.1` default, overridable with a `Connection` header).
    pub keep_alive: bool,
}

/// Outcome of one incremental parse attempt over a connection buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete request; read more bytes.
    Incomplete,
    /// One complete request, occupying the first `consumed` buffer bytes.
    Ready {
        /// The parsed request.
        request: Request,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
    /// A protocol violation; respond with `status` and close.
    Bad {
        /// `400` for malformed requests, `413` for oversized bodies.
        status: u16,
        /// Human-readable rejection reason.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ParseOutcome {
    ParseOutcome::Bad {
        status,
        message: message.into(),
    }
}

/// Incrementally parses the first request out of `buf`.
///
/// Pure function of the buffer: callers re-invoke it as bytes arrive
/// (`Incomplete`), after draining a request (`Ready` — pipelined requests
/// are parsed strictly in arrival order), or to learn the rejection
/// status (`Bad`). The head must be UTF-8 and under [`MAX_HEAD`] bytes;
/// bodies are framed by `Content-Length` and capped at [`MAX_BODY`].
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            return if buf.len() > MAX_HEAD {
                bad(400, "request head too large")
            } else {
                ParseOutcome::Incomplete
            };
        }
    };
    if head_end > MAX_HEAD {
        return bad(400, "request head too large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return bad(400, "non-UTF-8 request head"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let parts: Vec<&str> = request_line.split(' ').collect();
    let [method, target, version] = parts.as_slice() else {
        return bad(400, format!("malformed request line `{request_line}`"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_graphic()) {
        return bad(400, format!("malformed method in `{request_line}`"));
    }
    if target.is_empty() {
        return bad(400, "empty request target");
    }
    let http11 = match *version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return bad(400, format!("unsupported protocol version `{other}`")),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return bad(400, format!("malformed header line `{line}`"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return bad(400, format!("malformed header name `{name}`"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = match value.parse() {
                Ok(n) => n,
                Err(_) => return bad(400, format!("invalid Content-Length `{value}`")),
            };
            if let Some(prev) = content_length {
                if prev != parsed {
                    return bad(400, "conflicting Content-Length headers");
                }
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return bad(400, "transfer encodings are not supported");
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return bad(413, "request body too large");
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    let body = match std::str::from_utf8(&buf[body_start..total]) {
        Ok(b) => b.to_string(),
        Err(_) => return bad(400, "non-UTF-8 request body"),
    };
    ParseOutcome::Ready {
        request: Request {
            method: method.to_string(),
            path: target.split('?').next().unwrap_or(target).to_string(),
            body,
            keep_alive,
        },
        consumed: total,
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes an HTTP/1.1 response. `retry_after` adds a `Retry-After`
/// header (load-shedding responses carry one); `content_type` is
/// [`JSON_CONTENT_TYPE`] everywhere except `/metrics`.
fn respond(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
    retry_after: Option<u32>,
    content_type: &str,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let retry = retry_after.map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a closing HTTP/1.1 response with a JSON body (the one-shot
/// compatibility surface; the server's keep-alive path uses the richer
/// internal writer).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, body, true, None, JSON_CONTENT_TYPE)
}

fn error_body(status: u16, message: &str) -> String {
    to_string(&envelope(
        "error",
        Json::object([
            ("error", Json::str(message)),
            ("status", Json::Number(status as f64)),
        ]),
    ))
}

fn ok_body(kind: &str, payload: Json) -> String {
    to_string(&envelope(kind, payload))
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn parse_body(body: &str) -> Result<Json, ServeError> {
    cornet_serde::parse(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

fn decode_request<T: FromJson>(body: &str) -> Result<T, ServeError> {
    T::from_json(&parse_body(body)?).map_err(|e| ServeError::BadRequest(e.message))
}

/// Routes one request to the service. Returns `(status, body)`.
pub fn route(service: &CornetService, request: &Request) -> (u16, String) {
    match handle(service, request) {
        Ok((kind, payload)) => (200, ok_body(kind, payload)),
        Err(e) => (e.status(), error_body(e.status(), e.message())),
    }
}

fn handle(service: &CornetService, request: &Request) -> Result<(&'static str, Json), ServeError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(("health", service.health())),
        ("POST", ["learn"]) => {
            let req: LearnRequest = decode_request(&request.body)?;
            Ok(("learn", service.learn(&req)?.to_json()))
        }
        ("POST", ["score"]) => {
            let req: ScoreRequest = decode_request(&request.body)?;
            Ok(("score", service.score(&req)?.to_json()))
        }
        ("POST", ["suggest"]) => {
            let req: SuggestRequest = decode_request(&request.body)?;
            Ok(("suggest", service.suggest(&req)?.to_json()))
        }
        ("POST", ["batch"]) => {
            let doc = parse_body(&request.body)?;
            let items: Vec<BatchItem> = cornet_serde::field_t(&doc, "items")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let results: Vec<Json> = service
                .batch(&items)
                .into_iter()
                .map(|r| match r {
                    Ok(payload) => payload,
                    Err(e) => Json::object([
                        ("error", Json::str(e.message())),
                        ("status", Json::Number(e.status() as f64)),
                    ]),
                })
                .collect();
            Ok(("batch", Json::object([("results", Json::Array(results))])))
        }
        ("POST", ["session"]) => {
            let doc = parse_body(&request.body)?;
            let cells: Vec<String> = cornet_serde::field_t(&doc, "cells")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            let examples: Vec<usize> = cornet_serde::optional_field_t(&doc, "examples")
                .map_err(|e| ServeError::BadRequest(e.message))?
                .unwrap_or_default();
            let classes: Vec<ClassRequest> = cornet_serde::optional_field_t(&doc, "classes")
                .map_err(|e| ServeError::BadRequest(e.message))?
                .unwrap_or_default();
            Ok((
                "session",
                service.session_create(cells, examples, classes)?.to_json(),
            ))
        }
        ("GET", ["session", id]) => Ok(("session", service.session_get(id)?.to_json())),
        ("POST", ["session", id, "correct"]) => {
            let doc = parse_body(&request.body)?;
            let read_list = |key: &str| -> Result<Vec<usize>, ServeError> {
                Ok(cornet_serde::optional_field_t(&doc, key)
                    .map_err(|e| ServeError::BadRequest(e.message))?
                    .unwrap_or_default())
            };
            let format = read_list("format")?;
            let unformat = read_list("unformat")?;
            let class: Option<usize> = cornet_serde::optional_field_t(&doc, "class")
                .map_err(|e| ServeError::BadRequest(e.message))?;
            Ok((
                "session",
                service
                    .session_correct(id, &format, &unformat, class)?
                    .to_json(),
            ))
        }
        ("GET", ["rules", id]) => Ok(("rule", service.rule(id)?.to_json())),
        ("POST", ["admin", "pack"]) => {
            let packed = service.pack_rules()?;
            Ok(("pack", Json::object([("packed", packed.to_json())])))
        }
        (_, _) => Err(ServeError::NotFound(format!(
            "no route for {} {}",
            request.method, request.path
        ))),
    }
}

// ---------------------------------------------------------------------------
// Request logging
// ---------------------------------------------------------------------------

/// One served request, as seen by the [`RequestLog`] seam.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Server-assigned connection id (stable across keep-alive reuse).
    pub conn: u64,
    /// Process-unique request id — the same id trace events emitted
    /// while the request was handled carry, so log lines and spans join.
    pub request_id: u64,
    /// Request method (`-` for protocol errors rejected before parsing).
    pub method: String,
    /// Request path (`-` for protocol errors rejected before parsing).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Handling latency in microseconds (routing + response write).
    pub micros: u64,
}

/// Structured per-request logging seam. Implementations must be cheap
/// and non-blocking — the record is emitted on the worker thread that
/// served the request.
pub trait RequestLog: Send + Sync {
    /// Called once per served request (including protocol errors).
    fn record(&self, record: &RequestRecord);
}

/// Discards every record (the default for embedded/test servers).
#[derive(Debug, Default)]
pub struct NullLog;

impl RequestLog for NullLog {
    fn record(&self, _record: &RequestRecord) {}
}

/// Formats one record as the single log line [`StderrLog`] writes.
fn format_record(r: &RequestRecord) -> String {
    format!(
        "request conn={} request={} method={} path={} status={} us={}\n",
        r.conn, r.request_id, r.method, r.path, r.status, r.micros
    )
}

/// Writes one structured line per request to stderr (the binary's
/// default): `request conn=3 request=17 method=POST path=/learn
/// status=200 us=512`.
#[derive(Debug, Default)]
pub struct StderrLog;

impl RequestLog for StderrLog {
    fn record(&self, r: &RequestRecord) {
        // Format first, then take the stderr lock exactly once for a
        // single `write_all`: concurrent workers' records can interleave
        // as whole lines but never within one.
        let line = format_record(r);
        let stderr = io::stderr();
        let mut handle = stderr.lock();
        let _ = handle.write_all(line.as_bytes());
    }
}

/// Collects every record in memory — the conformance suites' log seam,
/// also usable by embedding tests that assert on served traffic.
#[derive(Debug, Default)]
pub struct VecLog(Mutex<Vec<RequestRecord>>);

impl VecLog {
    /// A snapshot of the records collected so far, in arrival order.
    pub fn records(&self) -> Vec<RequestRecord> {
        self.0.lock().unwrap().clone()
    }
}

impl RequestLog for VecLog {
    fn record(&self, record: &RequestRecord) {
        self.0.lock().unwrap().push(record.clone());
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server tuning knobs. [`ServerConfig::from_env`] reads the
/// `CORNET_MAX_CONNS`, `CORNET_KEEP_ALIVE_SECS`,
/// `CORNET_REQUEST_TIMEOUT_SECS` and `CORNET_HTTP_WORKERS` environment
/// variables on top of these defaults.
#[derive(Clone)]
pub struct ServerConfig {
    /// Hard cap on live connections; beyond it the accept thread sheds
    /// new sockets with `503` + `Retry-After`.
    pub max_connections: usize,
    /// How long an idle keep-alive connection may sit between requests.
    pub keep_alive: Duration,
    /// Deadline for one request to arrive completely once its first byte
    /// has been read (the slow-loris bound) — also the response write
    /// timeout.
    pub request_timeout: Duration,
    /// Worker-thread count; `0` sizes from `cornet_pool::current_threads`
    /// (clamped to 2..=16).
    pub workers: usize,
    /// Whether `GET /metrics` is served (`true` by default); when off the
    /// path falls through to the router's 404.
    pub metrics: bool,
    /// Per-request logging seam.
    pub log: Arc<dyn RequestLog>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            keep_alive: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            workers: 0,
            metrics: true,
            log: Arc::new(NullLog),
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_connections", &self.max_connections)
            .field("keep_alive", &self.keep_alive)
            .field("request_timeout", &self.request_timeout)
            .field("workers", &self.workers)
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

impl ServerConfig {
    /// Defaults overridden by the `CORNET_MAX_CONNS`,
    /// `CORNET_KEEP_ALIVE_SECS`, `CORNET_REQUEST_TIMEOUT_SECS` and
    /// `CORNET_HTTP_WORKERS` environment variables (invalid values are
    /// ignored).
    pub fn from_env() -> ServerConfig {
        fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let mut config = ServerConfig::default();
        if let Some(n) = env_parse::<usize>("CORNET_MAX_CONNS") {
            config.max_connections = n.max(1);
        }
        if let Some(secs) = env_parse::<u64>("CORNET_KEEP_ALIVE_SECS") {
            config.keep_alive = Duration::from_secs(secs.max(1));
        }
        if let Some(secs) = env_parse::<u64>("CORNET_REQUEST_TIMEOUT_SECS") {
            config.request_timeout = Duration::from_secs(secs.max(1));
        }
        if let Some(n) = env_parse::<usize>("CORNET_HTTP_WORKERS") {
            config.workers = n;
        }
        config
    }
}

/// Decrements the live-connection counter (and the connections gauge)
/// when a connection dies, however it dies — the accept thread's cap
/// check reads this counter.
struct ConnPermit(Arc<AtomicUsize>);

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        http_metrics().connections.dec();
    }
}

/// One live connection: the socket plus its unparsed input bytes.
struct Conn {
    id: u64,
    stream: TcpStream,
    buf: Vec<u8>,
    /// Set while a partial request sits in `buf` (the slow-loris clock).
    started: Option<Instant>,
    /// Last time the connection went idle (the keep-alive clock).
    idle_since: Instant,
    _permit: ConnPermit,
}

/// State shared between the accept thread, the poller and the workers.
struct Shared {
    stop: AtomicBool,
    /// Connections with a complete request buffered, awaiting a worker.
    ready: Mutex<VecDeque<Conn>>,
    ready_cv: Condvar,
    /// Connections handed back to the poller (newly accepted or drained).
    returned: Mutex<Vec<Conn>>,
}

/// What the poller decided about one idle connection this tick.
enum PollVerdict {
    Idle,
    Dispatch,
    Drop,
}

fn poll_conn(conn: &mut Conn, config: &ServerConfig) -> PollVerdict {
    let mut chunk = [0u8; 4096];
    let mut read = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            // A peer close with a partial request pending is a
            // mid-request disconnect; either way the connection is done.
            Ok(0) => return PollVerdict::Drop,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                read += n;
                if read >= READ_BURST {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return PollVerdict::Drop,
        }
    }
    if read > 0 && conn.started.is_none() {
        conn.started = Some(Instant::now());
    }
    if !conn.buf.is_empty() {
        match parse_request(&conn.buf) {
            ParseOutcome::Incomplete => {
                if let Some(t0) = conn.started {
                    if t0.elapsed() > config.request_timeout {
                        // Slow loris: the request never completed. Tell
                        // the client (best effort on the non-blocking
                        // socket) and reclaim the connection.
                        let body = error_body(408, "request did not complete in time");
                        let _ =
                            respond(&mut conn.stream, 408, &body, true, None, JSON_CONTENT_TYPE);
                        http_metrics().timeouts.inc();
                        count_request("unmatched", 408);
                        config.log.record(&RequestRecord {
                            conn: conn.id,
                            request_id: next_request_id(),
                            method: "-".into(),
                            path: "-".into(),
                            status: 408,
                            micros: 0,
                        });
                        return PollVerdict::Drop;
                    }
                }
                PollVerdict::Idle
            }
            _ => PollVerdict::Dispatch,
        }
    } else if conn.idle_since.elapsed() > config.keep_alive {
        PollVerdict::Drop
    } else {
        PollVerdict::Idle
    }
}

/// Drains every complete pipelined request buffered on `conn`, in order,
/// then returns the connection to the poller (or drops it on
/// close/error). Runs on a worker thread with the socket in blocking
/// mode for the response writes.
fn serve_ready(mut conn: Conn, service: &CornetService, config: &ServerConfig, shared: &Shared) {
    if conn.stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = conn.stream.set_write_timeout(Some(config.request_timeout));
    loop {
        match parse_request(&conn.buf) {
            ParseOutcome::Ready { request, consumed } => {
                conn.buf.drain(..consumed);
                // Request id + span: trace events the handler emits on
                // this thread (learner stages, …) carry the id, and the
                // timer lands the full handling latency — routing plus
                // response write — in the per-route histogram.
                let request_id = next_request_id();
                let _id_guard = cornet_obs::set_request_id(request_id);
                let label = route_label(&request.method, &request.path);
                let metrics = http_metrics();
                metrics.inflight.inc();
                let t0 = Instant::now();
                let timer = StageTimer::start(label, route_histogram(label));
                let (status, body, content_type) = if config.metrics && label == "/metrics" {
                    (200, service.metrics_text(), METRICS_CONTENT_TYPE)
                } else {
                    let (status, body) = route(service, &request);
                    (status, body, JSON_CONTENT_TYPE)
                };
                let close = !request.keep_alive;
                let wrote = respond(&mut conn.stream, status, &body, close, None, content_type);
                drop(timer);
                metrics.inflight.dec();
                count_request(label, status);
                config.log.record(&RequestRecord {
                    conn: conn.id,
                    request_id,
                    method: request.method,
                    path: request.path,
                    status,
                    micros: t0.elapsed().as_micros() as u64,
                });
                if wrote.is_err() || close {
                    return;
                }
            }
            ParseOutcome::Bad { status, message } => {
                let body = error_body(status, &message);
                let _ = respond(
                    &mut conn.stream,
                    status,
                    &body,
                    true,
                    None,
                    JSON_CONTENT_TYPE,
                );
                count_request("unmatched", status);
                config.log.record(&RequestRecord {
                    conn: conn.id,
                    request_id: next_request_id(),
                    method: "-".into(),
                    path: "-".into(),
                    status,
                    micros: 0,
                });
                return;
            }
            ParseOutcome::Incomplete => break,
        }
    }
    conn.started = if conn.buf.is_empty() {
        None
    } else {
        Some(Instant::now())
    };
    conn.idle_since = Instant::now();
    if conn.stream.set_nonblocking(true).is_ok() {
        shared.returned.lock().unwrap().push(conn);
    }
}

/// Sheds one over-cap connection with a `503` + `Retry-After` (on the
/// accept thread, bounded by a short write timeout).
fn shed(mut stream: TcpStream) {
    http_metrics().shed.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = error_body(503, "server at connection capacity, retry shortly");
    let _ = respond(&mut stream, 503, &body, true, Some(1), JSON_CONTENT_TYPE);
}

/// A running HTTP server; see the module docs for the thread layout.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    live: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    poller_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `service` with [`ServerConfig::from_env`] until
    /// [`Server::shutdown`] (or drop).
    pub fn start(addr: &str, service: Arc<CornetService>) -> io::Result<Server> {
        Server::start_with(addr, service, ServerConfig::from_env())
    }

    /// [`Server::start`] with explicit tuning knobs.
    pub fn start_with(
        addr: &str,
        service: Arc<CornetService>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            returned: Mutex::new(Vec::new()),
        });
        let live = Arc::new(AtomicUsize::new(0));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let live = Arc::clone(&live);
            let config = config.clone();
            std::thread::spawn(move || {
                let next_id = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // Typically fd exhaustion; back off instead of
                        // spinning accept→error at full CPU.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    if live.load(Ordering::SeqCst) >= config.max_connections {
                        shed(stream);
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    http_metrics().connections.inc();
                    let permit = ConnPermit(Arc::clone(&live));
                    if stream.set_nonblocking(true).is_err() {
                        continue; // permit drop restores the count
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn {
                        id: next_id.fetch_add(1, Ordering::Relaxed),
                        stream,
                        buf: Vec::new(),
                        started: None,
                        idle_since: Instant::now(),
                        _permit: permit,
                    };
                    shared.returned.lock().unwrap().push(conn);
                }
            })
        };

        let poller_thread = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut idle: Vec<Conn> = Vec::new();
                loop {
                    if shared.stop.load(Ordering::SeqCst) {
                        break; // drops every idle connection
                    }
                    idle.append(&mut shared.returned.lock().unwrap());
                    let mut activity = false;
                    let mut still_idle = Vec::with_capacity(idle.len());
                    for mut conn in idle.drain(..) {
                        match poll_conn(&mut conn, &config) {
                            PollVerdict::Idle => still_idle.push(conn),
                            PollVerdict::Dispatch => {
                                shared.ready.lock().unwrap().push_back(conn);
                                shared.ready_cv.notify_one();
                                activity = true;
                            }
                            PollVerdict::Drop => activity = true,
                        }
                    }
                    idle = still_idle;
                    if !activity {
                        std::thread::sleep(POLL_TICK);
                    }
                }
            })
        };

        let workers = if config.workers > 0 {
            config.workers
        } else {
            cornet_pool::current_threads().clamp(2, 16)
        };
        let worker_threads = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&service);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    let next = {
                        let mut ready = shared.ready.lock().unwrap();
                        loop {
                            if let Some(conn) = ready.pop_front() {
                                break Some(conn);
                            }
                            if shared.stop.load(Ordering::SeqCst) {
                                break None;
                            }
                            ready = shared.ready_cv.wait(ready).unwrap();
                        }
                    };
                    match next {
                        Some(conn) => serve_ready(conn, &service, &config, &shared),
                        None => break,
                    }
                })
            })
            .collect();

        Ok(Server {
            addr,
            shared,
            live,
            accept_thread: Some(accept_thread),
            poller_thread: Some(poller_thread),
            worker_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently live connections (idle keep-alive sockets
    /// included) — the quantity the accept-time cap is enforced against.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Stops accepting, drops idle connections, and joins every thread.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform; rewrite it to the matching loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        self.shared.ready_cv.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // Connections parked in the ready queue die with the server.
        self.shared.ready.lock().unwrap().clear();
        self.shared.returned.lock().unwrap().clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client helpers
// ---------------------------------------------------------------------------

/// Serializes one request the way the bundled clients send it (HTTP/1.1,
/// length-framed body, explicit `Connection` header). Also the input
/// side of the conformance suite's serialize→parse round-trips.
pub fn encode_request(method: &str, path: &str, body: Option<&str>, close: bool) -> String {
    let body = body.unwrap_or("");
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: cornet\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
}

/// One parsed response from the bundled clients.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded JSON body.
    pub body: Json,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads exactly one `Content-Length`-framed response from `stream`
/// without over-reading into the next pipelined response, and decodes
/// the body as JSON (every endpoint except `/metrics`).
pub fn read_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let (status, headers, text) = read_response_text(stream)?;
    let body =
        cornet_serde::parse(&text).map_err(|e| invalid(&format!("bad JSON response body: {e}")))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// [`read_response`] without the JSON decode: returns the raw body text.
/// This is what `/metrics` scrapers use — the exposition is Prometheus
/// text, not JSON.
pub fn read_response_text(
    stream: &mut TcpStream,
) -> io::Result<(u16, Vec<(String, String)>, String)> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time keeps the reader trivially correct about framing;
    // response heads are tiny.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Err(invalid("response head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(invalid("connection closed mid-response")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| invalid("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("missing response status"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| invalid("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..])? {
            0 => return Err(invalid("connection closed mid-body")),
            n => filled += n,
        }
    }
    let text = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 response body"))?;
    Ok((status, headers, text))
}

/// A blocking keep-alive HTTP/1.1 client: many requests over one socket.
/// Used by the load harness, the conformance suite and the smoke driver.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects with the standard client timeouts and `TCP_NODELAY`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(HttpClient { stream })
    }

    /// Sends one keep-alive request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.stream
            .write_all(encode_request(method, path, body, false).as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }

    /// Sends one keep-alive request and reads the raw (non-JSON)
    /// response body — the keep-alive way to scrape `/metrics`.
    pub fn request_text(&mut self, method: &str, path: &str) -> io::Result<(u16, String)> {
        self.stream
            .write_all(encode_request(method, path, None, false).as_bytes())?;
        self.stream.flush()?;
        let (status, _, text) = read_response_text(&mut self.stream)?;
        Ok((status, text))
    }

    /// Writes raw bytes (for pipelining and protocol-error tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one framed response (pair with [`HttpClient::send_raw`]).
    pub fn read_one(&mut self) -> io::Result<HttpResponse> {
        read_response(&mut self.stream)
    }
}

/// A minimal one-shot blocking client for tests, the smoke driver and
/// scripts: sends one HTTP/1.1 request with `Connection: close`, returns
/// `(status, envelope)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(encode_request(method, path, body, true).as_bytes())?;
    stream.flush()?;
    let response = read_response(&mut stream)?;
    Ok((response.status, response.body))
}

/// [`http_request`] for non-JSON endpoints: one `Connection: close`
/// request, raw body text back. The one-shot way to scrape `/metrics`.
pub fn http_request_text(addr: SocketAddr, method: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(encode_request(method, path, None, true).as_bytes())?;
    stream.flush()?;
    let (status, _, text) = read_response_text(&mut stream)?;
    Ok((status, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::path::PathBuf;

    fn temp_server(tag: &str) -> (Server, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cornet-http-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: dir.clone(),
                cache_capacity: 16,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        (Server::start("127.0.0.1:0", service).unwrap(), dir)
    }

    #[test]
    fn health_and_unknown_route() {
        let (mut server, dir) = temp_server("health");
        let (status, doc) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let payload = cornet_serde::open_envelope(&doc, "health").unwrap();
        assert_eq!(payload.get("status").and_then(Json::as_str), Some("ok"));

        let (status, doc) = http_request(server.addr(), "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(cornet_serde::open_envelope(&doc, "error").is_ok());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn learn_over_the_wire() {
        let (mut server, dir) = temp_server("learn");
        let body = r#"{"cells":["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"],"examples":[0,2,5]}"#;
        let (status, doc) = http_request(server.addr(), "POST", "/learn", Some(body)).unwrap();
        assert_eq!(status, 200, "{doc}");
        let payload = cornet_serde::open_envelope(&doc, "learn").unwrap();
        let matches: Vec<usize> = Vec::from_json(payload.get("matches").unwrap()).unwrap();
        assert_eq!(matches, vec![0, 2, 5]);

        let bad = http_request(server.addr(), "POST", "/learn", Some("{oops")).unwrap();
        assert_eq!(bad.0, 400);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_over_the_wire() {
        let (mut server, dir) = temp_server("suggest");
        let learn = r#"{"cells":["RW-187","RS-762","RW-159","RW-131-T","TW-224","RW-312"],"examples":[0,2,5]}"#;
        let (status, _) = http_request(server.addr(), "POST", "/learn", Some(learn)).unwrap();
        assert_eq!(status, 200);

        // A bare column — no examples anywhere in the request.
        let ask = r#"{"cells":["RW-555","XQ-12","RW-901"]}"#;
        let (status, doc) = http_request(server.addr(), "POST", "/suggest", Some(ask)).unwrap();
        assert_eq!(status, 200, "{doc}");
        let payload = cornet_serde::open_envelope(&doc, "suggest").unwrap();
        let suggestions = payload
            .get("suggestions")
            .and_then(Json::as_array)
            .expect("suggestions array");
        assert_eq!(suggestions.len(), 1);
        let matches: Vec<usize> = Vec::from_json(suggestions[0].get("matches").unwrap()).unwrap();
        assert!(matches.contains(&0) && !matches.contains(&1), "{matches:?}");

        let bad = http_request(server.addr(), "POST", "/suggest", Some("{}")).unwrap();
        assert_eq!(bad.0, 400, "missing cells");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_slow_client_does_not_block_other_requests() {
        let (mut server, dir) = temp_server("slow-client");
        // A client that opens a connection, sends half a request head and
        // then stalls. Under continuous scheduling it sits in the poller
        // and occupies no worker at all.
        let mut slow = TcpStream::connect(server.addr()).unwrap();
        slow.write_all(b"POST /learn HTTP/1.1\r\nContent-").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        let (status, _) = http_request(server.addr(), "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "health blocked behind the stalled client for {:?}",
            started.elapsed()
        );
        drop(slow);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_requests_all_get_answers() {
        let (mut server, dir) = temp_server("concurrent");
        let addr = server.addr();
        let handles: Vec<_> = (0..12)
            .map(|_| {
                std::thread::spawn(move || {
                    http_request(addr, "GET", "/health", None).map(|(s, _)| s)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 200);
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn method_mismatch_is_a_404() {
        let (mut server, dir) = temp_server("method");
        let (status, _) = http_request(server.addr(), "GET", "/learn", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_alive_socket_serves_many_requests() {
        let (mut server, dir) = temp_server("keep-alive");
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..4 {
            let response = client.request("GET", "/health", None).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (mut server, dir) = temp_server("metrics");
        let learn = r#"{"cells":["RW-187","RS-762","RW-159"],"examples":[0,2]}"#;
        let (status, _) = http_request(server.addr(), "POST", "/learn", Some(learn)).unwrap();
        assert_eq!(status, 200);
        let (status, text) = http_request_text(server.addr(), "GET", "/metrics").unwrap();
        assert_eq!(status, 200);
        let expo = cornet_obs::expo::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(
            expo.value("cornet_service_learns_performed", &[]),
            Some(1.0)
        );
        assert!(
            expo.value(
                "cornet_http_requests_total",
                &[("route", "/learn"), ("status", "200")]
            )
            .is_some_and(|v| v >= 1.0),
            "per-route request counter missing:\n{text}"
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_endpoint_can_be_disabled() {
        let dir = std::env::temp_dir().join(format!(
            "cornet-http-test-metrics-off-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: dir.clone(),
                cache_capacity: 16,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        let config = ServerConfig {
            metrics: false,
            ..ServerConfig::default()
        };
        let mut server = Server::start_with("127.0.0.1:0", service, config).unwrap();
        let (status, _) = http_request_text(server.addr(), "GET", "/metrics").unwrap();
        assert_eq!(status, 404, "gated-off /metrics falls through to 404");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_records_carry_distinct_request_ids() {
        let dir = std::env::temp_dir().join(format!(
            "cornet-http-test-request-ids-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            CornetService::new(&ServiceConfig {
                store_dir: dir.clone(),
                cache_capacity: 16,
                ..ServiceConfig::default()
            })
            .unwrap(),
        );
        let log = Arc::new(VecLog::default());
        let config = ServerConfig {
            log: Arc::clone(&log) as Arc<dyn RequestLog>,
            ..ServerConfig::default()
        };
        let mut server = Server::start_with("127.0.0.1:0", service, config).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    http_request(addr, "GET", "/health", None).map(|(s, _)| s)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 200);
        }
        server.shutdown();
        let records = log.records();
        assert_eq!(records.len(), 4);
        let mut ids: Vec<u64> = records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "request ids must be process-unique");
        // Each record is one complete unit: concurrent workers must never
        // interleave fields across records (the log-seam atomicity
        // contract StderrLog's single locked write upholds on stderr).
        for r in &records {
            assert_eq!(r.method, "GET");
            assert_eq!(r.path, "/health");
            assert_eq!(r.status, 200);
            let line = format_record(r);
            assert!(
                line.ends_with('\n') && line.matches('\n').count() == 1,
                "one record must format as exactly one line: {line:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn route_labels_normalize_parameters() {
        assert_eq!(route_label("GET", "/session/s42"), "/session/:id");
        assert_eq!(
            route_label("POST", "/session/s42/correct"),
            "/session/:id/correct"
        );
        assert_eq!(route_label("GET", "/rules/r0f"), "/rules/:id");
        assert_eq!(route_label("GET", "/metrics"), "/metrics");
        assert_eq!(route_label("POST", "/metrics"), "unmatched");
        assert_eq!(route_label("GET", "/whatever/else"), "unmatched");
    }

    #[test]
    fn parser_covers_framing_and_connection_semantics() {
        // Incremental completion: every prefix is Incomplete.
        let wire = encode_request("POST", "/learn", Some(r#"{"x":1}"#), false);
        let bytes = wire.as_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                parse_request(&bytes[..cut]),
                ParseOutcome::Incomplete,
                "cut at {cut}"
            );
        }
        match parse_request(bytes) {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/learn");
                assert_eq!(request.body, r#"{"x":1}"#);
                assert!(request.keep_alive);
            }
            other => panic!("{other:?}"),
        }

        // HTTP/1.0 defaults to close, 1.1 to keep-alive; explicit
        // Connection headers override both.
        let old = b"GET /health HTTP/1.0\r\n\r\n";
        match parse_request(old) {
            ParseOutcome::Ready { request, .. } => assert!(!request.keep_alive),
            other => panic!("{other:?}"),
        }
        let old_keep = b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match parse_request(old_keep) {
            ParseOutcome::Ready { request, .. } => assert!(request.keep_alive),
            other => panic!("{other:?}"),
        }
        let close = encode_request("GET", "/health", None, true);
        match parse_request(close.as_bytes()) {
            ParseOutcome::Ready { request, .. } => assert!(!request.keep_alive),
            other => panic!("{other:?}"),
        }

        // Query strings are stripped from the path.
        let query = b"GET /health?verbose=1 HTTP/1.1\r\n\r\n";
        match parse_request(query) {
            ParseOutcome::Ready { request, .. } => assert_eq!(request.path, "/health"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parser_rejections_carry_the_right_status() {
        let cases: &[(&[u8], u16)] = &[
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 400),
            (b"GET  /x HTTP/1.1\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            (b"POST /x HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n", 413),
        ];
        for (wire, want) in cases {
            match parse_request(wire) {
                ParseOutcome::Bad { status, .. } => {
                    assert_eq!(status, *want, "{:?}", String::from_utf8_lossy(wire))
                }
                other => panic!("{:?} → {other:?}", String::from_utf8_lossy(wire)),
            }
        }
    }
}
