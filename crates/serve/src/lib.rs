//! **cornet-serve** — the Cornet learner as a service.
//!
//! The ROADMAP's north star is a production-scale rule-formatting
//! service; this crate is the serving layer over the learner core:
//!
//! * [`store`] — a persistent rule store: hot rules live as one
//!   `{"v":1,"kind":"stored-rule",…}` JSON file each (`cornet_serde`
//!   envelopes), cold rules are packed into append-only segment files
//!   with an in-memory index ([`store::RuleStore::pack`]), all fronted
//!   by an in-memory LRU. Rule ids are content fingerprints of the
//!   learn request, so an identical request — in this process or after
//!   a restart — is answered from the store without re-learning.
//! * [`service`] — the transport-independent service:
//!   [`service::CornetService`] exposes `learn` (examples in → rule out),
//!   `score` (rule + rows in → labels out), `batch` (fanned onto
//!   `cornet-pool`) and the demo paper's correct-and-relearn `session`
//!   loop.
//! * [`http`] — a `std::net` HTTP/1.1 keep-alive front-end: a poller
//!   thread owns every idle connection (so parked keep-alive sockets
//!   never pin a worker), complete requests are dispatched to a fixed
//!   worker pool that drains pipelined requests in order, and a hard
//!   connection cap sheds overload with `503` + `Retry-After` instead
//!   of silent drops. Per-request logging (method, path, status, µs
//!   latency, connection id) hangs off the [`http::RequestLog`] seam;
//!   [`http::HttpClient`] / [`http::http_request`] are the matching
//!   minimal clients.
//! * [`suggest`] — zero-example suggestion: every learned rule's column
//!   signature is embedded and indexed in a tenant-namespaced ball tree
//!   ([`cornet_nn::BallTree`]), so `POST /suggest` retrieves and
//!   re-scores the nearest stored rules for a bare column in sublinear
//!   time, with no learner run at all.
//! * [`smoke`] — the scripted learn→score→correct→re-learn→restart
//!   session used by the CI smoke job and the `cornet-serve smoke`
//!   subcommand.
//!
//! ```no_run
//! use cornet_serve::service::{CornetService, LearnRequest, ServiceConfig};
//!
//! let service = CornetService::new(&ServiceConfig::default()).unwrap();
//! let learned = service
//!     .learn(&LearnRequest {
//!         cells: vec!["RW-187".into(), "RS-762".into(), "RW-159".into()],
//!         examples: vec![0, 2],
//!         negatives: vec![],
//!         classes: vec![],
//!         tenant: None,
//!     })
//!     .unwrap();
//! println!("{} → {}", learned.rule_id, learned.rule_text);
//! ```

pub mod http;
pub mod service;
pub mod sha256;
pub mod smoke;
pub mod store;
pub mod suggest;

pub use http::{
    http_request, HttpClient, HttpResponse, RequestLog, RequestRecord, Server, ServerConfig,
};
pub use service::{
    ClassRequest, CornetService, LearnRequest, ScoreRequest, ServeError, ServiceConfig,
};
pub use store::{RuleStore, StoredRule};
pub use suggest::{SuggestIndex, SuggestRequest, SuggestResponse, Suggestion};
