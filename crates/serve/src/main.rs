//! The `cornet-serve` binary: HTTP front-end over the rule store.
//!
//! ```text
//! cornet-serve [--addr 127.0.0.1:7878] [--store cornet-store] [--capacity 256]
//! cornet-serve smoke
//! ```
//!
//! The default mode binds the address and serves until killed. The
//! `smoke` subcommand runs the scripted learn→score→correct→re-learn→
//! restart session against a throwaway store and exits non-zero on any
//! failure (the CI `serve-smoke` job).

use cornet_serve::service::{CornetService, ServiceConfig};
use cornet_serve::Server;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        match cornet_serve::smoke::run() {
            Ok(log) => {
                for line in log {
                    println!("{line}");
                }
                println!("smoke: PASS");
            }
            Err(e) => {
                eprintln!("smoke: FAIL\n{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut addr = "127.0.0.1:7878".to_string();
    let mut store_dir = PathBuf::from("cornet-store");
    let mut capacity = 256usize;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--store" => store_dir = PathBuf::from(value("--store")),
            "--capacity" => {
                capacity = value("--capacity").parse().unwrap_or_else(|_| {
                    eprintln!("--capacity must be a positive integer");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: cornet-serve [--addr HOST:PORT] [--store DIR] [--capacity N] | smoke"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let service = match CornetService::new(&ServiceConfig {
        store_dir: store_dir.clone(),
        cache_capacity: capacity,
        ..ServiceConfig::default()
    }) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot open rule store {}: {e}", store_dir.display());
            std::process::exit(1);
        }
    };
    let server = match Server::start(&addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "cornet-serve listening on http://{} (rule store: {}, cache: {capacity})",
        server.addr(),
        store_dir.display()
    );
    eprintln!(
        "endpoints: GET /health · POST /learn /score /batch /session · GET /session/<id> /rules/<id>"
    );
    loop {
        std::thread::park();
    }
}
