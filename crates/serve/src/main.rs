//! The `cornet-serve` binary: HTTP front-end over the rule store.
//!
//! ```text
//! cornet-serve [--addr 127.0.0.1:7878] [--store cornet-store] [--capacity 256]
//!              [--max-conns 256] [--keep-alive-secs 10] [--quiet]
//!              [--metrics|--no-metrics]
//! cornet-serve pack [--store cornet-store]
//! cornet-serve smoke
//! ```
//!
//! The default mode binds the address and serves until killed, logging
//! one `request …` line per request to stderr (suppress with `--quiet`).
//! Flags beat the `CORNET_MAX_CONNS` / `CORNET_KEEP_ALIVE_SECS` /
//! `CORNET_REQUEST_TIMEOUT_SECS` / `CORNET_HTTP_WORKERS` environment
//! knobs, which beat the defaults.
//!
//! `GET /metrics` (Prometheus text exposition) is served by default;
//! `--no-metrics` turns the endpoint off, `--metrics` forces it back on.
//! Setting `CORNET_TRACE` to anything but `0`/empty installs the stderr
//! trace sink: every learner stage and HTTP request span is emitted as a
//! `trace span=… request_id=… micros=…` line.
//!
//! `pack` folds every loose per-rule file in the store into an
//! append-only segment file and exits (also reachable at runtime via
//! `POST /admin/pack`). `smoke` runs the scripted learn→score→correct→
//! re-learn→restart session against a throwaway store and exits non-zero
//! on any failure (the CI `serve-smoke` job).

use cornet_serve::http::{NullLog, StderrLog};
use cornet_serve::service::{CornetService, ServiceConfig};
use cornet_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        match cornet_serve::smoke::run() {
            Ok(log) => {
                for line in log {
                    println!("{line}");
                }
                println!("smoke: PASS");
            }
            Err(e) => {
                eprintln!("smoke: FAIL\n{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("pack") {
        let mut store_dir = PathBuf::from("cornet-store");
        let mut iter = args.iter().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--store" => {
                    store_dir = PathBuf::from(iter.next().unwrap_or_else(|| {
                        eprintln!("--store requires a value");
                        std::process::exit(2);
                    }))
                }
                other => {
                    eprintln!(
                        "unknown argument `{other}` (usage: cornet-serve pack [--store DIR])"
                    );
                    std::process::exit(2);
                }
            }
        }
        let mut store = match cornet_serve::RuleStore::open(&store_dir, 1) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open rule store {}: {e}", store_dir.display());
                std::process::exit(1);
            }
        };
        match store.pack() {
            Ok(packed) => println!(
                "packed {packed} rules into segments ({} rules across {} segment files)",
                store.segment_rules(),
                store.segment_files()
            ),
            Err(e) => {
                eprintln!("pack failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut addr = "127.0.0.1:7878".to_string();
    let mut store_dir = PathBuf::from("cornet-store");
    let mut capacity = 256usize;
    let mut server_config = ServerConfig::from_env();
    server_config.log = Arc::new(StderrLog);
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_usize = |name: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{name} must be a positive integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--store" => store_dir = PathBuf::from(value("--store")),
            "--capacity" => capacity = parse_usize("--capacity", value("--capacity")),
            "--max-conns" => {
                server_config.max_connections = parse_usize("--max-conns", value("--max-conns"))
            }
            "--keep-alive-secs" => {
                server_config.keep_alive = Duration::from_secs(parse_usize(
                    "--keep-alive-secs",
                    value("--keep-alive-secs"),
                ) as u64)
            }
            "--quiet" => server_config.log = Arc::new(NullLog),
            "--metrics" => server_config.metrics = true,
            "--no-metrics" => server_config.metrics = false,
            "--help" | "-h" => {
                println!(
                    "usage: cornet-serve [--addr HOST:PORT] [--store DIR] [--capacity N] \
                     [--max-conns N] [--keep-alive-secs N] [--quiet] [--metrics|--no-metrics] \
                     | pack [--store DIR] | smoke\n\
                     env: CORNET_TRACE=1 emits trace spans to stderr"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    // CORNET_TRACE: install the stderr trace sink before the first
    // request so every learner-stage span lands in the log stream.
    if std::env::var("CORNET_TRACE").is_ok_and(|v| !v.is_empty() && v != "0") {
        cornet_obs::set_trace_sink(Arc::new(cornet_obs::StderrSink));
    }

    let service = match CornetService::new(&ServiceConfig {
        store_dir: store_dir.clone(),
        cache_capacity: capacity,
        ..ServiceConfig::default()
    }) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot open rule store {}: {e}", store_dir.display());
            std::process::exit(1);
        }
    };
    let max_conns = server_config.max_connections;
    let keep_alive = server_config.keep_alive;
    let metrics_enabled = server_config.metrics;
    let server = match Server::start_with(&addr, service, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "cornet-serve listening on http://{} (rule store: {}, cache: {capacity}, \
         max conns: {max_conns}, keep-alive: {}s)",
        server.addr(),
        store_dir.display(),
        keep_alive.as_secs(),
    );
    eprintln!(
        "endpoints: GET /health{} · POST /learn /score /suggest /batch /session /admin/pack · \
         GET /session/<id> /rules/<id>",
        if metrics_enabled { " /metrics" } else { "" }
    );
    loop {
        std::thread::park();
    }
}
