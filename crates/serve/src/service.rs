//! The in-process service layer: typed requests/responses plus the
//! learn/score/session logic, independent of any transport.
//!
//! The HTTP front-end ([`crate::http`]) is a thin shell over
//! [`CornetService`]; everything here is directly callable (and
//! benchmarked) without a socket.

use crate::store::{rule_id, RuleStore, StoredRule};
use cornet_core::prelude::*;
use cornet_core::rule::Rule;
use cornet_serde::{field_t, optional_field_t, DecodeError, FromJson, Json, ToJson};
use cornet_table::CellValue;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Rule-store directory.
    pub store_dir: PathBuf,
    /// In-memory LRU capacity of the rule store.
    pub cache_capacity: usize,
    /// Cap on live sessions; the oldest session is evicted beyond it
    /// (sessions are per-process and ephemeral — learned rules persist
    /// in the store regardless).
    pub max_sessions: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_dir: PathBuf::from("cornet-store"),
            cache_capacity: 256,
            max_sessions: 256,
        }
    }
}

/// A service failure, mapped onto an HTTP status by the front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Malformed request (missing fields, out-of-range indices, …) → 400.
    BadRequest(String),
    /// Unknown rule or session id → 404.
    NotFound(String),
    /// Well-formed request the learner cannot satisfy → 422.
    Unlearnable(String),
    /// Store I/O failure → 500.
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Unlearnable(_) => 422,
            ServeError::Internal(_) => 500,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            ServeError::BadRequest(m)
            | ServeError::NotFound(m)
            | ServeError::Unlearnable(m)
            | ServeError::Internal(m) => m,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message(), self.status())
    }
}

impl std::error::Error for ServeError {}

/// `learn`: a column plus user-formatted example indices (and optional
/// negative corrections).
#[derive(Debug, Clone, PartialEq)]
pub struct LearnRequest {
    /// Raw cell texts; each is parsed the way a spreadsheet parses entry.
    pub cells: Vec<String>,
    /// Indices the user formatted (positives).
    pub examples: Vec<usize>,
    /// Indices the user explicitly unformatted (negative corrections).
    pub negatives: Vec<usize>,
}

impl FromJson for LearnRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(LearnRequest {
            cells: field_t(json, "cells")?,
            examples: field_t(json, "examples")?,
            negatives: optional_field_t(json, "negatives")?.unwrap_or_default(),
        })
    }
}

impl ToJson for LearnRequest {
    fn to_json(&self) -> Json {
        Json::object([
            ("cells", self.cells.to_json()),
            ("examples", self.examples.to_json()),
            ("negatives", self.negatives.to_json()),
        ])
    }
}

/// `learn` result: the chosen rule and where it now lives.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnResponse {
    /// Rule-store id (content fingerprint of the request).
    pub rule_id: String,
    /// The learned rule (structured form).
    pub rule: Rule,
    /// Human-readable rule text (`AND(TextStartsWith("RW"),…)`).
    pub rule_text: String,
    /// Excel conditional-formatting formula equivalent.
    pub formula: String,
    /// Ranker score of the chosen candidate.
    pub score: f64,
    /// Indices the rule formats on the submitted column.
    pub matches: Vec<usize>,
    /// True when the rule came from the store without re-learning.
    pub cached: bool,
    /// False when no candidate excluded every negative and the best
    /// candidate was returned anyway.
    pub consistent: bool,
}

impl ToJson for LearnResponse {
    fn to_json(&self) -> Json {
        Json::object([
            ("rule_id", Json::str(self.rule_id.clone())),
            ("rule", self.rule.to_json()),
            ("rule_text", Json::str(self.rule_text.clone())),
            ("formula", Json::str(self.formula.clone())),
            ("score", Json::Number(self.score)),
            ("matches", self.matches.to_json()),
            ("cached", Json::Bool(self.cached)),
            ("consistent", Json::Bool(self.consistent)),
        ])
    }
}

impl FromJson for LearnResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(LearnResponse {
            rule_id: field_t(json, "rule_id")?,
            rule: field_t(json, "rule")?,
            rule_text: field_t(json, "rule_text")?,
            formula: field_t(json, "formula")?,
            score: field_t(json, "score")?,
            matches: field_t(json, "matches")?,
            cached: field_t(json, "cached")?,
            consistent: field_t(json, "consistent")?,
        })
    }
}

/// `score`: fresh rows against a stored rule (by id) or an inline rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Stored rule to score with. Exactly one of `rule_id`/`rule`.
    pub rule_id: Option<String>,
    /// Inline rule to score with.
    pub rule: Option<Rule>,
    /// Raw cell texts to label.
    pub cells: Vec<String>,
}

impl FromJson for ScoreRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(ScoreRequest {
            rule_id: optional_field_t(json, "rule_id")?,
            rule: optional_field_t(json, "rule")?,
            cells: field_t(json, "cells")?,
        })
    }
}

impl ToJson for ScoreRequest {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = &self.rule_id {
            pairs.push(("rule_id", Json::str(id.clone())));
        }
        if let Some(rule) = &self.rule {
            pairs.push(("rule", rule.to_json()));
        }
        pairs.push(("cells", self.cells.to_json()));
        Json::object(pairs)
    }
}

/// `score` result: the formatting labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    /// Id of the rule used, when it came from the store.
    pub rule_id: Option<String>,
    /// Indices of cells the rule formats.
    pub matches: Vec<usize>,
    /// Number of labelled cells (equals the request's cell count).
    pub n_cells: usize,
}

impl ToJson for ScoreResponse {
    fn to_json(&self) -> Json {
        Json::object([
            ("rule_id", self.rule_id.to_json()),
            ("matches", self.matches.to_json()),
            ("n_cells", self.n_cells.to_json()),
        ])
    }
}

impl FromJson for ScoreResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(ScoreResponse {
            rule_id: field_t(json, "rule_id")?,
            matches: field_t(json, "matches")?,
            n_cells: field_t(json, "n_cells")?,
        })
    }
}

/// One item of a `batch` request.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// A learn request (`"op":"learn"`).
    Learn(LearnRequest),
    /// A score request (`"op":"score"`).
    Score(ScoreRequest),
}

impl FromJson for BatchItem {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let op: String = field_t(json, "op")?;
        match op.as_str() {
            "learn" => Ok(BatchItem::Learn(LearnRequest::from_json(json)?)),
            "score" => Ok(BatchItem::Score(ScoreRequest::from_json(json)?)),
            other => Err(DecodeError::new(format!("unknown batch op `{other}`"))),
        }
    }
}

impl ToJson for BatchItem {
    fn to_json(&self) -> Json {
        let (op, mut inner) = match self {
            BatchItem::Learn(r) => ("learn", r.to_json()),
            BatchItem::Score(r) => ("score", r.to_json()),
        };
        if let Json::Object(pairs) = &mut inner {
            pairs.insert(0, ("op".to_string(), Json::str(op)));
        }
        inner
    }
}

/// An interactive correct-and-relearn session (the demo paper's loop).
#[derive(Debug, Clone)]
struct Session {
    id: String,
    cells: Vec<String>,
    positives: BTreeSet<usize>,
    negatives: BTreeSet<usize>,
    revision: u64,
    last: Option<LearnResponse>,
}

/// A session snapshot returned by the session endpoints.
#[derive(Debug, Clone)]
pub struct SessionResponse {
    /// Session identifier (`s<counter>`; sessions are per-process).
    pub session_id: String,
    /// Bumped on every correction.
    pub revision: u64,
    /// Column length.
    pub n_cells: usize,
    /// Current positive examples.
    pub positives: Vec<usize>,
    /// Current negative corrections.
    pub negatives: Vec<usize>,
    /// Latest learn result (`None` until the first example arrives).
    pub result: Option<LearnResponse>,
}

impl ToJson for SessionResponse {
    fn to_json(&self) -> Json {
        Json::object([
            ("session_id", Json::str(self.session_id.clone())),
            ("revision", self.revision.to_json()),
            ("n_cells", self.n_cells.to_json()),
            ("positives", self.positives.to_json()),
            ("negatives", self.negatives.to_json()),
            (
                "result",
                self.result
                    .as_ref()
                    .map(ToJson::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

impl FromJson for SessionResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(SessionResponse {
            session_id: field_t(json, "session_id")?,
            revision: field_t(json, "revision")?,
            n_cells: field_t(json, "n_cells")?,
            positives: field_t(json, "positives")?,
            negatives: field_t(json, "negatives")?,
            result: optional_field_t(json, "result")?,
        })
    }
}

/// Per-process session table: the map plus insertion order for the
/// oldest-first eviction that bounds memory.
#[derive(Debug, Default)]
struct SessionTable {
    /// Sessions are individually locked so a slow re-learn on one
    /// session never blocks operations on the others; the table mutex is
    /// only ever held for map lookups and insertions.
    map: HashMap<String, Arc<Mutex<Session>>>,
    order: VecDeque<String>,
}

impl SessionTable {
    fn insert(&mut self, id: String, session: Session, cap: usize) {
        if !self.map.contains_key(&id) {
            self.order.push_back(id.clone());
        }
        self.map.insert(id, Arc::new(Mutex::new(session)));
        while self.map.len() > cap.max(1) {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            } else {
                break;
            }
        }
    }

    fn get(&self, id: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        self.map
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::NotFound(format!("no session `{id}`")))
    }
}

/// The service: a learner in front of the persistent rule store, plus
/// per-process interactive sessions.
pub struct CornetService {
    store: Mutex<RuleStore>,
    sessions: Mutex<SessionTable>,
    max_sessions: usize,
    next_session: AtomicU64,
    learns: AtomicU64,
}

impl CornetService {
    /// Opens the rule store and builds the service.
    pub fn new(config: &ServiceConfig) -> io::Result<CornetService> {
        Ok(CornetService {
            store: Mutex::new(RuleStore::open(&config.store_dir, config.cache_capacity)?),
            sessions: Mutex::new(SessionTable::default()),
            max_sessions: config.max_sessions,
            next_session: AtomicU64::new(1),
            learns: AtomicU64::new(0),
        })
    }

    /// Number of actual learner invocations since startup (cache hits do
    /// not count — the restart test relies on exactly this distinction).
    pub fn learns_performed(&self) -> u64 {
        self.learns.load(Ordering::Relaxed)
    }

    fn validate_indices(len: usize, indices: &[usize], what: &str) -> Result<(), ServeError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(ServeError::BadRequest(format!(
                "{what} index {bad} out of range for {len} cells"
            )));
        }
        Ok(())
    }

    /// Learns a rule (or fetches the stored rule for an identical
    /// request). This is the paper's `learn`: examples in, rule out.
    pub fn learn(&self, req: &LearnRequest) -> Result<LearnResponse, ServeError> {
        if req.cells.is_empty() {
            return Err(ServeError::BadRequest("empty column".into()));
        }
        if req.examples.is_empty() {
            return Err(ServeError::BadRequest("no example indices".into()));
        }
        Self::validate_indices(req.cells.len(), &req.examples, "example")?;
        Self::validate_indices(req.cells.len(), &req.negatives, "negative")?;
        if let Some(&overlap) = req.examples.iter().find(|i| req.negatives.contains(i)) {
            return Err(ServeError::BadRequest(format!(
                "index {overlap} is both an example and a negative"
            )));
        }

        let id = rule_id(&req.cells, &req.examples, &req.negatives);
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        if let Some(stored) = self.store.lock().unwrap().get(&id) {
            return Ok(Self::response_from_stored(&stored, &cells, true));
        }

        let cornet = Cornet::with_default_ranker();
        let outcome = cornet
            .learn(&cells, &req.examples)
            .map_err(|e| ServeError::Unlearnable(e.to_string()))?;
        self.learns.fetch_add(1, Ordering::Relaxed);

        // Correct-and-relearn support: prefer the best-ranked candidate
        // that excludes every negative correction; fall back to the best
        // candidate (flagged inconsistent) when none does.
        let chosen = outcome
            .candidates
            .iter()
            .find(|c| req.negatives.iter().all(|&i| !c.rule.eval(&cells[i])));
        let (scored, consistent) = match chosen {
            Some(c) => (c, true),
            None => (&outcome.candidates[0], req.negatives.is_empty()),
        };

        let stored = StoredRule {
            id: id.clone(),
            rule: scored.rule.clone(),
            score: scored.score,
            examples: req.examples.clone(),
            negatives: req.negatives.clone(),
            column_len: req.cells.len(),
            consistent,
        };
        self.store
            .lock()
            .unwrap()
            .put(stored.clone())
            .map_err(|e| ServeError::Internal(format!("rule store write failed: {e}")))?;
        Ok(Self::response_from_stored(&stored, &cells, false))
    }

    fn response_from_stored(
        stored: &StoredRule,
        cells: &[CellValue],
        cached: bool,
    ) -> LearnResponse {
        let matches = stored.rule.execute(cells).iter_ones().collect();
        LearnResponse {
            rule_id: stored.id.clone(),
            rule: stored.rule.clone(),
            rule_text: stored.rule.to_string(),
            formula: stored.rule.to_formula().to_string(),
            score: stored.score,
            matches,
            cached,
            consistent: stored.consistent,
        }
    }

    /// Scores fresh rows with a stored or inline rule.
    pub fn score(&self, req: &ScoreRequest) -> Result<ScoreResponse, ServeError> {
        let (rule, rule_id) = match (&req.rule, &req.rule_id) {
            (Some(rule), None) => (rule.clone(), None),
            (None, Some(id)) => {
                let stored = self.store.lock().unwrap().get(id).ok_or_else(|| {
                    ServeError::NotFound(format!("no stored rule with id `{id}`"))
                })?;
                (stored.rule, Some(id.clone()))
            }
            _ => {
                return Err(ServeError::BadRequest(
                    "provide exactly one of `rule_id` and `rule`".into(),
                ))
            }
        };
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        let matches = rule.execute(&cells).iter_ones().collect();
        Ok(ScoreResponse {
            rule_id,
            matches,
            n_cells: cells.len(),
        })
    }

    /// Runs a batch of learn/score items, fanned onto `cornet-pool`.
    /// Each item succeeds or fails independently; the response array is
    /// in request order.
    pub fn batch(&self, items: &[BatchItem]) -> Vec<Result<Json, ServeError>> {
        cornet_pool::par_map(items.len(), |i| match &items[i] {
            BatchItem::Learn(req) => self.learn(req).map(|r| r.to_json()),
            BatchItem::Score(req) => self.score(req).map(|r| r.to_json()),
        })
    }

    /// Looks a stored rule up by id.
    pub fn rule(&self, id: &str) -> Result<StoredRule, ServeError> {
        self.store
            .lock()
            .unwrap()
            .get(id)
            .ok_or_else(|| ServeError::NotFound(format!("no stored rule with id `{id}`")))
    }

    /// Opens a session over a column, optionally with initial examples.
    pub fn session_create(
        &self,
        cells: Vec<String>,
        examples: Vec<usize>,
    ) -> Result<SessionResponse, ServeError> {
        if cells.is_empty() {
            return Err(ServeError::BadRequest("empty column".into()));
        }
        Self::validate_indices(cells.len(), &examples, "example")?;
        let id = format!("s{}", self.next_session.fetch_add(1, Ordering::Relaxed));
        let mut session = Session {
            id: id.clone(),
            cells,
            positives: examples.into_iter().collect(),
            negatives: BTreeSet::new(),
            revision: 0,
            last: None,
        };
        self.relearn(&mut session)?;
        let response = Self::session_snapshot(&session);
        self.sessions
            .lock()
            .unwrap()
            .insert(id, session, self.max_sessions);
        Ok(response)
    }

    /// The current state of a session.
    pub fn session_get(&self, id: &str) -> Result<SessionResponse, ServeError> {
        let session = self.sessions.lock().unwrap().get(id)?;
        let guard = session.lock().unwrap();
        Ok(Self::session_snapshot(&guard))
    }

    /// Applies corrections and re-learns: `format` marks cells the rule
    /// must cover (moves them out of the negatives), `unformat` marks
    /// cells it must not (moves them out of the positives).
    ///
    /// The *per-session* lock is held across the re-learn so concurrent
    /// corrections to the same session serialize instead of losing one
    /// writer's updates, while other sessions stay responsive; a failed
    /// re-learn leaves the session unchanged. Lock order everywhere is
    /// table → session → store.
    pub fn session_correct(
        &self,
        id: &str,
        format: &[usize],
        unformat: &[usize],
    ) -> Result<SessionResponse, ServeError> {
        let session = self.sessions.lock().unwrap().get(id)?;
        let mut guard = session.lock().unwrap();
        Self::validate_indices(guard.cells.len(), format, "format")?;
        Self::validate_indices(guard.cells.len(), unformat, "unformat")?;
        let mut updated = guard.clone();
        for &i in format {
            updated.negatives.remove(&i);
            updated.positives.insert(i);
        }
        for &i in unformat {
            updated.positives.remove(&i);
            updated.negatives.insert(i);
        }
        updated.revision += 1;
        self.relearn(&mut updated)?;
        let response = Self::session_snapshot(&updated);
        *guard = updated;
        Ok(response)
    }

    fn relearn(&self, session: &mut Session) -> Result<(), ServeError> {
        if session.positives.is_empty() {
            session.last = None;
            return Ok(());
        }
        let req = LearnRequest {
            cells: session.cells.clone(),
            examples: session.positives.iter().copied().collect(),
            negatives: session.negatives.iter().copied().collect(),
        };
        session.last = Some(self.learn(&req)?);
        Ok(())
    }

    fn session_snapshot(session: &Session) -> SessionResponse {
        SessionResponse {
            session_id: session.id.clone(),
            revision: session.revision,
            n_cells: session.cells.len(),
            positives: session.positives.iter().copied().collect(),
            negatives: session.negatives.iter().copied().collect(),
            result: session.last.clone(),
        }
    }

    /// Service health/statistics document.
    ///
    /// The store mutex is released before anything else is touched: the
    /// on-disk rule count is scanned without the lock (so health probes
    /// never stall `learn`/`score` behind a directory walk), and the
    /// session table is locked only afterwards (never nested inside the
    /// store lock — `session_correct` acquires them in the opposite
    /// order, which would deadlock).
    pub fn health(&self) -> Json {
        let (hits, misses, cached, store_dir) = {
            let store = self.store.lock().unwrap();
            let (hits, misses) = store.counters();
            (hits, misses, store.cached(), store.dir().to_path_buf())
        };
        let persisted = crate::store::persisted_in(&store_dir);
        let sessions = self.sessions.lock().unwrap().map.len();
        Json::object([
            ("status", Json::str("ok")),
            ("rules_cached", cached.to_json()),
            ("rules_persisted", persisted.to_json()),
            ("store_hits", hits.to_json()),
            ("store_misses", misses.to_json()),
            ("sessions", sessions.to_json()),
            ("learns_performed", self.learns_performed().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_service(tag: &str) -> (CornetService, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cornet-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        (service, dir)
    }

    fn rw_column() -> Vec<String> {
        ["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn learn_then_cached_learn_then_score() {
        let (service, dir) = temp_service("learn");
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
        };
        let first = service.learn(&req).unwrap();
        assert_eq!(first.matches, vec![0, 2, 5]);
        assert!(!first.cached);
        assert_eq!(service.learns_performed(), 1);

        let second = service.learn(&req).unwrap();
        assert!(second.cached, "identical request must hit the store");
        assert_eq!(second.rule_text, first.rule_text);
        assert_eq!(service.learns_performed(), 1, "no re-learning");

        let score = service
            .score(&ScoreRequest {
                rule_id: Some(first.rule_id.clone()),
                rule: None,
                cells: vec!["RW-555".into(), "XX-1".into(), "RW-9-T".into()],
            })
            .unwrap();
        // Which negation the ranker prefers varies; what must hold is that
        // a fresh RW id is formatted and a non-RW id is not.
        assert!(score.matches.contains(&0));
        assert!(!score.matches.contains(&1));
        assert_eq!(score.n_cells, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn learn_errors_map_to_statuses() {
        let (service, dir) = temp_service("errors");
        let no_examples = LearnRequest {
            cells: rw_column(),
            examples: vec![],
            negatives: vec![],
        };
        assert_eq!(service.learn(&no_examples).unwrap_err().status(), 400);

        let out_of_range = LearnRequest {
            cells: rw_column(),
            examples: vec![99],
            negatives: vec![],
        };
        assert_eq!(service.learn(&out_of_range).unwrap_err().status(), 400);

        let unlearnable = LearnRequest {
            cells: vec!["x".into(), "x".into(), "x".into()],
            examples: vec![0],
            negatives: vec![],
        };
        assert_eq!(service.learn(&unlearnable).unwrap_err().status(), 422);

        let missing_rule = ScoreRequest {
            rule_id: Some("r0123456789abcdef".into()),
            rule: None,
            cells: vec!["a".into()],
        };
        assert_eq!(service.score(&missing_rule).unwrap_err().status(), 404);

        let ambiguous = ScoreRequest {
            rule_id: None,
            rule: None,
            cells: vec!["a".into()],
        };
        assert_eq!(service.score(&ambiguous).unwrap_err().status(), 400);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_scores_from_the_persisted_store_without_relearning() {
        let (service, dir) = temp_service("restart");
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
        };
        let learned = service.learn(&req).unwrap();
        drop(service);

        // A fresh process over the same store directory.
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let score = restarted
            .score(&ScoreRequest {
                rule_id: Some(learned.rule_id.clone()),
                rule: None,
                cells: rw_column(),
            })
            .unwrap();
        assert_eq!(score.matches, vec![0, 2, 5]);
        let again = restarted.learn(&req).unwrap();
        assert!(again.cached);
        assert_eq!(restarted.learns_performed(), 0, "restart never re-learns");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_correct_and_relearn_loop() {
        let (service, dir) = temp_service("session");
        // The user starts with one example; RW-131-T is wrongly matched
        // by the initial "starts with RW" hypothesis.
        let created = service.session_create(rw_column(), vec![0]).unwrap();
        let first = created.result.clone().expect("rule learned");
        assert!(first.matches.contains(&0));

        // The user unformats RW-131-T (index 3) and formats RW-312 (5).
        let corrected = service
            .session_correct(&created.session_id, &[5], &[3])
            .unwrap();
        assert_eq!(corrected.revision, 1);
        let result = corrected.result.expect("re-learned");
        assert!(
            !result.matches.contains(&3),
            "corrected negative must not be matched: {result:?}"
        );
        assert!(result.matches.contains(&5));
        assert!(result.consistent);

        let fetched = service.session_get(&created.session_id).unwrap();
        assert_eq!(fetched.revision, 1);
        assert_eq!(fetched.positives, vec![0, 5]);
        assert_eq!(fetched.negatives, vec![3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inconsistent_learns_stay_inconsistent_on_cache_hits() {
        let (service, dir) = temp_service("inconsistent");
        // Cells 0 and 1 hold the same value: no rule can cover example 0
        // while excluding negative 1, so the best candidate is returned
        // flagged inconsistent.
        let req = LearnRequest {
            cells: vec!["x".into(), "x".into(), "y".into(), "z".into()],
            examples: vec![0],
            negatives: vec![1],
        };
        let first = service.learn(&req).unwrap();
        assert!(!first.consistent, "{first:?}");
        // A store hit must not launder the flag back to consistent.
        let second = service.learn(&req).unwrap();
        assert!(second.cached);
        assert!(!second.consistent, "cache hit reported consistent=true");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_table_evicts_oldest_beyond_the_cap() {
        let dir =
            std::env::temp_dir().join(format!("cornet-service-test-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            max_sessions: 2,
        })
        .unwrap();
        let ids: Vec<String> = (0..3)
            .map(|_| {
                service
                    .session_create(rw_column(), vec![0])
                    .unwrap()
                    .session_id
            })
            .collect();
        assert!(
            matches!(service.session_get(&ids[0]), Err(ServeError::NotFound(_))),
            "oldest session must be evicted"
        );
        assert!(service.session_get(&ids[1]).is_ok());
        assert!(service.session_get(&ids[2]).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_fans_out_and_isolates_failures() {
        let (service, dir) = temp_service("batch");
        let learn = BatchItem::Learn(LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
        });
        let bad = BatchItem::Score(ScoreRequest {
            rule_id: Some("r00000000deadbeef".into()),
            rule: None,
            cells: vec!["a".into()],
        });
        let results = service.batch(&[learn.clone(), bad, learn]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().status(), 404);
        assert!(results[2].is_ok(), "failure must not poison the batch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_json_round_trips() {
        let learn = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2],
            negatives: vec![3],
        };
        let back = LearnRequest::from_json(&learn.to_json()).unwrap();
        assert_eq!(back, learn);
        // `negatives` is optional on the wire.
        let minimal = cornet_serde::parse(r#"{"cells":["a","b"],"examples":[0]}"#).unwrap();
        let decoded = LearnRequest::from_json(&minimal).unwrap();
        assert!(decoded.negatives.is_empty());

        let score = ScoreRequest {
            rule_id: Some("r0f".into()),
            rule: None,
            cells: vec!["a".into()],
        };
        assert_eq!(ScoreRequest::from_json(&score.to_json()).unwrap(), score);
        let item = BatchItem::Learn(learn);
        assert_eq!(BatchItem::from_json(&item.to_json()).unwrap(), item);
    }
}
