//! The in-process service layer: typed requests/responses plus the
//! learn/score/session logic, independent of any transport.
//!
//! The HTTP front-end ([`crate::http`]) is a thin shell over
//! [`CornetService`]; everything here is directly callable (and
//! benchmarked) without a socket.
//!
//! `learn` runs the *constrained* learner ([`Cornet::learn_spec`]):
//! negative corrections are pushed into clustering and search, so a
//! response with `consistent:true` carries a rule that provably excludes
//! every negative, and `consistent:false` is an abstention — the search
//! proved no rule in the language satisfies the corrections, and the best
//! unconstrained rule is returned (and persisted) as a fallback.
//!
//! Sessions persist through `cornet-serde` under
//! `<store_dir>/sessions/<id>.json`, so the demo paper's
//! correct-and-relearn loop survives a server restart.

use crate::store::{rule_id_for, rule_set_id_for, ClassFingerprint, RuleStore, StoredRule};
use crate::suggest::{
    embed_column, suggest_metrics, SuggestIndex, SuggestRequest, SuggestResponse, Suggestion,
};
use cornet_core::prelude::*;
use cornet_core::rule::Rule;
use cornet_obs::Registry;
use cornet_serde::{
    decode, encode, field_t, optional_field_t, DecodeError, FromJson, Json, ToJson,
};
use cornet_table::{CellValue, Format, TargetScope};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Rule-store directory.
    pub store_dir: PathBuf,
    /// In-memory LRU capacity of the rule store.
    pub cache_capacity: usize,
    /// Cap on live sessions; the oldest session is evicted beyond it
    /// (sessions are per-process and ephemeral — learned rules persist
    /// in the store regardless).
    pub max_sessions: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_dir: PathBuf::from("cornet-store"),
            cache_capacity: 256,
            max_sessions: 256,
        }
    }
}

/// A service failure, mapped onto an HTTP status by the front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Malformed request (missing fields, out-of-range indices, …) → 400.
    BadRequest(String),
    /// Unknown rule or session id → 404.
    NotFound(String),
    /// Well-formed request the learner cannot satisfy → 422.
    Unlearnable(String),
    /// Store I/O failure → 500.
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Unlearnable(_) => 422,
            ServeError::Internal(_) => 500,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            ServeError::BadRequest(m)
            | ServeError::NotFound(m)
            | ServeError::Unlearnable(m)
            | ServeError::Internal(m) => m,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message(), self.status())
    }
}

impl std::error::Error for ServeError {}

/// One format class of a multi-class learn request: the style the user
/// painted, where it paints, and the cells they painted it on. Also the
/// per-class echo inside session responses.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRequest {
    /// The style payload (optional on the wire; default = no styling).
    pub style: Format,
    /// Cell- or row-scoped painting (optional on the wire; default cell).
    pub scope: TargetScope,
    /// Indices the user gave this style.
    pub examples: Vec<usize>,
}

impl FromJson for ClassRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(ClassRequest {
            style: optional_field_t(json, "style")?.unwrap_or_else(Format::default_format),
            scope: optional_field_t(json, "scope")?.unwrap_or_default(),
            examples: field_t(json, "examples")?,
        })
    }
}

impl ToJson for ClassRequest {
    fn to_json(&self) -> Json {
        Json::object([
            ("style", self.style.to_json()),
            ("scope", self.scope.to_json()),
            ("examples", self.examples.to_json()),
        ])
    }
}

/// `learn`: a column plus user-formatted example indices (and optional
/// negative corrections). With `classes` non-empty this is a multi-class
/// learn instead: one styled rule per class, `examples` must be absent.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnRequest {
    /// Raw cell texts; each is parsed the way a spreadsheet parses entry.
    pub cells: Vec<String>,
    /// Indices the user formatted (positives). Single-rule learns only.
    pub examples: Vec<usize>,
    /// Indices the user explicitly unformatted (negative corrections).
    /// On a multi-class learn these are hard negatives for every class.
    pub negatives: Vec<usize>,
    /// The format classes of a multi-class learn (optional on the wire;
    /// empty = single-rule learn, preserving the historical request
    /// shape byte for byte).
    pub classes: Vec<ClassRequest>,
    /// Tenancy scope. A tenanted learn is fingerprinted, stored and
    /// indexed under this tenant's namespace, invisible to `/suggest`
    /// queries from anyone else; `None` (the historical shape) is the
    /// shared global namespace.
    pub tenant: Option<String>,
}

impl FromJson for LearnRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(LearnRequest {
            cells: field_t(json, "cells")?,
            examples: optional_field_t(json, "examples")?.unwrap_or_default(),
            negatives: optional_field_t(json, "negatives")?.unwrap_or_default(),
            classes: optional_field_t(json, "classes")?.unwrap_or_default(),
            tenant: optional_field_t(json, "tenant")?,
        })
    }
}

impl ToJson for LearnRequest {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("cells".to_string(), self.cells.to_json()),
            ("examples".to_string(), self.examples.to_json()),
            ("negatives".to_string(), self.negatives.to_json()),
        ];
        if !self.classes.is_empty() {
            pairs.push(("classes".to_string(), self.classes.to_json()));
        }
        if let Some(t) = &self.tenant {
            pairs.push(("tenant".to_string(), Json::str(t.clone())));
        }
        Json::Object(pairs)
    }
}

/// `learn` result: the chosen rule and where it now lives. For a
/// multi-class learn the legacy fields describe the priority-0 rule and
/// `rule_set`/`assignments` carry the full set; both are omitted from the
/// wire on single-rule learns so historical responses stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnResponse {
    /// Rule-store id (content fingerprint of the request).
    pub rule_id: String,
    /// The learned rule (structured form). Priority-0 rule of the set on
    /// multi-class learns.
    pub rule: Rule,
    /// Human-readable rule text (`AND(TextStartsWith("RW"),…)`).
    pub rule_text: String,
    /// Excel conditional-formatting formula equivalent.
    pub formula: String,
    /// Ranker score of the chosen candidate.
    pub score: f64,
    /// Indices the rule formats on the submitted column. For a rule set,
    /// the post-conflict-resolution union across all rules.
    pub matches: Vec<usize>,
    /// True when the rule came from the store without re-learning.
    pub cached: bool,
    /// False when no candidate excluded every negative and the best
    /// candidate was returned anyway. For a rule set: every rule proved
    /// consistent with its class.
    pub consistent: bool,
    /// The full styled rule set of a multi-class learn.
    pub rule_set: Option<RuleSet>,
    /// Per-cell winning rule index after conflict resolution (`null` where
    /// no rule claims the cell). Present exactly when `rule_set` is.
    pub assignments: Option<Vec<Option<usize>>>,
}

impl ToJson for LearnResponse {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("rule_id".to_string(), Json::str(self.rule_id.clone())),
            ("rule".to_string(), self.rule.to_json()),
            ("rule_text".to_string(), Json::str(self.rule_text.clone())),
            ("formula".to_string(), Json::str(self.formula.clone())),
            ("score".to_string(), Json::Number(self.score)),
            ("matches".to_string(), self.matches.to_json()),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("consistent".to_string(), Json::Bool(self.consistent)),
        ];
        if let Some(set) = &self.rule_set {
            pairs.push(("rule_set".to_string(), set.to_json()));
        }
        if let Some(assignments) = &self.assignments {
            pairs.push(("assignments".to_string(), assignments.to_json()));
        }
        Json::Object(pairs)
    }
}

impl FromJson for LearnResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(LearnResponse {
            rule_id: field_t(json, "rule_id")?,
            rule: field_t(json, "rule")?,
            rule_text: field_t(json, "rule_text")?,
            formula: field_t(json, "formula")?,
            score: field_t(json, "score")?,
            matches: field_t(json, "matches")?,
            cached: field_t(json, "cached")?,
            consistent: field_t(json, "consistent")?,
            rule_set: optional_field_t(json, "rule_set")?,
            assignments: optional_field_t(json, "assignments")?,
        })
    }
}

/// `score`: fresh rows against a stored rule (by id), an inline rule, or
/// an inline rule set.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Stored rule to score with. Exactly one of `rule_id`/`rule`/`rule_set`.
    pub rule_id: Option<String>,
    /// Inline rule to score with.
    pub rule: Option<Rule>,
    /// Inline rule set to score with (conflict-resolved server-side).
    pub rule_set: Option<RuleSet>,
    /// Raw cell texts to label.
    pub cells: Vec<String>,
}

impl FromJson for ScoreRequest {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(ScoreRequest {
            rule_id: optional_field_t(json, "rule_id")?,
            rule: optional_field_t(json, "rule")?,
            rule_set: optional_field_t(json, "rule_set")?,
            cells: field_t(json, "cells")?,
        })
    }
}

impl ToJson for ScoreRequest {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = &self.rule_id {
            pairs.push(("rule_id", Json::str(id.clone())));
        }
        if let Some(rule) = &self.rule {
            pairs.push(("rule", rule.to_json()));
        }
        if let Some(set) = &self.rule_set {
            pairs.push(("rule_set", set.to_json()));
        }
        pairs.push(("cells", self.cells.to_json()));
        Json::object(pairs)
    }
}

/// `score` result: the formatting labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    /// Id of the rule used, when it came from the store.
    pub rule_id: Option<String>,
    /// Indices of cells the rule formats. For a rule set, the
    /// post-conflict-resolution union.
    pub matches: Vec<usize>,
    /// Number of labelled cells (equals the request's cell count).
    pub n_cells: usize,
    /// Per-cell winning rule index when scoring a rule set (omitted from
    /// the wire for single-rule scores).
    pub assignments: Option<Vec<Option<usize>>>,
}

impl ToJson for ScoreResponse {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("rule_id".to_string(), self.rule_id.to_json()),
            ("matches".to_string(), self.matches.to_json()),
            ("n_cells".to_string(), self.n_cells.to_json()),
        ];
        if let Some(assignments) = &self.assignments {
            pairs.push(("assignments".to_string(), assignments.to_json()));
        }
        Json::Object(pairs)
    }
}

impl FromJson for ScoreResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(ScoreResponse {
            rule_id: field_t(json, "rule_id")?,
            matches: field_t(json, "matches")?,
            n_cells: field_t(json, "n_cells")?,
            assignments: optional_field_t(json, "assignments")?,
        })
    }
}

/// One item of a `batch` request.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// A learn request (`"op":"learn"`).
    Learn(LearnRequest),
    /// A score request (`"op":"score"`).
    Score(ScoreRequest),
}

impl FromJson for BatchItem {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let op: String = field_t(json, "op")?;
        match op.as_str() {
            "learn" => Ok(BatchItem::Learn(LearnRequest::from_json(json)?)),
            "score" => Ok(BatchItem::Score(ScoreRequest::from_json(json)?)),
            other => Err(DecodeError::new(format!("unknown batch op `{other}`"))),
        }
    }
}

impl ToJson for BatchItem {
    fn to_json(&self) -> Json {
        let (op, mut inner) = match self {
            BatchItem::Learn(r) => ("learn", r.to_json()),
            BatchItem::Score(r) => ("score", r.to_json()),
        };
        if let Json::Object(pairs) = &mut inner {
            pairs.insert(0, ("op".to_string(), Json::str(op)));
        }
        inner
    }
}

/// One format class of a multi-class session: its style payload, scope
/// and the cells currently painted with it.
#[derive(Debug, Clone)]
struct SessionClass {
    style: Format,
    scope: TargetScope,
    positives: BTreeSet<usize>,
}

impl ToJson for SessionClass {
    fn to_json(&self) -> Json {
        Json::object([
            ("style", self.style.to_json()),
            ("scope", self.scope.to_json()),
            (
                "positives",
                self.positives
                    .iter()
                    .copied()
                    .collect::<Vec<usize>>()
                    .to_json(),
            ),
        ])
    }
}

impl FromJson for SessionClass {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let positives: Vec<usize> = field_t(json, "positives")?;
        Ok(SessionClass {
            style: field_t(json, "style")?,
            scope: field_t(json, "scope")?,
            positives: positives.into_iter().collect(),
        })
    }
}

/// An interactive correct-and-relearn session (the demo paper's loop).
/// Persisted through `cornet-serde` (kind [`SESSION_KIND`]) so the loop
/// survives a server restart. A session is either single-rule (`classes`
/// empty, `positives` in use) or multi-class (`classes` non-empty,
/// `positives` always empty); the `classes` key is omitted from the wire
/// when empty so pre-rule-set session files keep decoding.
#[derive(Debug, Clone)]
struct Session {
    id: String,
    cells: Vec<String>,
    positives: BTreeSet<usize>,
    negatives: BTreeSet<usize>,
    classes: Vec<SessionClass>,
    revision: u64,
    last: Option<LearnResponse>,
}

/// Envelope kind for persisted sessions.
pub const SESSION_KIND: &str = "session-state";

impl ToJson for Session {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("cells".to_string(), self.cells.to_json()),
            (
                "positives".to_string(),
                self.positives
                    .iter()
                    .copied()
                    .collect::<Vec<usize>>()
                    .to_json(),
            ),
            (
                "negatives".to_string(),
                self.negatives
                    .iter()
                    .copied()
                    .collect::<Vec<usize>>()
                    .to_json(),
            ),
        ];
        if !self.classes.is_empty() {
            pairs.push(("classes".to_string(), self.classes.to_json()));
        }
        pairs.push(("revision".to_string(), self.revision.to_json()));
        pairs.push((
            "last".to_string(),
            self.last
                .as_ref()
                .map(ToJson::to_json)
                .unwrap_or(Json::Null),
        ));
        Json::Object(pairs)
    }
}

impl FromJson for Session {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let positives: Vec<usize> = field_t(json, "positives")?;
        let negatives: Vec<usize> = field_t(json, "negatives")?;
        Ok(Session {
            id: field_t(json, "id")?,
            cells: field_t(json, "cells")?,
            positives: positives.into_iter().collect(),
            negatives: negatives.into_iter().collect(),
            classes: optional_field_t(json, "classes")?.unwrap_or_default(),
            revision: field_t(json, "revision")?,
            last: optional_field_t(json, "last")?,
        })
    }
}

/// The numeric part of a session id (`s<counter>`); `None` for anything
/// else (a foreign file in the sessions directory must not poison the
/// counter).
fn session_number(id: &str) -> Option<u64> {
    id.strip_prefix('s').and_then(|n| n.parse().ok())
}

/// A session snapshot returned by the session endpoints.
#[derive(Debug, Clone)]
pub struct SessionResponse {
    /// Session identifier (`s<counter>`; sessions are per-process).
    pub session_id: String,
    /// Bumped on every correction.
    pub revision: u64,
    /// Column length.
    pub n_cells: usize,
    /// Current positive examples. In a multi-class session this is the
    /// sorted union across classes (the per-class split is in `classes`).
    pub positives: Vec<usize>,
    /// Current negative corrections.
    pub negatives: Vec<usize>,
    /// The per-class styles, scopes and example sets of a multi-class
    /// session (omitted from the wire for single-rule sessions).
    pub classes: Vec<ClassRequest>,
    /// Latest learn result (`None` until the first example arrives).
    pub result: Option<LearnResponse>,
}

impl ToJson for SessionResponse {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("session_id".to_string(), Json::str(self.session_id.clone())),
            ("revision".to_string(), self.revision.to_json()),
            ("n_cells".to_string(), self.n_cells.to_json()),
            ("positives".to_string(), self.positives.to_json()),
            ("negatives".to_string(), self.negatives.to_json()),
        ];
        if !self.classes.is_empty() {
            pairs.push(("classes".to_string(), self.classes.to_json()));
        }
        pairs.push((
            "result".to_string(),
            self.result
                .as_ref()
                .map(ToJson::to_json)
                .unwrap_or(Json::Null),
        ));
        Json::Object(pairs)
    }
}

impl FromJson for SessionResponse {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        Ok(SessionResponse {
            session_id: field_t(json, "session_id")?,
            revision: field_t(json, "revision")?,
            n_cells: field_t(json, "n_cells")?,
            positives: field_t(json, "positives")?,
            negatives: field_t(json, "negatives")?,
            classes: optional_field_t(json, "classes")?.unwrap_or_default(),
            result: optional_field_t(json, "result")?,
        })
    }
}

/// Per-process session table: the map plus insertion order for the
/// oldest-first eviction that bounds memory.
#[derive(Debug, Default)]
struct SessionTable {
    /// Sessions are individually locked so a slow re-learn on one
    /// session never blocks operations on the others; the table mutex is
    /// only ever held for map lookups and insertions.
    map: HashMap<String, Arc<Mutex<Session>>>,
    order: VecDeque<String>,
}

impl SessionTable {
    /// Inserts a session, returning the ids evicted to stay within `cap`
    /// (the caller owns their persisted files).
    fn insert(&mut self, id: String, session: Session, cap: usize) -> Vec<String> {
        if !self.map.contains_key(&id) {
            self.order.push_back(id.clone());
        }
        self.map.insert(id, Arc::new(Mutex::new(session)));
        let mut evicted = Vec::new();
        while self.map.len() > cap.max(1) {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                evicted.push(old);
            } else {
                break;
            }
        }
        evicted
    }

    fn get(&self, id: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        self.map
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::NotFound(format!("no session `{id}`")))
    }
}

/// The service: a learner in front of the persistent rule store, plus
/// interactive sessions persisted under `<store_dir>/sessions/`.
pub struct CornetService {
    store: Mutex<RuleStore>,
    /// The tenant-namespaced embedding index behind `/suggest`, rebuilt
    /// from the persisted store at open and extended on every learn that
    /// writes a rule. Locked independently of the store; no path holds
    /// both locks at once.
    suggest: Mutex<SuggestIndex>,
    sessions: Mutex<SessionTable>,
    sessions_dir: PathBuf,
    max_sessions: usize,
    next_session: AtomicU64,
    learns: AtomicU64,
    started: Instant,
}

impl CornetService {
    /// Opens the rule store, reloads any persisted sessions, and builds
    /// the service. A corrupt session file is skipped (the session is
    /// lost, the server is not).
    pub fn new(config: &ServiceConfig) -> io::Result<CornetService> {
        let sessions_dir = config.store_dir.join("sessions");
        let store = RuleStore::open(&config.store_dir, config.cache_capacity)?;
        // Rebuild the suggestion index from the persisted records alone:
        // every rule learned since embeddings existed carries its vector,
        // so a restarted server suggests without re-learning anything.
        // Pre-embedding records are skipped — they become suggestible
        // when re-learned, never silently mis-indexed.
        let mut suggest = SuggestIndex::new();
        store.for_each_stored(|rule| {
            if let Some(embedding) = &rule.embedding {
                suggest.insert(rule.tenant.as_deref(), &rule.id, embedding);
            }
        });
        std::fs::create_dir_all(&sessions_dir)?;
        let mut restored: Vec<Session> = std::fs::read_dir(&sessions_dir)?
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let text = std::fs::read_to_string(e.path()).ok()?;
                let session: Session = decode(SESSION_KIND, &text).ok()?;
                // The file stem must match the payload (a renamed file
                // must not alias another session).
                (e.path().file_stem().and_then(|s| s.to_str()) == Some(session.id.as_str())
                    && session_number(&session.id).is_some())
                .then_some(session)
            })
            .collect();
        // Creation order = numeric id order; the eviction queue and the
        // next-session counter both depend on it.
        restored.sort_by_key(|s| session_number(&s.id).unwrap_or(0));
        let next = restored
            .iter()
            .filter_map(|s| session_number(&s.id))
            .max()
            .map_or(1, |m| m + 1);
        let mut table = SessionTable::default();
        let mut stale = Vec::new();
        for session in restored {
            stale.extend(table.insert(session.id.clone(), session, config.max_sessions));
        }
        for id in stale {
            let _ = std::fs::remove_file(sessions_dir.join(format!("{id}.json")));
        }
        Ok(CornetService {
            store: Mutex::new(store),
            suggest: Mutex::new(suggest),
            sessions: Mutex::new(table),
            sessions_dir,
            max_sessions: config.max_sessions,
            next_session: AtomicU64::new(next),
            learns: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// Number of actual learner invocations since startup (cache hits do
    /// not count — the restart test relies on exactly this distinction).
    pub fn learns_performed(&self) -> u64 {
        self.learns.load(Ordering::Relaxed)
    }

    fn validate_indices(len: usize, indices: &[usize], what: &str) -> Result<(), ServeError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(ServeError::BadRequest(format!(
                "{what} index {bad} out of range for {len} cells"
            )));
        }
        Ok(())
    }

    /// Validates a tenant name: 1–64 chars of lowercase ASCII
    /// alphanumerics, `-` and `_`. The tenant feeds the content
    /// fingerprint and names an index namespace, so the grammar is
    /// deliberately tight — no case-folding surprises, no path-like
    /// strings. Returns the borrowed tenant for fingerprinting.
    fn validate_tenant(tenant: Option<&str>) -> Result<Option<&str>, ServeError> {
        let Some(t) = tenant else { return Ok(None) };
        let ok = !t.is_empty()
            && t.len() <= 64
            && t.bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_');
        if !ok {
            return Err(ServeError::BadRequest(format!(
                "invalid tenant `{t}`: expected 1-64 chars of [a-z0-9_-]"
            )));
        }
        Ok(Some(t))
    }

    /// Rejects duplicate indices. Duplicates are always a caller bug: the
    /// fingerprint sorts and dedups its index sets, so `examples:[0,0,2]`
    /// and `examples:[0,2]` would silently share a rule id while looking
    /// like different requests to the caller.
    fn validate_unique(indices: &[usize], what: &str) -> Result<(), ServeError> {
        let mut seen = BTreeSet::new();
        for &i in indices {
            if !seen.insert(i) {
                return Err(ServeError::BadRequest(format!(
                    "duplicate {what} index {i}"
                )));
            }
        }
        Ok(())
    }

    /// Learns a rule (or fetches the stored rule for an identical
    /// request). This is the paper's `learn`: examples in, rule out.
    ///
    /// Negative corrections run through the *constrained* learner
    /// ([`Cornet::learn_spec`]), so a `consistent:true` response carries a
    /// rule whose search already excluded every negative — no post-hoc
    /// candidate filtering. When the constrained search abstains (provably
    /// no rule in the language satisfies the corrections), the best
    /// unconstrained rule is returned with `consistent:false`, and the
    /// abstention is persisted with the rule.
    pub fn learn(&self, req: &LearnRequest) -> Result<LearnResponse, ServeError> {
        if req.cells.is_empty() {
            return Err(ServeError::BadRequest("empty column".into()));
        }
        if !req.classes.is_empty() {
            return self.learn_classes(req);
        }
        if req.examples.is_empty() {
            return Err(ServeError::BadRequest("no example indices".into()));
        }
        Self::validate_indices(req.cells.len(), &req.examples, "example")?;
        Self::validate_indices(req.cells.len(), &req.negatives, "negative")?;
        Self::validate_unique(&req.examples, "example")?;
        Self::validate_unique(&req.negatives, "negative")?;
        if let Some(&overlap) = req.examples.iter().find(|i| req.negatives.contains(i)) {
            return Err(ServeError::BadRequest(format!(
                "index {overlap} is both an example and a negative"
            )));
        }

        let tenant = Self::validate_tenant(req.tenant.as_deref())?;
        let id = rule_id_for(tenant, &req.cells, &req.examples, &req.negatives);
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        if let Some(stored) = self.store.lock().unwrap().get(&id) {
            return Ok(Self::response_from_stored(&stored, &cells, true));
        }

        let cornet = Cornet::with_default_ranker();
        let spec = LearnSpec::new(cells.clone(), req.examples.clone())
            .with_negatives(req.negatives.clone());
        self.learns.fetch_add(1, Ordering::Relaxed);
        let (scored, consistent) = match cornet.learn_spec(&spec) {
            Ok(outcome) => {
                let best = outcome.candidates.into_iter().next().expect("non-empty");
                (best, true)
            }
            Err(LearnError::NoConsistentRule) if !req.negatives.is_empty() => {
                // Abstention: no rule in the language satisfies the
                // corrections. Serve the relaxed learner's best rule so the
                // user still sees *something* — the negatives keep seeding
                // the clustering and penalising ranking, so the rule
                // covering the fewest corrections wins — flagged
                // inconsistent.
                let outcome = cornet
                    .learn_spec_relaxed(&spec)
                    .map_err(|e| ServeError::Unlearnable(e.to_string()))?;
                self.learns.fetch_add(1, Ordering::Relaxed);
                let best = outcome.candidates.into_iter().next().expect("non-empty");
                (best, false)
            }
            Err(e) => return Err(ServeError::Unlearnable(e.to_string())),
        };

        let embedding = embed_column(&req.cells);
        let stored = StoredRule {
            id: id.clone(),
            rule: scored.rule.clone(),
            score: scored.score,
            examples: req.examples.clone(),
            negatives: req.negatives.clone(),
            column_len: req.cells.len(),
            consistent,
            rule_set: None,
            tenant: req.tenant.clone(),
            embedding: Some(embedding.clone()),
        };
        self.store
            .lock()
            .unwrap()
            .put(stored.clone())
            .map_err(|e| ServeError::Internal(format!("rule store write failed: {e}")))?;
        self.suggest.lock().unwrap().insert(tenant, &id, &embedding);
        Ok(Self::response_from_stored(&stored, &cells, false))
    }

    /// Multi-class learn: one styled, prioritized rule per class through
    /// [`Cornet::learn_ruleset`], cached in the store under a fingerprint
    /// that covers every class's style, scope and example set
    /// ([`rule_set_id`]). The legacy response fields describe the
    /// priority-0 rule; `rule_set`/`assignments` carry the whole set.
    fn learn_classes(&self, req: &LearnRequest) -> Result<LearnResponse, ServeError> {
        if !req.examples.is_empty() {
            return Err(ServeError::BadRequest(
                "provide either `examples` or `classes`, not both".into(),
            ));
        }
        Self::validate_indices(req.cells.len(), &req.negatives, "negative")?;
        Self::validate_unique(&req.negatives, "negative")?;
        let mut owner: BTreeMap<usize, usize> = BTreeMap::new();
        for (k, class) in req.classes.iter().enumerate() {
            if class.examples.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "class {k} has no example indices"
                )));
            }
            Self::validate_indices(req.cells.len(), &class.examples, "example")?;
            Self::validate_unique(&class.examples, "example")?;
            for &i in &class.examples {
                if let Some(&other) = owner.get(&i) {
                    return Err(ServeError::BadRequest(format!(
                        "index {i} appears in classes {other} and {k}"
                    )));
                }
                if req.negatives.contains(&i) {
                    return Err(ServeError::BadRequest(format!(
                        "index {i} is both an example and a negative"
                    )));
                }
                owner.insert(i, k);
            }
        }

        let fingerprints: Vec<ClassFingerprint<'_>> = req
            .classes
            .iter()
            .map(|c| ClassFingerprint {
                style: &c.style,
                scope: c.scope,
                examples: &c.examples,
            })
            .collect();
        let tenant = Self::validate_tenant(req.tenant.as_deref())?;
        let id = rule_set_id_for(tenant, &req.cells, &fingerprints, &req.negatives);
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        if let Some(stored) = self.store.lock().unwrap().get(&id) {
            return Ok(Self::response_from_stored(&stored, &cells, true));
        }

        let cornet = Cornet::with_default_ranker();
        let classes: Vec<ClassSpec> = req
            .classes
            .iter()
            .map(|c| ClassSpec::new(c.style.clone(), c.examples.clone()).with_scope(c.scope))
            .collect();
        let spec = RuleSetSpec::new(cells.clone(), classes).with_negatives(req.negatives.clone());
        self.learns.fetch_add(1, Ordering::Relaxed);
        let outcome = cornet
            .learn_ruleset(&spec)
            .map_err(|e| ServeError::Unlearnable(e.to_string()))?;

        let set = outcome.rule_set;
        let lead = set.rules.first().expect("one rule per class");
        let embedding = embed_column(&req.cells);
        let stored = StoredRule {
            id: id.clone(),
            rule: lead.rule.clone(),
            score: lead.score,
            examples: owner.keys().copied().collect(),
            negatives: req.negatives.clone(),
            column_len: req.cells.len(),
            consistent: set.consistent(),
            rule_set: Some(set),
            tenant: req.tenant.clone(),
            embedding: Some(embedding.clone()),
        };
        self.store
            .lock()
            .unwrap()
            .put(stored.clone())
            .map_err(|e| ServeError::Internal(format!("rule store write failed: {e}")))?;
        self.suggest.lock().unwrap().insert(tenant, &id, &embedding);
        Ok(Self::response_from_stored(&stored, &cells, false))
    }

    fn response_from_stored(
        stored: &StoredRule,
        cells: &[CellValue],
        cached: bool,
    ) -> LearnResponse {
        let (matches, rule_set, assignments) = match &stored.rule_set {
            Some(set) => {
                let assignments = set.apply(cells);
                let matches = assignments
                    .iter()
                    .enumerate()
                    .filter_map(|(i, w)| w.map(|_| i))
                    .collect();
                (matches, Some(set.clone()), Some(assignments))
            }
            None => (stored.rule.execute(cells).iter_ones().collect(), None, None),
        };
        LearnResponse {
            rule_id: stored.id.clone(),
            rule: stored.rule.clone(),
            rule_text: stored.rule.to_string(),
            formula: stored.rule.to_formula().to_string(),
            score: stored.score,
            matches,
            cached,
            consistent: stored.consistent,
            rule_set,
            assignments,
        }
    }

    /// Scores fresh rows with a stored rule (single or set), an inline
    /// rule, or an inline rule set. Rule sets are conflict-resolved
    /// through [`RuleSet::apply`], and the response carries the per-cell
    /// winning-rule assignments alongside the resolved match union.
    pub fn score(&self, req: &ScoreRequest) -> Result<ScoreResponse, ServeError> {
        let provided =
            req.rule_id.is_some() as u8 + req.rule.is_some() as u8 + req.rule_set.is_some() as u8;
        if provided != 1 {
            return Err(ServeError::BadRequest(
                "provide exactly one of `rule_id`, `rule` and `rule_set`".into(),
            ));
        }
        let (rule, set, rule_id) = if let Some(rule) = &req.rule {
            (Some(rule.clone()), None, None)
        } else if let Some(set) = &req.rule_set {
            (None, Some(set.clone()), None)
        } else {
            let id = req.rule_id.as_ref().expect("checked above");
            let stored =
                self.store.lock().unwrap().get(id).ok_or_else(|| {
                    ServeError::NotFound(format!("no stored rule with id `{id}`"))
                })?;
            match stored.rule_set {
                Some(set) => (None, Some(set), Some(id.clone())),
                None => (Some(stored.rule), None, Some(id.clone())),
            }
        };
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        let (matches, assignments) = match (&rule, &set) {
            (Some(rule), _) => (rule.execute(&cells).iter_ones().collect(), None),
            (None, Some(set)) => {
                let assignments = set.apply(&cells);
                let matches = assignments
                    .iter()
                    .enumerate()
                    .filter_map(|(i, w)| w.map(|_| i))
                    .collect();
                (matches, Some(assignments))
            }
            (None, None) => unreachable!("exactly one source checked above"),
        };
        Ok(ScoreResponse {
            rule_id,
            matches,
            n_cells: cells.len(),
            assignments,
        })
    }

    /// Runs a batch of learn/score items, fanned onto `cornet-pool`.
    /// Each item succeeds or fails independently; the response array is
    /// in request order.
    pub fn batch(&self, items: &[BatchItem]) -> Vec<Result<Json, ServeError>> {
        cornet_pool::par_map(items.len(), |i| match &items[i] {
            BatchItem::Learn(req) => self.learn(req).map(|r| r.to_json()),
            BatchItem::Score(req) => self.score(req).map(|r| r.to_json()),
        })
    }

    /// Packs every loose per-rule file into an append-only segment (see
    /// [`RuleStore::pack`]), returning the number of rules packed. The
    /// store lock is held for the duration — packing is an explicit
    /// administrative action, not something the serving path triggers.
    pub fn pack_rules(&self) -> Result<usize, ServeError> {
        self.store
            .lock()
            .unwrap()
            .pack()
            .map_err(|e| ServeError::Internal(format!("rule store pack failed: {e}")))
    }

    /// Looks a stored rule up by id.
    pub fn rule(&self, id: &str) -> Result<StoredRule, ServeError> {
        self.store
            .lock()
            .unwrap()
            .get(id)
            .ok_or_else(|| ServeError::NotFound(format!("no stored rule with id `{id}`")))
    }

    /// Zero-example suggestion (ROADMAP item 1, the Tabularis Formatus
    /// flywheel): embeds the bare column, retrieves the nearest stored
    /// rules visible to the caller's tenant from the ball-tree index, and
    /// re-scores each against the fresh cells. No learner runs and no
    /// store record is written — a suggestion is a pure read.
    ///
    /// Ranking: `score = similarity × 4·p·(1−p)`, where `similarity` is
    /// `1/(1 + embedding distance)` and `p` is the fraction of the fresh
    /// column the rule formats. The selectivity term peaks at `p = 0.5`
    /// and vanishes at the extremes — a rule firing on every cell is as
    /// uninformative as one firing on none. Candidates matching zero
    /// cells are dropped outright.
    pub fn suggest(&self, req: &SuggestRequest) -> Result<SuggestResponse, ServeError> {
        if req.cells.is_empty() {
            return Err(ServeError::BadRequest("empty column".into()));
        }
        let tenant = Self::validate_tenant(req.tenant.as_deref())?;
        let k = req.k.unwrap_or(3);
        if k == 0 || k > 16 {
            return Err(ServeError::BadRequest(format!(
                "k must be between 1 and 16, got {k}"
            )));
        }
        let metrics = suggest_metrics();
        metrics.queries.inc();
        let query = embed_column(&req.cells);
        // Over-fetch: re-scoring drops zero-match candidates, so pull
        // more neighbors than requested to keep `k` suggestions fillable.
        // Index and store locks are taken strictly in sequence, never
        // nested — learns take them in the same order.
        let (neighbors, indexed) = {
            let index = self.suggest.lock().unwrap();
            (index.query(tenant, &query, k * 2), index.len())
        };
        let candidates: Vec<(StoredRule, f64)> = {
            let mut store = self.store.lock().unwrap();
            neighbors
                .into_iter()
                .filter_map(|(id, dist)| store.get(&id).map(|rule| (rule, dist)))
                .collect()
        };
        let cells: Vec<CellValue> = req.cells.iter().map(|s| CellValue::parse(s)).collect();
        let mut suggestions: Vec<Suggestion> = candidates
            .into_iter()
            .filter_map(|(stored, dist)| {
                let matches: Vec<usize> = match &stored.rule_set {
                    Some(set) => set
                        .apply(&cells)
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| w.map(|_| i))
                        .collect(),
                    None => stored.rule.execute(&cells).iter_ones().collect(),
                };
                if matches.is_empty() {
                    return None;
                }
                let similarity = 1.0 / (1.0 + dist);
                let p = matches.len() as f64 / cells.len() as f64;
                Some(Suggestion {
                    rule_id: stored.id.clone(),
                    rule_text: stored.rule.to_string(),
                    formula: stored.rule.to_formula().to_string(),
                    matches,
                    similarity,
                    score: similarity * 4.0 * p * (1.0 - p),
                    consistent: stored.consistent,
                })
            })
            .collect();
        suggestions.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.rule_id.cmp(&b.rule_id))
        });
        suggestions.truncate(k);
        metrics.candidates.add(suggestions.len() as u64);
        if suggestions.is_empty() {
            metrics.empty.inc();
        }
        Ok(SuggestResponse {
            suggestions,
            indexed,
            n_cells: req.cells.len(),
        })
    }

    /// Points currently held by the suggestion index (all namespaces).
    pub fn suggest_indexed(&self) -> usize {
        self.suggest.lock().unwrap().len()
    }

    /// Opens a session over a column, optionally with initial examples
    /// (single-rule mode) or initial format classes (multi-class mode —
    /// the two are mutually exclusive).
    pub fn session_create(
        &self,
        cells: Vec<String>,
        examples: Vec<usize>,
        classes: Vec<ClassRequest>,
    ) -> Result<SessionResponse, ServeError> {
        if cells.is_empty() {
            return Err(ServeError::BadRequest("empty column".into()));
        }
        if !classes.is_empty() && !examples.is_empty() {
            return Err(ServeError::BadRequest(
                "provide either `examples` or `classes`, not both".into(),
            ));
        }
        Self::validate_indices(cells.len(), &examples, "example")?;
        for class in &classes {
            Self::validate_indices(cells.len(), &class.examples, "example")?;
        }
        let id = format!("s{}", self.next_session.fetch_add(1, Ordering::Relaxed));
        let mut session = Session {
            id: id.clone(),
            cells,
            positives: examples.into_iter().collect(),
            negatives: BTreeSet::new(),
            classes: classes
                .into_iter()
                .map(|c| SessionClass {
                    style: c.style,
                    scope: c.scope,
                    positives: c.examples.into_iter().collect(),
                })
                .collect(),
            revision: 0,
            last: None,
        };
        self.relearn(&mut session)?;
        self.persist_session(&session)?;
        let response = Self::session_snapshot(&session);
        let evicted = self
            .sessions
            .lock()
            .unwrap()
            .insert(id, session, self.max_sessions);
        for old in evicted {
            self.remove_session_file(&old);
        }
        Ok(response)
    }

    /// The current state of a session.
    pub fn session_get(&self, id: &str) -> Result<SessionResponse, ServeError> {
        let session = self.sessions.lock().unwrap().get(id)?;
        let guard = session.lock().unwrap();
        Ok(Self::session_snapshot(&guard))
    }

    /// Applies corrections and re-learns: `format` marks cells the rule
    /// must cover (moves them out of the negatives), `unformat` marks
    /// cells it must not (moves them out of the positives).
    ///
    /// The *per-session* lock is held across the re-learn so concurrent
    /// corrections to the same session serialize instead of losing one
    /// writer's updates, while other sessions stay responsive; a failed
    /// re-learn (or a failed persist) leaves the session unchanged. Lock
    /// order everywhere is table → session → store, with one audited
    /// exception below: the persist step re-acquires the table lock
    /// *while holding the session lock*. That inversion cannot deadlock
    /// because no path waits on a session lock while holding the table
    /// lock (`SessionTable::get` clones the `Arc` inside a temporary
    /// table guard and locks the session only after it drops), and it is
    /// what closes the eviction race: eviction deletes session files
    /// under the table lock, so checking membership and writing the file
    /// under that same lock guarantees a concurrently evicted session is
    /// never resurrected on disk.
    pub fn session_correct(
        &self,
        id: &str,
        format: &[usize],
        unformat: &[usize],
        class: Option<usize>,
    ) -> Result<SessionResponse, ServeError> {
        let session = self.sessions.lock().unwrap().get(id)?;
        let mut guard = session.lock().unwrap();
        Self::validate_indices(guard.cells.len(), format, "format")?;
        Self::validate_indices(guard.cells.len(), unformat, "unformat")?;
        let mut updated = guard.clone();
        if updated.classes.is_empty() {
            if let Some(k) = class {
                return Err(ServeError::BadRequest(format!(
                    "session `{id}` is single-rule; it has no class {k}"
                )));
            }
            for &i in format {
                updated.negatives.remove(&i);
                updated.positives.insert(i);
            }
            for &i in unformat {
                updated.positives.remove(&i);
                updated.negatives.insert(i);
            }
        } else {
            // Multi-class: `format` paints the cell with class `k`'s style
            // (default: the first class), pulling it out of every other
            // class and out of the negatives; `unformat` strips it from
            // every class and records a hard negative.
            let k = class.unwrap_or(0);
            if k >= updated.classes.len() {
                return Err(ServeError::BadRequest(format!(
                    "class index {k} out of range for {} classes",
                    updated.classes.len()
                )));
            }
            for &i in format {
                updated.negatives.remove(&i);
                for (j, c) in updated.classes.iter_mut().enumerate() {
                    if j != k {
                        c.positives.remove(&i);
                    }
                }
                updated.classes[k].positives.insert(i);
            }
            for &i in unformat {
                for c in updated.classes.iter_mut() {
                    c.positives.remove(&i);
                }
                updated.negatives.insert(i);
            }
        }
        updated.revision += 1;
        self.relearn(&mut updated)?;
        {
            let table = self.sessions.lock().unwrap();
            if table.map.contains_key(id) {
                self.persist_session(&updated)?;
            }
            // An evicted session keeps serving this in-flight correction
            // from memory, but owns no file any more.
        }
        let response = Self::session_snapshot(&updated);
        *guard = updated;
        Ok(response)
    }

    /// Writes a session's state to `<sessions_dir>/<id>.json` via a temp
    /// file + rename, mirroring the rule store's crash safety.
    fn persist_session(&self, session: &Session) -> Result<(), ServeError> {
        let text = encode(SESSION_KIND, session);
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let tmp = self.sessions_dir.join(format!(
            "{}.{}.{}.tmp",
            session.id,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let target = self.sessions_dir.join(format!("{}.json", session.id));
        std::fs::write(&tmp, &text)
            .and_then(|()| std::fs::rename(&tmp, &target))
            .map_err(|e| ServeError::Internal(format!("session write failed: {e}")))
    }

    /// Best-effort removal of an evicted session's file.
    fn remove_session_file(&self, id: &str) {
        let _ = std::fs::remove_file(self.sessions_dir.join(format!("{id}.json")));
    }

    fn relearn(&self, session: &mut Session) -> Result<(), ServeError> {
        let req = if session.classes.is_empty() {
            if session.positives.is_empty() {
                session.last = None;
                return Ok(());
            }
            // Sessions are untenanted: their learns land in the global
            // namespace (per-tenant sessions are a follow-up).
            LearnRequest {
                cells: session.cells.clone(),
                examples: session.positives.iter().copied().collect(),
                negatives: session.negatives.iter().copied().collect(),
                classes: Vec::new(),
                tenant: None,
            }
        } else {
            // A class emptied by corrections drops out of the request —
            // there is nothing left to learn it from; priorities follow
            // the surviving class order.
            let classes: Vec<ClassRequest> = session
                .classes
                .iter()
                .filter(|c| !c.positives.is_empty())
                .map(|c| ClassRequest {
                    style: c.style.clone(),
                    scope: c.scope,
                    examples: c.positives.iter().copied().collect(),
                })
                .collect();
            if classes.is_empty() {
                session.last = None;
                return Ok(());
            }
            LearnRequest {
                cells: session.cells.clone(),
                examples: Vec::new(),
                negatives: session.negatives.iter().copied().collect(),
                classes,
                tenant: None,
            }
        };
        session.last = Some(self.learn(&req)?);
        Ok(())
    }

    fn session_snapshot(session: &Session) -> SessionResponse {
        let positives: Vec<usize> = if session.classes.is_empty() {
            session.positives.iter().copied().collect()
        } else {
            session
                .classes
                .iter()
                .flat_map(|c| c.positives.iter().copied())
                .collect::<BTreeSet<usize>>()
                .into_iter()
                .collect()
        };
        SessionResponse {
            session_id: session.id.clone(),
            revision: session.revision,
            n_cells: session.cells.len(),
            positives,
            negatives: session.negatives.iter().copied().collect(),
            classes: session
                .classes
                .iter()
                .map(|c| ClassRequest {
                    style: c.style.clone(),
                    scope: c.scope,
                    examples: c.positives.iter().copied().collect(),
                })
                .collect(),
            result: session.last.clone(),
        }
    }

    /// Service health/statistics document.
    ///
    /// The on-disk rule count comes from the store's cached gauge
    /// ([`RuleStore::persisted_cached`]): the directory walk runs at most
    /// once per second, so repeated health probes never stall
    /// `learn`/`score` behind a filesystem scan. The store mutex is
    /// released before the session table is locked (never nested inside
    /// the store lock — `session_correct` acquires them in the opposite
    /// order, which would deadlock).
    pub fn health(&self) -> Json {
        let (hits, misses, cached, seg_rules, seg_files, persisted) = {
            let mut store = self.store.lock().unwrap();
            let (hits, misses) = store.counters();
            let persisted = store.persisted_cached();
            (
                hits,
                misses,
                store.cached(),
                store.segment_rules(),
                store.segment_files(),
                persisted,
            )
        };
        let sessions = self.sessions.lock().unwrap().map.len();
        Json::object([
            ("status", Json::str("ok")),
            ("uptime_seconds", self.started.elapsed().as_secs().to_json()),
            ("rules_cached", cached.to_json()),
            ("rules_persisted", persisted.to_json()),
            ("rules_in_segments", seg_rules.to_json()),
            ("segment_files", seg_files.to_json()),
            ("store_hits", hits.to_json()),
            ("store_misses", misses.to_json()),
            ("sessions", sessions.to_json()),
            ("learns_performed", self.learns_performed().to_json()),
            ("suggest_indexed", self.suggest_indexed().to_json()),
        ])
    }

    /// The full Prometheus exposition served at `GET /metrics`: the
    /// process-global registry (learner stage timings, pool utilization,
    /// store and HTTP counters) followed by per-service gauges sampled at
    /// scrape time.
    ///
    /// The split matters for restarts: global families aggregate across
    /// the whole process (and across every service instance in it), while
    /// the `cornet_service_*` gauges reset with the service — a server
    /// restarted over a persisted store reports
    /// `cornet_service_learns_performed 0` even though the global learner
    /// counters keep their totals.
    pub fn metrics_text(&self) -> String {
        let service = Registry::new();
        let set = |name: &str, help: &str, value: i64| service.gauge(name, help).set(value);
        {
            let mut store = self.store.lock().unwrap();
            let (hits, misses) = store.counters();
            set(
                "cornet_service_store_hits",
                "This service's rule lookups answered from memory.",
                hits as i64,
            );
            set(
                "cornet_service_store_misses",
                "This service's rule lookups that went to disk or missed.",
                misses as i64,
            );
            set(
                "cornet_service_store_persisted_rules",
                "Distinct rules persisted under the store directory.",
                store.persisted_cached() as i64,
            );
            set(
                "cornet_service_store_cached_rules",
                "Rules currently held in the in-memory LRU cache.",
                store.cached() as i64,
            );
            set(
                "cornet_service_store_segment_rules",
                "Distinct rules reachable through the segment index.",
                store.segment_rules() as i64,
            );
            set(
                "cornet_service_store_segment_files",
                "Segment files referenced by the index.",
                store.segment_files() as i64,
            );
        }
        set(
            "cornet_service_suggest_indexed",
            "Stored-rule embeddings in this service's suggestion index.",
            self.suggest_indexed() as i64,
        );
        set(
            "cornet_service_sessions",
            "Live interactive correct-and-relearn sessions.",
            self.sessions.lock().unwrap().map.len() as i64,
        );
        set(
            "cornet_service_learns_performed",
            "Learner invocations since this service started (store hits excluded).",
            self.learns_performed() as i64,
        );
        set(
            "cornet_service_uptime_seconds",
            "Seconds since this service started.",
            self.started.elapsed().as_secs() as i64,
        );
        let mut out = cornet_obs::registry().render();
        out.push_str(&service.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_service(tag: &str) -> (CornetService, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cornet-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        (service, dir)
    }

    fn rw_column() -> Vec<String> {
        ["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn learn_then_cached_learn_then_score() {
        let (service, dir) = temp_service("learn");
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        let first = service.learn(&req).unwrap();
        assert_eq!(first.matches, vec![0, 2, 5]);
        assert!(!first.cached);
        assert_eq!(service.learns_performed(), 1);

        let second = service.learn(&req).unwrap();
        assert!(second.cached, "identical request must hit the store");
        assert_eq!(second.rule_text, first.rule_text);
        assert_eq!(service.learns_performed(), 1, "no re-learning");

        let score = service
            .score(&ScoreRequest {
                rule_id: Some(first.rule_id.clone()),
                rule: None,
                rule_set: None,
                cells: vec!["RW-555".into(), "XX-1".into(), "RW-9-T".into()],
            })
            .unwrap();
        // Which negation the ranker prefers varies; what must hold is that
        // a fresh RW id is formatted and a non-RW id is not.
        assert!(score.matches.contains(&0));
        assert!(!score.matches.contains(&1));
        assert_eq!(score.n_cells, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn learn_errors_map_to_statuses() {
        let (service, dir) = temp_service("errors");
        let no_examples = LearnRequest {
            cells: rw_column(),
            examples: vec![],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        assert_eq!(service.learn(&no_examples).unwrap_err().status(), 400);

        let out_of_range = LearnRequest {
            cells: rw_column(),
            examples: vec![99],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        assert_eq!(service.learn(&out_of_range).unwrap_err().status(), 400);

        let unlearnable = LearnRequest {
            cells: vec!["x".into(), "x".into(), "x".into()],
            examples: vec![0],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        assert_eq!(service.learn(&unlearnable).unwrap_err().status(), 422);

        let missing_rule = ScoreRequest {
            rule_id: Some("r0123456789abcdef".into()),
            rule: None,
            rule_set: None,
            cells: vec!["a".into()],
        };
        assert_eq!(service.score(&missing_rule).unwrap_err().status(), 404);

        let ambiguous = ScoreRequest {
            rule_id: None,
            rule: None,
            rule_set: None,
            cells: vec!["a".into()],
        };
        assert_eq!(service.score(&ambiguous).unwrap_err().status(), 400);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_scores_from_the_persisted_store_without_relearning() {
        let (service, dir) = temp_service("restart");
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        let learned = service.learn(&req).unwrap();
        drop(service);

        // A fresh process over the same store directory.
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let score = restarted
            .score(&ScoreRequest {
                rule_id: Some(learned.rule_id.clone()),
                rule: None,
                rule_set: None,
                cells: rw_column(),
            })
            .unwrap();
        assert_eq!(score.matches, vec![0, 2, 5]);
        let again = restarted.learn(&req).unwrap();
        assert!(again.cached);
        assert_eq!(restarted.learns_performed(), 0, "restart never re-learns");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_correct_and_relearn_loop() {
        let (service, dir) = temp_service("session");
        // The user starts with one example; RW-131-T is wrongly matched
        // by the initial "starts with RW" hypothesis.
        let created = service
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        let first = created.result.clone().expect("rule learned");
        assert!(first.matches.contains(&0));

        // The user unformats RW-131-T (index 3) and formats RW-312 (5).
        let corrected = service
            .session_correct(&created.session_id, &[5], &[3], None)
            .unwrap();
        assert_eq!(corrected.revision, 1);
        let result = corrected.result.expect("re-learned");
        assert!(
            !result.matches.contains(&3),
            "corrected negative must not be matched: {result:?}"
        );
        assert!(result.matches.contains(&5));
        assert!(result.consistent);

        let fetched = service.session_get(&created.session_id).unwrap();
        assert_eq!(fetched.revision, 1);
        assert_eq!(fetched.positives, vec![0, 5]);
        assert_eq!(fetched.negatives, vec![3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_indices_are_rejected() {
        let (service, dir) = temp_service("dups");
        let dup_examples = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 0],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        let err = service.learn(&dup_examples).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("duplicate example index 0"), "{err}");
        let dup_negatives = LearnRequest {
            cells: rw_column(),
            examples: vec![0],
            negatives: vec![3, 3],
            classes: vec![],
            tenant: None,
        };
        let err = service.learn(&dup_negatives).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(
            err.message().contains("duplicate negative index 3"),
            "{err}"
        );
        assert_eq!(service.learns_performed(), 0, "rejected before learning");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn constrained_learn_returns_a_rule_that_excludes_the_negative() {
        let (service, dir) = temp_service("constrained");
        // Examples {0, 2} alone generalise RW-131-T (3) in; the negative
        // correction must produce a *rule* that excludes it — not a
        // filtered mask — so fresh lookalike rows stay unformatted too.
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2],
            negatives: vec![3],
            classes: vec![],
            tenant: None,
        };
        let response = service.learn(&req).unwrap();
        assert!(response.consistent, "{response:?}");
        assert!(!response.matches.contains(&3));
        assert!(response.matches.contains(&0) && response.matches.contains(&2));
        // The rule itself excludes the corrected value — scoring a fresh
        // row holding it must leave it unformatted (post-hoc filtering of
        // the old implementation could not do this).
        let score = service
            .score(&ScoreRequest {
                rule_id: Some(response.rule_id.clone()),
                rule: None,
                rule_set: None,
                cells: vec!["RW-888".into(), "RW-131-T".into()],
            })
            .unwrap();
        assert!(score.matches.contains(&0));
        assert!(
            !score.matches.contains(&1),
            "rule must exclude the corrected value on fresh rows: {score:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sessions_survive_a_restart() {
        let (service, dir) = temp_service("session-restart");
        let created = service
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        let sid = created.session_id.clone();
        let corrected = service.session_correct(&sid, &[5], &[3], None).unwrap();
        assert_eq!(corrected.revision, 1);
        drop(service);

        // A fresh process over the same store directory resumes the loop.
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let fetched = restarted.session_get(&sid).unwrap();
        assert_eq!(fetched.revision, 1);
        assert_eq!(fetched.positives, vec![0, 5]);
        assert_eq!(fetched.negatives, vec![3]);
        let result = fetched.result.expect("restored session keeps its rule");
        assert!(!result.matches.contains(&3));

        // Further corrections work, and fresh sessions do not collide
        // with restored ids.
        let again = restarted.session_correct(&sid, &[2], &[], None).unwrap();
        assert_eq!(again.revision, 2);
        let fresh = restarted
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        assert_ne!(fresh.session_id, sid);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicted_sessions_lose_their_files() {
        let dir = std::env::temp_dir().join(format!(
            "cornet-service-test-evict-files-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            max_sessions: 2,
        })
        .unwrap();
        let ids: Vec<String> = (0..3)
            .map(|_| {
                service
                    .session_create(rw_column(), vec![0], vec![])
                    .unwrap()
                    .session_id
            })
            .collect();
        let session_file = |id: &str| dir.join("sessions").join(format!("{id}.json"));
        assert!(!session_file(&ids[0]).exists(), "evicted file removed");
        assert!(session_file(&ids[1]).exists());
        assert!(session_file(&ids[2]).exists());
        // The eviction cap also applies to a restart.
        drop(service);
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            max_sessions: 2,
        })
        .unwrap();
        assert!(restarted.session_get(&ids[1]).is_ok());
        assert!(restarted.session_get(&ids[2]).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_session_files_are_skipped_on_restart() {
        let (service, dir) = temp_service("session-corrupt");
        let ok = service
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        drop(service);
        std::fs::write(dir.join("sessions").join("s999.json"), "{not json").unwrap();
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(restarted.session_get(&ok.session_id).is_ok());
        assert!(matches!(
            restarted.session_get("s999"),
            Err(ServeError::NotFound(_))
        ));
        // The counter skips past the corrupt file's name is irrelevant —
        // fresh ids never collide with the restored session.
        let fresh = restarted
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        assert_ne!(fresh.session_id, ok.session_id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inconsistent_learns_stay_inconsistent_on_cache_hits() {
        let (service, dir) = temp_service("inconsistent");
        // Cells 0 and 1 hold the same value: no rule can cover example 0
        // while excluding negative 1, so the best candidate is returned
        // flagged inconsistent.
        let req = LearnRequest {
            cells: vec!["x".into(), "x".into(), "y".into(), "z".into()],
            examples: vec![0],
            negatives: vec![1],
            classes: vec![],
            tenant: None,
        };
        let first = service.learn(&req).unwrap();
        assert!(!first.consistent, "{first:?}");
        // A store hit must not launder the flag back to consistent.
        let second = service.learn(&req).unwrap();
        assert!(second.cached);
        assert!(!second.consistent, "cache hit reported consistent=true");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_table_evicts_oldest_beyond_the_cap() {
        let dir =
            std::env::temp_dir().join(format!("cornet-service-test-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            max_sessions: 2,
        })
        .unwrap();
        let ids: Vec<String> = (0..3)
            .map(|_| {
                service
                    .session_create(rw_column(), vec![0], vec![])
                    .unwrap()
                    .session_id
            })
            .collect();
        assert!(
            matches!(service.session_get(&ids[0]), Err(ServeError::NotFound(_))),
            "oldest session must be evicted"
        );
        assert!(service.session_get(&ids[1]).is_ok());
        assert!(service.session_get(&ids[2]).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_fans_out_and_isolates_failures() {
        let (service, dir) = temp_service("batch");
        let learn = BatchItem::Learn(LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        });
        let bad = BatchItem::Score(ScoreRequest {
            rule_id: Some("r00000000deadbeef".into()),
            rule: None,
            rule_set: None,
            cells: vec!["a".into()],
        });
        let results = service.batch(&[learn.clone(), bad, learn]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().status(), 404);
        assert!(results[2].is_ok(), "failure must not poison the batch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_text_reports_service_gauges_that_reset_on_restart() {
        let (service, dir) = temp_service("metrics");
        let req = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2, 5],
            negatives: vec![],
            classes: vec![],
            tenant: None,
        };
        service.learn(&req).unwrap();
        let expo = cornet_obs::expo::parse(&service.metrics_text()).unwrap();
        assert_eq!(
            expo.value("cornet_service_learns_performed", &[]),
            Some(1.0)
        );
        assert_eq!(
            expo.value("cornet_service_store_persisted_rules", &[]),
            Some(1.0)
        );
        drop(service);

        // A fresh service over the same store: per-service families reset
        // even though the global registry keeps its process totals.
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let expo = cornet_obs::expo::parse(&restarted.metrics_text()).unwrap();
        assert_eq!(
            expo.value("cornet_service_learns_performed", &[]),
            Some(0.0),
            "restart resets the per-service learn gauge"
        );
        assert_eq!(
            expo.value("cornet_service_store_persisted_rules", &[]),
            Some(1.0),
            "persisted rules survive the restart"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_json_round_trips() {
        let learn = LearnRequest {
            cells: rw_column(),
            examples: vec![0, 2],
            negatives: vec![3],
            classes: vec![],
            tenant: None,
        };
        let back = LearnRequest::from_json(&learn.to_json()).unwrap();
        assert_eq!(back, learn);
        // `negatives` is optional on the wire.
        let minimal = cornet_serde::parse(r#"{"cells":["a","b"],"examples":[0]}"#).unwrap();
        let decoded = LearnRequest::from_json(&minimal).unwrap();
        assert!(decoded.negatives.is_empty());

        let score = ScoreRequest {
            rule_id: Some("r0f".into()),
            rule: None,
            rule_set: None,
            cells: vec!["a".into()],
        };
        assert_eq!(ScoreRequest::from_json(&score.to_json()).unwrap(), score);
        let item = BatchItem::Learn(learn);
        assert_eq!(BatchItem::from_json(&item.to_json()).unwrap(), item);
    }

    fn status_column() -> Vec<String> {
        [
            "completed",
            "pending",
            "failed",
            "completed",
            "pending",
            "failed",
            "completed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn status_classes() -> Vec<ClassRequest> {
        vec![
            ClassRequest {
                style: Format::fill("#dcfce7"),
                scope: TargetScope::Row,
                examples: vec![0],
            },
            ClassRequest {
                style: Format::fill("#fef9c3"),
                scope: TargetScope::Row,
                examples: vec![1],
            },
            ClassRequest {
                style: Format::fill("#fee2e2"),
                scope: TargetScope::Row,
                examples: vec![2],
            },
        ]
    }

    fn status_request() -> LearnRequest {
        LearnRequest {
            cells: status_column(),
            examples: vec![],
            negatives: vec![],
            classes: status_classes(),
            tenant: None,
        }
    }

    #[test]
    fn multi_class_learn_returns_a_prioritized_rule_set_and_caches() {
        let (service, dir) = temp_service("multiclass");
        let first = service.learn(&status_request()).unwrap();
        let set = first
            .rule_set
            .clone()
            .expect("multi-class learn carries a rule set");
        assert_eq!(set.len(), 3);
        assert!(set.consistent() && first.consistent);
        for (k, rule) in set.rules.iter().enumerate() {
            assert_eq!(rule.priority, k as u32, "priority follows class order");
            assert_eq!(rule.scope, TargetScope::Row);
            assert!(rule.consistent);
        }
        assert_eq!(set.rules[0].style, Format::fill("#dcfce7"));
        assert_eq!(set.rules[2].style, Format::fill("#fee2e2"));
        assert_eq!(
            first.assignments,
            Some(vec![
                Some(0),
                Some(1),
                Some(2),
                Some(0),
                Some(1),
                Some(2),
                Some(0)
            ]),
            "every status resolves to its class's rule"
        );
        assert_eq!(first.matches, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(service.learns_performed(), 1);

        let second = service.learn(&status_request()).unwrap();
        assert!(second.cached, "identical class request must hit the store");
        assert_eq!(second.rule_set, first.rule_set);
        assert_eq!(second.assignments, first.assignments);
        assert_eq!(service.learns_performed(), 1, "no re-learning");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_class_learn_validation_rejects_malformed_class_sets() {
        let (service, dir) = temp_service("multiclass-errors");
        let mut both = status_request();
        both.examples = vec![0];
        let err = service.learn(&both).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("not both"), "{err}");

        let mut overlap = status_request();
        overlap.classes[1].examples = vec![0];
        let err = service.learn(&overlap).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(
            err.message().contains("appears in classes 0 and 1"),
            "{err}"
        );

        let mut empty = status_request();
        empty.classes[2].examples = vec![];
        let err = service.learn(&empty).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("class 2 has no example"), "{err}");

        let mut negative_clash = status_request();
        negative_clash.negatives = vec![1];
        let err = service.learn(&negative_clash).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(
            err.message().contains("both an example and a negative"),
            "{err}"
        );
        assert_eq!(service.learns_performed(), 0, "rejected before learning");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rule_sets_survive_a_restart_and_score_by_id() {
        let (service, dir) = temp_service("multiclass-restart");
        let learned = service.learn(&status_request()).unwrap();
        drop(service);

        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let again = restarted.learn(&status_request()).unwrap();
        assert!(again.cached);
        assert_eq!(again.rule_set, learned.rule_set);
        assert_eq!(restarted.learns_performed(), 0, "restart never re-learns");

        // Scoring fresh rows by the stored id conflict-resolves through
        // the persisted rule set and reports per-cell assignments.
        let score = restarted
            .score(&ScoreRequest {
                rule_id: Some(learned.rule_id.clone()),
                rule: None,
                rule_set: None,
                cells: vec!["failed".into(), "completed".into()],
            })
            .unwrap();
        let assignments = score
            .assignments
            .expect("rule-set scores carry assignments");
        assert_eq!(assignments, vec![Some(2), Some(0)]);
        assert_eq!(score.matches, vec![0, 1]);

        // An inline rule set scores the same way without touching the store.
        let inline = restarted
            .score(&ScoreRequest {
                rule_id: None,
                rule: None,
                rule_set: again.rule_set.clone(),
                cells: vec!["pending".into()],
            })
            .unwrap();
        assert_eq!(inline.assignments, Some(vec![Some(1)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_class_sessions_correct_per_class_and_survive_restarts() {
        let (service, dir) = temp_service("multiclass-session");
        let created = service
            .session_create(status_column(), vec![], status_classes())
            .unwrap();
        assert_eq!(created.classes.len(), 3);
        assert_eq!(created.positives, vec![0, 1, 2], "union across classes");
        let result = created.result.clone().expect("rule set learned");
        assert_eq!(result.rule_set.as_ref().map(RuleSet::len), Some(3));

        // Corrections target a class: painting cell 3 with class 0's style
        // grows that class; a class index out of range is a caller error.
        let corrected = service
            .session_correct(&created.session_id, &[3], &[], Some(0))
            .unwrap();
        assert_eq!(corrected.revision, 1);
        assert_eq!(corrected.classes[0].examples, vec![0, 3]);
        assert!(corrected.result.expect("re-learned").rule_set.is_some());
        let err = service
            .session_correct(&created.session_id, &[4], &[], Some(9))
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("out of range"), "{err}");

        // A single-rule session rejects class-targeted corrections.
        let legacy = service
            .session_create(rw_column(), vec![0], vec![])
            .unwrap();
        let err = service
            .session_correct(&legacy.session_id, &[5], &[], Some(0))
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("single-rule"), "{err}");

        // The per-class state (styles, scopes, example sets) survives a
        // restart through the persisted session file.
        let sid = created.session_id.clone();
        drop(service);
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        let fetched = restarted.session_get(&sid).unwrap();
        assert_eq!(fetched.revision, 1);
        assert_eq!(fetched.classes.len(), 3);
        assert_eq!(fetched.classes[0].examples, vec![0, 3]);
        assert_eq!(fetched.classes[0].style, Format::fill("#dcfce7"));
        assert_eq!(fetched.classes[0].scope, TargetScope::Row);
        assert!(fetched.result.expect("restored").rule_set.is_some());
        assert_eq!(restarted.learns_performed(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_session_create_inputs_are_rejected() {
        let (service, dir) = temp_service("multiclass-mixed");
        let err = service
            .session_create(status_column(), vec![0], status_classes())
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("not both"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_rescores_stored_rules_and_survives_restart() {
        let (service, dir) = temp_service("suggest");
        assert_eq!(service.suggest_indexed(), 0);
        let learned = service
            .learn(&LearnRequest {
                cells: rw_column(),
                examples: vec![0, 2, 5],
                negatives: vec![],
                classes: vec![],
                tenant: None,
            })
            .unwrap();
        assert_eq!(service.suggest_indexed(), 1);

        // A bare, never-seen column of the same shape: zero examples in,
        // the stored rule out, re-scored against the fresh cells.
        let fresh: Vec<String> = ["RW-555", "XQ-12", "RW-901", "RW-73-T"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let response = service
            .suggest(&SuggestRequest {
                cells: fresh.clone(),
                tenant: None,
                k: None,
            })
            .unwrap();
        assert_eq!(response.indexed, 1);
        assert_eq!(response.n_cells, 4);
        let top = response.suggestions.first().expect("one suggestion");
        assert_eq!(top.rule_id, learned.rule_id);
        assert!(top.matches.contains(&0), "fresh RW id formatted");
        assert!(!top.matches.contains(&1), "non-RW id not formatted");
        assert!(top.similarity > 0.0 && top.similarity <= 1.0);
        assert!(top.score > 0.0);
        assert_eq!(service.learns_performed(), 1, "suggestion never learns");

        // Restart: the index rebuilds from the persisted store alone.
        drop(service);
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(restarted.suggest_indexed(), 1);
        let again = restarted
            .suggest(&SuggestRequest {
                cells: fresh,
                tenant: None,
                k: None,
            })
            .unwrap();
        assert_eq!(again.suggestions, response.suggestions, "restart-stable");
        assert_eq!(restarted.learns_performed(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_survives_pack_and_restart_from_segments() {
        let (service, dir) = temp_service("suggest-pack");
        let learned = service
            .learn(&LearnRequest {
                cells: rw_column(),
                examples: vec![0, 2, 5],
                negatives: vec![],
                classes: vec![],
                tenant: None,
            })
            .unwrap();
        assert_eq!(service.pack_rules().unwrap(), 1);
        // The pack invariant: ids never change, so the index entry built
        // before the pack still resolves through the store after it.
        let packed = service
            .suggest(&SuggestRequest {
                cells: rw_column(),
                tenant: None,
                k: None,
            })
            .unwrap();
        assert_eq!(packed.suggestions[0].rule_id, learned.rule_id);

        drop(service);
        let restarted = CornetService::new(&ServiceConfig {
            store_dir: dir.clone(),
            cache_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(restarted.suggest_indexed(), 1, "rebuilt from the segment");
        let from_segment = restarted
            .suggest(&SuggestRequest {
                cells: rw_column(),
                tenant: None,
                k: None,
            })
            .unwrap();
        assert_eq!(from_segment.suggestions[0].rule_id, learned.rule_id);
        assert_eq!(restarted.learns_performed(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_never_crosses_tenants() {
        let (service, dir) = temp_service("suggest-tenants");
        let acme = service
            .learn(&LearnRequest {
                cells: rw_column(),
                examples: vec![0, 2, 5],
                negatives: vec![],
                classes: vec![],
                tenant: Some("acme".into()),
            })
            .unwrap();

        let ask = |tenant: Option<&str>| {
            service
                .suggest(&SuggestRequest {
                    cells: rw_column(),
                    tenant: tenant.map(str::to_string),
                    k: None,
                })
                .unwrap()
                .suggestions
        };
        assert_eq!(
            ask(Some("acme"))[0].rule_id,
            acme.rule_id,
            "the owning tenant sees its rule"
        );
        assert!(
            ask(Some("globex")).is_empty(),
            "another tenant must never see acme's rule"
        );
        assert!(ask(None).is_empty(), "anonymous queries see global only");

        // The same learn under another tenant is a distinct record.
        let globex = service
            .learn(&LearnRequest {
                cells: rw_column(),
                examples: vec![0, 2, 5],
                negatives: vec![],
                classes: vec![],
                tenant: Some("globex".into()),
            })
            .unwrap();
        assert_ne!(globex.rule_id, acme.rule_id);
        assert_eq!(ask(Some("globex"))[0].rule_id, globex.rule_id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_rejects_bad_requests() {
        let (service, dir) = temp_service("suggest-bad");
        let bad = |cells: Vec<String>, tenant: Option<&str>, k: Option<usize>| {
            service
                .suggest(&SuggestRequest {
                    cells,
                    tenant: tenant.map(str::to_string),
                    k,
                })
                .unwrap_err()
                .status()
        };
        assert_eq!(bad(vec![], None, None), 400, "empty column");
        assert_eq!(bad(rw_column(), None, Some(0)), 400, "k = 0");
        assert_eq!(bad(rw_column(), None, Some(17)), 400, "k > 16");
        assert_eq!(bad(rw_column(), Some("Acme Corp"), None), 400);
        assert_eq!(bad(rw_column(), Some(""), None), 400);
        let err = service
            .learn(&LearnRequest {
                cells: rw_column(),
                examples: vec![0, 2, 5],
                negatives: vec![],
                classes: vec![],
                tenant: Some("UPPER".into()),
            })
            .unwrap_err();
        assert_eq!(err.status(), 400, "learn validates tenants too");
        std::fs::remove_dir_all(&dir).ok();
    }
}
