//! Corpus summary statistics — the generator's side of Table 3.

use crate::taskgen::Task;
use cornet_table::DataType;

/// Per-type aggregate statistics (one row of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeStats {
    /// The type this row summarises.
    pub dtype: DataType,
    /// Number of tasks.
    pub rules: usize,
    /// Mean column length.
    pub avg_cells: f64,
    /// Mean number of formatted cells.
    pub avg_formatted: f64,
    /// Mean ground-truth rule depth.
    pub avg_depth: f64,
}

/// Full corpus statistics: one row per type plus the Total row.
#[derive(Debug, Clone)]
pub struct CorpusStats {
    /// Text / Numeric / Date rows.
    pub per_type: Vec<TypeStats>,
    /// The aggregate row.
    pub total: TypeStats,
}

/// Computes Table 3 statistics over a set of tasks.
pub fn corpus_stats(tasks: &[Task]) -> CorpusStats {
    let row = |dtype: Option<DataType>| -> TypeStats {
        let selected: Vec<&Task> = tasks
            .iter()
            .filter(|t| dtype.is_none() || Some(t.dtype) == dtype)
            .collect();
        let n = selected.len().max(1) as f64;
        TypeStats {
            dtype: dtype.unwrap_or(DataType::Text),
            rules: selected.len(),
            avg_cells: selected.iter().map(|t| t.cells.len() as f64).sum::<f64>() / n,
            avg_formatted: selected
                .iter()
                .map(|t| t.formatted.count_ones() as f64)
                .sum::<f64>()
                / n,
            avg_depth: selected.iter().map(|t| t.rule.depth() as f64).sum::<f64>() / n,
        }
    };
    CorpusStats {
        per_type: vec![
            row(Some(DataType::Text)),
            row(Some(DataType::Number)),
            row(Some(DataType::Date)),
        ],
        total: row(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgen::{generate_corpus, CorpusConfig};

    #[test]
    fn stats_match_table3_shape() {
        let corpus = generate_corpus(&CorpusConfig {
            n_tasks: 250,
            seed: 11,
            ..CorpusConfig::default()
        });
        let stats = corpus_stats(&corpus.tasks);
        assert_eq!(
            stats.per_type.iter().map(|r| r.rules).sum::<usize>(),
            stats.total.rules
        );
        let text = &stats.per_type[0];
        let numeric = &stats.per_type[1];
        // Table 3 orderings: text tasks dominate; numeric columns are the
        // longest and have the most formatted cells; text rules are the
        // deepest.
        assert!(text.rules > numeric.rules);
        assert!(numeric.avg_cells > text.avg_cells);
        assert!(numeric.avg_formatted > text.avg_formatted);
        assert!(text.avg_depth > numeric.avg_depth);
        // Rough magnitudes (±40%).
        assert!((text.avg_cells - 107.5).abs() < 45.0);
        assert!((numeric.avg_cells - 184.8).abs() < 75.0);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let stats = corpus_stats(&[]);
        assert_eq!(stats.total.rules, 0);
        assert_eq!(stats.total.avg_cells, 0.0);
    }
}
