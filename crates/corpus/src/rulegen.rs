//! Ground-truth rule sampling.
//!
//! Rules are drawn from depth mixtures tuned to reproduce the per-type
//! average rule depths of Table 3 (text 2.3, numeric 1.8, date 1.7), with
//! constants taken from the column's actual content so rules have plausible
//! selectivity.

use crate::values::{DateColumnSpec, NumericColumnSpec, TextColumnSpec, TextFamily};
use cornet_core::predicate::{CmpOp, DatePart, Predicate, TextOp};
use cornet_core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_table::CellValue;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples one atomic text predicate over the column's atoms.
fn text_atom(spec: &TextColumnSpec, rng: &mut impl Rng) -> Predicate {
    let pattern = spec.atoms.choose(rng).cloned().unwrap_or_default();
    let op = match spec.family {
        TextFamily::IdCodes => TextOp::StartsWith,
        TextFamily::StatusWords => TextOp::Equals,
        TextFamily::Names => TextOp::EndsWith,
        TextFamily::Emails => TextOp::EndsWith,
        TextFamily::Products => TextOp::StartsWith,
    };
    Predicate::Text { op, pattern }
}

/// Samples a text rule over the column's atoms.
///
/// Depth mixture targeting a Table 3 average of ≈2.3: 25% single predicate
/// (depth 1), 10% NOT (2), 10% OR of two (2), 55% AND chains with negated
/// refinements (3): `0.25·1 + 0.2·2 + 0.55·3 = 2.25`. AND/NOT chains
/// dominate — like the paper's running example — because their positives
/// form a single predicate-space cluster, which is what real prefix+
/// exception rules look like; OR and complement rules (whose positives are
/// multi-modal) are the rare cases.
pub fn text_rule(spec: &TextColumnSpec, cells: &[CellValue], rng: &mut impl Rng) -> Rule {
    let style = rng.gen_range(0..100);
    if style < 25 {
        Rule::new(vec![Conjunct::single(RuleLiteral::pos(text_atom(
            spec, rng,
        )))])
    } else if style < 35 && spec.family == TextFamily::StatusWords {
        // Complement rules only occur on small-vocabulary status columns:
        // "everything that is not OK". On id/name/email columns the
        // complement of one atom is a grab-bag no example set pins down.
        Rule::new(vec![Conjunct::single(RuleLiteral::neg(text_atom(
            spec, rng,
        )))])
    } else if style < 45 {
        let a = text_atom(spec, rng);
        let b = text_atom(spec, rng);
        Rule::new(vec![
            Conjunct::single(RuleLiteral::pos(a)),
            Conjunct::single(RuleLiteral::pos(b)),
        ])
    } else {
        // AND(base, NOT refinement [, NOT refinement]) — the
        // running-example shape ("starts with RW and does not end in T").
        let base = text_atom(spec, rng);
        let n_refinements = if style < 80 { 1 } else { 2 };
        let mut literals = vec![RuleLiteral::pos(base.clone())];
        let refinements = refinement_predicates(spec, &base, cells, n_refinements, rng);
        for refinement in refinements {
            literals.push(RuleLiteral::neg(refinement));
        }
        Rule::new(vec![Conjunct::new(literals)])
    }
}

/// Finds predicates that carve a proper non-empty subset out of the cells
/// matching `base` — the negated refinements of AND-chain rules. Prefers
/// the column's suffix when it exists, then falls back to `Contains` over
/// tokens occurring in some (not all) base-matching values.
fn refinement_predicates(
    spec: &TextColumnSpec,
    base: &Predicate,
    cells: &[CellValue],
    count: usize,
    rng: &mut impl Rng,
) -> Vec<Predicate> {
    let matching: Vec<&str> = cells
        .iter()
        .filter(|c| base.eval(c))
        .filter_map(CellValue::as_text)
        .collect();
    let mut out: Vec<Predicate> = Vec::new();
    if let Some(suffix) = &spec.suffix {
        out.push(Predicate::Text {
            op: TextOp::EndsWith,
            pattern: suffix.clone(),
        });
    }
    // Candidate tokens: whole tokens of the matching values (no character
    // fragments — real exception rules name visible groups, not letters).
    let mut tokens: Vec<String> = Vec::new();
    for value in &matching {
        for token in value.split(|c: char| !c.is_alphanumeric()) {
            if token.chars().count() >= 2 {
                tokens.push(token.to_string());
            }
        }
    }
    tokens.sort();
    tokens.dedup();
    // Shuffle deterministically via the rng: pick starting offset.
    if !tokens.is_empty() {
        let offset = rng.gen_range(0..tokens.len());
        tokens.rotate_left(offset);
    }
    for token in tokens {
        if out.len() >= count {
            break;
        }
        let candidate = Predicate::Text {
            op: TextOp::Contains,
            pattern: token,
        };
        let hits = matching
            .iter()
            .filter(|v| candidate.eval(&CellValue::Text((**v).to_string())))
            .count();
        // Only prominent exception groups: 20–60% of the base matches, so a
        // handful of examples (and their soft negatives) can reveal them.
        let share = hits as f64 / matching.len().max(1) as f64;
        if (0.2..=0.6).contains(&share) {
            out.push(candidate);
        }
    }
    out.truncate(count);
    // Always return at least one literal so the AND shape survives; a
    // degenerate negation of a disjoint atom keeps the rule well-formed.
    if out.is_empty() {
        out.push(text_atom(spec, rng));
    }
    out
}

/// Picks a constant near a quantile of the column's values.
fn numeric_constant(
    values: &[f64],
    integral: bool,
    quantile_lo: f64,
    quantile_hi: f64,
    rng: &mut impl Rng,
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    // Column values come from the finite generators in `values.rs`, but
    // `total_cmp` is total and panic-free regardless (NaN sorts last).
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = rng.gen_range(quantile_lo..quantile_hi);
    let idx = ((sorted.len() - 1) as f64 * q) as usize;
    let v = sorted[idx];
    if integral {
        v.round()
    } else {
        (v * 10.0).round() / 10.0
    }
}

/// Samples a numeric rule with thresholds inside the column's range.
///
/// Depth mixture targeting a Table 3 average of ≈1.8: 25% single comparison
/// (1), 10% between (1), 30% negated comparison (2), 12% NOT-between (2),
/// 8% OR of two comparisons (2), 15% AND of comparison and negated between
/// (3): `0.35·1 + 0.5·2 + 0.15·3 = 1.8`. One-sided rules dominate, as they
/// do in real conditional formatting (greater/less templates).
pub fn numeric_rule(spec: &NumericColumnSpec, cells: &[CellValue], rng: &mut impl Rng) -> Rule {
    let values: Vec<f64> = cells.iter().filter_map(CellValue::as_number).collect();
    let any_op = |rng: &mut dyn rand::RngCore| {
        *[
            CmpOp::Greater,
            CmpOp::GreaterEquals,
            CmpOp::Less,
            CmpOp::LessEquals,
        ]
        .choose(rng)
        .unwrap()
    };
    // Bimodal columns: the user cuts in the empty band between the two
    // value groups — a rounded threshold, like real rules. Depth mixture:
    // 20% cmp (1), 10% between (1), 40% NOT cmp (2), 10% OR of equalities
    // (2), 20% AND(cmp, NOT Equal) (3) → average ≈ 1.9.
    if let Some((gap_lo, gap_hi)) = spec.gap {
        let cut = user_round(
            gap_lo + (gap_hi - gap_lo) * 0.5,
            spec.integral,
            gap_lo,
            gap_hi,
        );
        let style = rng.gen_range(0..100);
        if style < 20 {
            let op = any_op(rng);
            return Rule::new(vec![Conjunct::single(RuleLiteral::pos(
                Predicate::NumCmp { op, n: cut },
            ))]);
        } else if style < 30 {
            // Between(cut, max) — "format the upper group".
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let hi = if spec.integral {
                max.round()
            } else {
                (max * 10.0).ceil() / 10.0
            };
            return Rule::new(vec![Conjunct::single(RuleLiteral::pos(
                Predicate::NumBetween { lo: cut, hi },
            ))]);
        } else if style < 70 {
            let op = any_op(rng);
            return Rule::new(vec![Conjunct::single(RuleLiteral::neg(
                Predicate::NumCmp { op, n: cut },
            ))]);
        } else if style < 80 {
            // OR(Equal(v1), Equal(v2)) — the Table 7 shape; exact values
            // from the column.
            let v1 = numeric_constant(&values, spec.integral, 0.05, 0.45, rng);
            let v2 = numeric_constant(&values, spec.integral, 0.55, 0.95, rng);
            return Rule::new(vec![
                Conjunct::single(RuleLiteral::pos(Predicate::NumBetween { lo: v1, hi: v1 })),
                Conjunct::single(RuleLiteral::pos(Predicate::NumBetween { lo: v2, hi: v2 })),
            ]);
        } else {
            // AND(cmp, NOT Equal(v)) — "the upper group except value v".
            let v = numeric_constant(&values, spec.integral, 0.75, 0.95, rng);
            return Rule::new(vec![Conjunct::new(vec![
                RuleLiteral::pos(Predicate::NumCmp {
                    op: CmpOp::Greater,
                    n: cut,
                }),
                RuleLiteral::neg(Predicate::NumBetween { lo: v, hi: v }),
            ])]);
        }
    }
    let style = rng.gen_range(0..100);
    if style < 25 {
        let op = any_op(rng);
        let n = numeric_constant(&values, spec.integral, 0.2, 0.8, rng);
        Rule::new(vec![Conjunct::single(RuleLiteral::pos(
            Predicate::NumCmp { op, n },
        ))])
    } else if style < 35 {
        let a = numeric_constant(&values, spec.integral, 0.1, 0.45, rng);
        let b = numeric_constant(&values, spec.integral, 0.55, 0.9, rng);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Rule::new(vec![Conjunct::single(RuleLiteral::pos(
            Predicate::NumBetween { lo, hi },
        ))])
    } else if style < 65 {
        // NOT(cmp): one-sided, the IF(NOT(A1<=5),TRUE) idiom of Table 7.
        let op = any_op(rng);
        let n = numeric_constant(&values, spec.integral, 0.2, 0.8, rng);
        Rule::new(vec![Conjunct::single(RuleLiteral::neg(
            Predicate::NumCmp { op, n },
        ))])
    } else if style < 77 {
        let a = numeric_constant(&values, spec.integral, 0.2, 0.4, rng);
        let b = numeric_constant(&values, spec.integral, 0.6, 0.8, rng);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Rule::new(vec![Conjunct::single(RuleLiteral::neg(
            Predicate::NumBetween { lo, hi },
        ))])
    } else if style < 85 {
        let low = numeric_constant(&values, spec.integral, 0.1, 0.3, rng);
        let high = numeric_constant(&values, spec.integral, 0.7, 0.9, rng);
        Rule::new(vec![
            Conjunct::single(RuleLiteral::pos(Predicate::NumCmp {
                op: CmpOp::Less,
                n: low,
            })),
            Conjunct::single(RuleLiteral::pos(Predicate::NumCmp {
                op: CmpOp::Greater,
                n: high,
            })),
        ])
    } else {
        // AND(cmp, NOT between): a one-sided depth-3 shape — "large but not
        // in the exception band".
        let cut = numeric_constant(&values, spec.integral, 0.3, 0.5, rng);
        let mid_lo = numeric_constant(&values, spec.integral, 0.55, 0.7, rng);
        let mid_hi = numeric_constant(&values, spec.integral, 0.7, 0.85, rng);
        let (mlo, mhi) = if mid_lo <= mid_hi {
            (mid_lo, mid_hi)
        } else {
            (mid_hi, mid_lo)
        };
        Rule::new(vec![Conjunct::new(vec![
            RuleLiteral::pos(Predicate::NumCmp {
                op: CmpOp::Greater,
                n: cut,
            }),
            RuleLiteral::neg(Predicate::NumBetween { lo: mlo, hi: mhi }),
        ])])
    }
}

/// Rounds a gap midpoint the way a user would (whole numbers, or one
/// decimal), staying strictly inside the gap so execution is unambiguous.
fn user_round(mid: f64, integral: bool, gap_lo: f64, gap_hi: f64) -> f64 {
    let candidates = if integral {
        vec![mid.round(), mid.floor(), mid.ceil()]
    } else {
        vec![
            mid.round(),
            (mid * 10.0).round() / 10.0,
            (mid * 100.0).round() / 100.0,
        ]
    };
    for c in candidates {
        if c > gap_lo && c < gap_hi {
            return c;
        }
    }
    mid
}

/// Samples a date rule on a part of the column's dates.
///
/// Depth mixture targeting a Table 3 average of ≈1.7: 30% single comparison
/// (1), 15% between (1), 40% NOT (2), 15% OR of two comparisons (3 via the
/// NOT arm): `0.45·1 + 0.4·2 + 0.15·3 = 1.7`.
pub fn date_rule(spec: &DateColumnSpec, cells: &[CellValue], rng: &mut impl Rng) -> Rule {
    let _ = spec;
    let dates: Vec<cornet_table::Date> = cells.iter().filter_map(CellValue::as_date).collect();
    let part = *[
        DatePart::Month,
        DatePart::Month,
        DatePart::Year,
        DatePart::Weekday,
        DatePart::Day,
    ]
    .choose(rng)
    .unwrap();
    let mut parts: Vec<i64> = dates.iter().map(|d| part.extract(*d)).collect();
    parts.sort_unstable();
    parts.dedup();
    let pick = |rng: &mut dyn rand::RngCore, parts: &[i64]| -> i64 {
        if parts.is_empty() {
            1
        } else {
            parts[rand::Rng::gen_range(rng, 0..parts.len())]
        }
    };
    let style = rng.gen_range(0..100);
    if style < 30 {
        let op = *[
            CmpOp::Greater,
            CmpOp::GreaterEquals,
            CmpOp::Less,
            CmpOp::LessEquals,
        ]
        .choose(rng)
        .unwrap();
        let n = pick(rng, &parts);
        Rule::new(vec![Conjunct::single(RuleLiteral::pos(
            Predicate::DateCmp { op, part, n },
        ))])
    } else if style < 45 {
        let a = pick(rng, &parts);
        let b = pick(rng, &parts);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Rule::new(vec![Conjunct::single(RuleLiteral::pos(
            Predicate::DateBetween { part, lo, hi },
        ))])
    } else if style < 85 {
        let n = pick(rng, &parts);
        Rule::new(vec![Conjunct::single(RuleLiteral::neg(
            Predicate::DateCmp {
                op: CmpOp::GreaterEquals,
                part,
                n,
            },
        ))])
    } else {
        // OR(cmp, NOT between) — a depth-3 outlier.
        let n = pick(rng, &parts);
        let a = pick(rng, &parts);
        let b = pick(rng, &parts);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Rule::new(vec![
            Conjunct::single(RuleLiteral::pos(Predicate::DateCmp {
                op: CmpOp::Less,
                part,
                n,
            })),
            Conjunct::single(RuleLiteral::neg(Predicate::DateBetween { part, lo, hi })),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{date_column, numeric_column, text_column, NumericFamily};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn text_rules_reference_column_atoms() {
        let mut rng = StdRng::seed_from_u64(3);
        let (cells, spec) = text_column(TextFamily::StatusWords, 40, &mut rng);
        for _ in 0..20 {
            let rule = text_rule(&spec, &cells, &mut rng);
            assert!(rule.predicate_count() >= 1);
            for conj in &rule.condition {
                for lit in &conj.literals {
                    if let Predicate::Text { pattern, .. } = &lit.predicate {
                        assert!(
                            spec.atoms.contains(pattern)
                                || spec.suffix.as_deref() == Some(pattern.as_str()),
                            "pattern {pattern} not from column"
                        );
                    }
                }
            }
            let _ = rule.execute(&cells);
        }
    }

    #[test]
    fn numeric_rules_have_in_range_constants() {
        let mut rng = StdRng::seed_from_u64(4);
        let (cells, spec) = numeric_column(NumericFamily::Integers, 60, &mut rng);
        let values: Vec<f64> = cells.iter().filter_map(CellValue::as_number).collect();
        let (vmin, vmax) = (
            values.iter().cloned().fold(f64::INFINITY, f64::min),
            values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        for _ in 0..20 {
            let rule = numeric_rule(&spec, &cells, &mut rng);
            for conj in &rule.condition {
                for lit in &conj.literals {
                    match &lit.predicate {
                        Predicate::NumCmp { n, .. } => {
                            assert!(*n >= vmin - 1.0 && *n <= vmax + 1.0)
                        }
                        Predicate::NumBetween { lo, hi } => {
                            assert!(lo <= hi);
                            assert!(*lo >= vmin - 1.0 && *hi <= vmax + 1.0);
                        }
                        other => panic!("unexpected predicate {other}"),
                    }
                }
            }
        }
    }

    #[test]
    fn date_rules_use_observed_part_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let (cells, spec) = date_column(50, &mut rng);
        for _ in 0..20 {
            let rule = date_rule(&spec, &cells, &mut rng);
            assert!(rule.predicate_count() >= 1);
            let _ = rule.execute(&cells);
        }
    }

    #[test]
    fn depth_mixtures_hit_table3_targets() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut text_depths = Vec::new();
        let mut num_depths = Vec::new();
        let mut date_depths = Vec::new();
        for _ in 0..600 {
            let (_cells, spec) = text_column(TextFamily::IdCodes, 30, &mut rng);
            text_depths.push(text_rule(&spec, &_cells, &mut rng).depth() as f64);
            let (cells, nspec) = numeric_column(NumericFamily::Integers, 30, &mut rng);
            num_depths.push(numeric_rule(&nspec, &cells, &mut rng).depth() as f64);
            let (cells, dspec) = date_column(30, &mut rng);
            date_depths.push(date_rule(&dspec, &cells, &mut rng).depth() as f64);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Table 3: text 2.3, numeric 1.8, date 1.7 — tolerate ±0.45.
        assert!(
            (avg(&text_depths) - 2.3).abs() < 0.45,
            "text {}",
            avg(&text_depths)
        );
        assert!(
            (avg(&num_depths) - 1.8).abs() < 0.45,
            "numeric {}",
            avg(&num_depths)
        );
        assert!(
            (avg(&date_depths) - 1.7).abs() < 0.45,
            "date {}",
            avg(&date_depths)
        );
    }
}
