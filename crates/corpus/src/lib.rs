//! Synthetic conditional-formatting benchmark generator.
//!
//! The paper's evaluation is built on 105K real tasks extracted from 1.8M
//! crawled Excel workbooks — a closed corpus. This crate replays that corpus
//! *distributionally* (DESIGN.md, substitution 1): it samples columns of
//! realistic text/number/date content, samples a ground-truth conditional
//! formatting rule whose selectivity and grammar depth match the per-type
//! statistics of Table 3, applies the paper's corpus filters (a rule must
//! format ≥ 5 cells, not the whole column, and more than a single cell), and
//! emits `(column, rule, formatting, user formula)` tasks.
//!
//! Everything is driven by a seeded RNG: the same seed yields the same
//! corpus, bit for bit.
//!
//! | Table 3 target | Text | Numeric | Date |
//! |----------------|------|---------|------|
//! | share of tasks | 55%  | 37%     | 8%   |
//! | avg. cells     | 107.5| 184.8   | 73.3 |
//! | avg. formatted | 32.1 | 111.2   | 23.5 |
//! | avg. rule depth| 2.3  | 1.8     | 1.7  |

pub mod json;
pub mod manual;
pub mod multirule;
pub mod rulegen;
pub mod stats;
pub mod taskgen;
pub mod userformula;
pub mod values;

pub use manual::{generate_manual_corpus, ManualTask};
pub use multirule::{generate_multirule_corpus, MultiRuleClass, MultiRuleConfig, MultiRuleTask};
pub use stats::{corpus_stats, CorpusStats, TypeStats};
pub use taskgen::{generate_corpus, generate_corpus_sharded, Corpus, CorpusConfig, Task};
