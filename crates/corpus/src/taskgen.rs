//! Task generation: columns + ground-truth rules + corpus filters.

use crate::rulegen::{date_rule, numeric_rule, text_rule};
use crate::userformula::user_formula;
use crate::values::{date_column, numeric_column, text_column, NumericFamily, TextFamily};
use cornet_core::rule::Rule;
use cornet_formula::Expr;
use cornet_table::{BitVec, CellValue, DataType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One benchmark task: a column, its ground-truth rule and formatting, and
/// the user-style formula equivalent.
#[derive(Debug, Clone)]
pub struct Task {
    /// Stable identifier.
    pub id: u64,
    /// Column cells.
    pub cells: Vec<CellValue>,
    /// Column type.
    pub dtype: DataType,
    /// Ground-truth rule.
    pub rule: Rule,
    /// `rule` executed over `cells`.
    pub formatted: BitVec,
    /// User-written formula equivalent (execution-identical to `rule`).
    pub user_formula: Expr,
    /// True when the simulated user wrote a custom formula (vs. picking a
    /// predefined template) — the population Figures 15/16 study.
    pub custom_formula: bool,
}

impl Task {
    /// Indices of formatted cells, in column order.
    pub fn formatted_indices(&self) -> Vec<usize> {
        self.formatted.iter_ones().collect()
    }

    /// The first `k` formatted cells — the paper's default "user gives
    /// examples top to bottom" protocol.
    pub fn examples(&self, k: usize) -> Vec<usize> {
        self.formatted.iter_ones().take(k).collect()
    }
}

/// Corpus generation configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed; same seed, same corpus.
    pub seed: u64,
    /// Number of tasks to generate.
    pub n_tasks: usize,
    /// Task-type mixture `[text, numeric, date]`, matching Table 3
    /// (13.81K : 9.32K : 1.87K ≈ 0.55 : 0.37 : 0.08).
    pub type_mix: [f64; 3],
    /// Mean column lengths per type (Table 3: 107.5 / 184.8 / 73.3).
    pub mean_cells: [f64; 3],
    /// Probability a task's user wrote a custom formula rather than using a
    /// template.
    pub custom_formula_rate: f64,
    /// Verbosity of user formulas (see [`crate::userformula`]).
    pub user_verbosity: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            n_tasks: 500,
            type_mix: [0.55, 0.37, 0.08],
            mean_cells: [107.5, 184.8, 73.3],
            custom_formula_rate: 0.45,
            user_verbosity: 0.8,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The tasks.
    pub tasks: Vec<Task>,
}

impl Corpus {
    /// Splits into train/test by task order (tasks are i.i.d. by
    /// construction). `train_fraction` ∈ (0, 1).
    pub fn split(&self, train_fraction: f64) -> (Vec<Task>, Vec<Task>) {
        let cut = ((self.tasks.len() as f64) * train_fraction).round() as usize;
        let cut = cut.min(self.tasks.len());
        (self.tasks[..cut].to_vec(), self.tasks[cut..].to_vec())
    }

    /// Tasks of one type.
    pub fn of_type(&self, dtype: DataType) -> Vec<&Task> {
        self.tasks.iter().filter(|t| t.dtype == dtype).collect()
    }
}

/// Generates a corpus. Each task is rejection-sampled until the paper's
/// corpus filters pass: the rule formats at least 5 cells, not the entire
/// column, and more than a single cell (§5.0.1).
pub fn generate_corpus(config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tasks = Vec::with_capacity(config.n_tasks);
    let mut id = 0u64;
    while tasks.len() < config.n_tasks {
        let r: f64 = rng.gen();
        let dtype = if r < config.type_mix[0] {
            DataType::Text
        } else if r < config.type_mix[0] + config.type_mix[1] {
            DataType::Number
        } else {
            DataType::Date
        };
        if let Some(task) = generate_task(id, dtype, config, &mut rng) {
            tasks.push(task);
            id += 1;
        }
    }
    Corpus { tasks }
}

/// Generates a corpus sharded across the [`cornet_pool`] worker threads.
///
/// Unlike [`generate_corpus`], which advances one RNG stream through every
/// task (making the output depend on generation order), each task slot `i`
/// here derives its own seed from `(config.seed, i)` via SplitMix64 and is
/// generated independently. The result is **byte-identical for any shard
/// count and any thread count** — `n_shards` only controls how the slots
/// are batched onto workers — which is what makes §5-scale corpora (1.7M
/// tables) feasible to generate in parallel and to reproduce anywhere.
///
/// The value stream differs from [`generate_corpus`]'s for the same seed;
/// treat the two generators as distinct corpora.
pub fn generate_corpus_sharded(config: &CorpusConfig, n_shards: usize) -> Corpus {
    let n_shards = n_shards.clamp(1, config.n_tasks.max(1));
    let per_shard = config.n_tasks.div_ceil(n_shards);
    let shards: Vec<Task> = cornet_pool::par_flat_map(n_shards, |s| {
        let lo = s * per_shard;
        let hi = ((s + 1) * per_shard).min(config.n_tasks);
        (lo..hi)
            .map(|slot| generate_slot_task(slot as u64, config))
            .collect()
    });
    Corpus { tasks: shards }
}

/// Generates the task for one slot of a sharded corpus: a fresh RNG seeded
/// from `(config.seed, slot)`, redrawing the task type and retrying until
/// the corpus filters pass. Depends only on the root seed and the slot
/// index, never on neighbouring slots.
fn generate_slot_task(slot: u64, config: &CorpusConfig) -> Task {
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, slot));
    loop {
        let r: f64 = rng.gen();
        let dtype = if r < config.type_mix[0] {
            DataType::Text
        } else if r < config.type_mix[0] + config.type_mix[1] {
            DataType::Number
        } else {
            DataType::Date
        };
        if let Some(task) = generate_task(slot, dtype, config, &mut rng) {
            return task;
        }
    }
}

/// SplitMix64 finalizer over the root seed and a stream index; decorrelates
/// per-slot streams even for adjacent slots or adjacent root seeds.
fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates one task of the requested type, or `None` if rejection
/// sampling failed (caller retries with fresh randomness).
pub fn generate_task(
    id: u64,
    dtype: DataType,
    config: &CorpusConfig,
    rng: &mut StdRng,
) -> Option<Task> {
    let mean = match dtype {
        DataType::Text => config.mean_cells[0],
        DataType::Number => config.mean_cells[1],
        DataType::Date => config.mean_cells[2],
    };
    // Column lengths: lognormal-ish around the Table 3 mean, at least 10.
    let n = ((mean * (0.4 + 1.2 * rng.gen::<f64>())) as usize).max(10);
    generate_task_with_len(id, dtype, n, config, rng)
}

/// Generates a task with an exact column length (used by the column-length
/// and unformatted-row sweeps, Figures 9 and 13).
pub fn generate_task_with_len(
    id: u64,
    dtype: DataType,
    n: usize,
    config: &CorpusConfig,
    rng: &mut StdRng,
) -> Option<Task> {
    for _attempt in 0..8 {
        let (cells, rule) = match dtype {
            DataType::Text => {
                let family = *[
                    TextFamily::IdCodes,
                    TextFamily::StatusWords,
                    TextFamily::Names,
                    TextFamily::Emails,
                    TextFamily::Products,
                ]
                .choose(rng)
                .unwrap();
                let (cells, spec) = text_column(family, n, rng);
                let rule = text_rule(&spec, &cells, rng);
                (cells, rule)
            }
            DataType::Number => {
                let family = *[
                    NumericFamily::Integers,
                    NumericFamily::Measurements,
                    NumericFamily::Prices,
                    NumericFamily::Percentages,
                ]
                .choose(rng)
                .unwrap();
                let (cells, spec) = numeric_column(family, n, rng);
                let rule = numeric_rule(&spec, &cells, rng);
                (cells, rule)
            }
            DataType::Date => {
                let (cells, spec) = date_column(n, rng);
                let rule = date_rule(&spec, &cells, rng);
                (cells, rule)
            }
        };
        let formatted = rule.execute(&cells);
        let count = formatted.count_ones();
        // Corpus filters (§5.0.1): ≥5 formatted cells, not the entire
        // column, not a single cell.
        if count < 5 || count == cells.len() {
            continue;
        }
        let custom_formula = rng.gen_bool(config.custom_formula_rate);
        let verbosity = if custom_formula {
            config.user_verbosity
        } else {
            0.0
        };
        let user_formula = user_formula(&rule, verbosity, rng);
        return Some(Task {
            id,
            cells,
            dtype,
            rule,
            formatted,
            user_formula,
            custom_formula,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_formula::evaluate_bool;

    fn small_corpus(n: usize, seed: u64) -> Corpus {
        generate_corpus(&CorpusConfig {
            n_tasks: n,
            seed,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn corpus_filters_hold() {
        let corpus = small_corpus(60, 1);
        assert_eq!(corpus.tasks.len(), 60);
        for task in &corpus.tasks {
            let count = task.formatted.count_ones();
            assert!(count >= 5, "rule formats too few cells");
            assert!(count < task.cells.len(), "rule formats entire column");
            assert!(task.cells.len() >= 10);
        }
    }

    #[test]
    fn formatting_matches_rule_execution() {
        let corpus = small_corpus(30, 2);
        for task in &corpus.tasks {
            assert_eq!(task.rule.execute(&task.cells), task.formatted);
        }
    }

    #[test]
    fn user_formula_execution_matches_rule() {
        let corpus = small_corpus(30, 3);
        for task in &corpus.tasks {
            for cell in &task.cells {
                assert_eq!(
                    evaluate_bool(&task.user_formula, cell),
                    task.rule.eval(cell),
                    "task {}: formula {} vs rule {}",
                    task.id,
                    task.user_formula,
                    task.rule
                );
            }
        }
    }

    #[test]
    fn type_mix_is_roughly_table3() {
        let corpus = small_corpus(300, 4);
        let text = corpus.of_type(DataType::Text).len() as f64 / 300.0;
        let num = corpus.of_type(DataType::Number).len() as f64 / 300.0;
        let date = corpus.of_type(DataType::Date).len() as f64 / 300.0;
        assert!((text - 0.55).abs() < 0.1, "text share {text}");
        assert!((num - 0.37).abs() < 0.1, "numeric share {num}");
        assert!((date - 0.08).abs() < 0.06, "date share {date}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_corpus(10, 5);
        let b = small_corpus(10, 5);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.cells, y.cells);
            assert_eq!(x.rule.to_string(), y.rule.to_string());
        }
        let c = small_corpus(10, 6);
        assert!(a
            .tasks
            .iter()
            .zip(&c.tasks)
            .any(|(x, y)| x.cells != y.cells));
    }

    fn corpus_fingerprint(corpus: &Corpus) -> Vec<(u64, Vec<CellValue>, String, String)> {
        corpus
            .tasks
            .iter()
            .map(|t| {
                (
                    t.id,
                    t.cells.clone(),
                    t.rule.to_string(),
                    t.user_formula.to_string(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_corpus_is_identical_for_any_shard_or_thread_count() {
        let config = CorpusConfig {
            n_tasks: 12,
            seed: 99,
            ..CorpusConfig::default()
        };
        let reference = cornet_pool::with_threads(1, || {
            corpus_fingerprint(&generate_corpus_sharded(&config, 1))
        });
        for (threads, shards) in [(1, 3), (2, 2), (4, 5), (4, 12), (2, 64)] {
            let got = cornet_pool::with_threads(threads, || {
                corpus_fingerprint(&generate_corpus_sharded(&config, shards))
            });
            assert_eq!(got, reference, "threads={threads} shards={shards}");
        }
    }

    #[test]
    fn sharded_corpus_passes_the_corpus_filters() {
        let config = CorpusConfig {
            n_tasks: 24,
            seed: 13,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus_sharded(&config, 4);
        assert_eq!(corpus.tasks.len(), 24);
        for (slot, task) in corpus.tasks.iter().enumerate() {
            assert_eq!(task.id, slot as u64, "ids are slot indices in order");
            let count = task.formatted.count_ones();
            assert!(count >= 5 && count < task.cells.len());
            assert_eq!(task.rule.execute(&task.cells), task.formatted);
        }
    }

    #[test]
    fn sharded_corpora_differ_across_root_seeds() {
        let a = generate_corpus_sharded(
            &CorpusConfig {
                n_tasks: 6,
                seed: 1,
                ..CorpusConfig::default()
            },
            2,
        );
        let b = generate_corpus_sharded(
            &CorpusConfig {
                n_tasks: 6,
                seed: 2,
                ..CorpusConfig::default()
            },
            2,
        );
        assert!(a
            .tasks
            .iter()
            .zip(&b.tasks)
            .any(|(x, y)| x.cells != y.cells));
    }

    #[test]
    fn split_partitions() {
        let corpus = small_corpus(50, 7);
        let (train, test) = corpus.split(0.8);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn examples_are_top_down() {
        let corpus = small_corpus(10, 8);
        for task in &corpus.tasks {
            let ex = task.examples(3);
            assert!(ex.len() <= 3);
            let all = task.formatted_indices();
            assert_eq!(ex, all[..ex.len().min(all.len())].to_vec());
        }
    }
}
