//! Manually formatted columns (Q5, §5.5).
//!
//! "From our corpus of spreadsheets, we sample 100K columns with at least 5
//! non-empty cells, of which at least 3 have a custom background color
//! applied without conditional formatting." Most such columns follow a
//! latent rule the user applied by hand; a minority are idiosyncratic
//! (ad-hoc highlights with no data logic). The paper finds a learnable rule
//! with fewer predicates than formatted cells for 93.4% of columns; the
//! generator reproduces that split with a configurable noise rate.

use crate::taskgen::{generate_task, CorpusConfig};
use cornet_table::{BitVec, CellValue, DataType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A manually formatted column: formatting mask but *no* recorded rule.
#[derive(Debug, Clone)]
pub struct ManualTask {
    /// Column cells.
    pub cells: Vec<CellValue>,
    /// Which cells the user hand-colored.
    pub formatted: BitVec,
    /// Whether the generator drew the formatting from a latent rule
    /// (hidden from learners; used only to validate the experiment).
    pub rule_backed: bool,
}

/// Configuration for the manual-formatting corpus.
#[derive(Debug, Clone)]
pub struct ManualConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of columns.
    pub n_columns: usize,
    /// Fraction of columns whose formatting follows a latent rule.
    pub rule_backed_rate: f64,
}

impl Default for ManualConfig {
    fn default() -> Self {
        ManualConfig {
            seed: 0xBEEF,
            n_columns: 200,
            rule_backed_rate: 0.93,
        }
    }
}

/// Generates manually formatted columns.
pub fn generate_manual_corpus(config: &ManualConfig) -> Vec<ManualTask> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base = CorpusConfig {
        seed: config.seed ^ 0x5a5a,
        ..CorpusConfig::default()
    };
    let mut out = Vec::with_capacity(config.n_columns);
    let mut id = 0u64;
    while out.len() < config.n_columns {
        let dtype = match rng.gen_range(0..100) {
            0..=54 => DataType::Text,
            55..=91 => DataType::Number,
            _ => DataType::Date,
        };
        let Some(task) = generate_task(id, dtype, &base, &mut rng) else {
            continue;
        };
        id += 1;
        let rule_backed = rng.gen_bool(config.rule_backed_rate);
        let formatted = if rule_backed {
            task.formatted.clone()
        } else {
            // Idiosyncratic manual highlights: a random subset of 3..n-1
            // cells with no data logic.
            let n = task.cells.len();
            let k = rng.gen_range(3..n.max(4).min(12));
            let mut mask = BitVec::zeros(n);
            while mask.count_ones() < k {
                mask.set(rng.gen_range(0..n), true);
            }
            mask
        };
        if formatted.count_ones() < 3 {
            continue;
        }
        out.push(ManualTask {
            cells: task.cells,
            formatted,
            rule_backed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_columns() {
        let tasks = generate_manual_corpus(&ManualConfig {
            n_columns: 40,
            ..ManualConfig::default()
        });
        assert_eq!(tasks.len(), 40);
        for t in &tasks {
            assert!(t.formatted.count_ones() >= 3, "≥3 hand-colored cells");
            assert!(t.cells.len() >= 5);
        }
    }

    #[test]
    fn rule_backed_rate_is_respected() {
        let tasks = generate_manual_corpus(&ManualConfig {
            n_columns: 300,
            rule_backed_rate: 0.9,
            ..ManualConfig::default()
        });
        let backed = tasks.iter().filter(|t| t.rule_backed).count() as f64 / 300.0;
        assert!((backed - 0.9).abs() < 0.07, "rate {backed}");
    }

    #[test]
    fn deterministic() {
        let config = ManualConfig {
            n_columns: 10,
            ..ManualConfig::default()
        };
        let a = generate_manual_corpus(&config);
        let b = generate_manual_corpus(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells, y.cells);
            assert_eq!(x.formatted, y.formatted);
        }
    }
}
