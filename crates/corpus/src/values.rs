//! Column content generators: the kinds of data real spreadsheets hold.

use cornet_table::{CellValue, Date};
use rand::seq::SliceRandom;
use rand::Rng;

/// A family of text columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFamily {
    /// Id codes such as `RW-187`, optionally suffixed (`RW-131-T`).
    IdCodes,
    /// Status words (`High` / `Medium` / `Low`, `Pass` / `Fail`, …).
    StatusWords,
    /// Person names.
    Names,
    /// E-mail addresses.
    Emails,
    /// Product labels with model numbers.
    Products,
}

/// A family of numeric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericFamily {
    /// Uniform integers in a range.
    Integers,
    /// Rounded normal floats (measurements).
    Measurements,
    /// Log-normal-ish prices with two decimals.
    Prices,
    /// Percentages in 0..=100.
    Percentages,
}

/// Word pools for status columns. Each pool is a plausible label set.
pub const STATUS_POOLS: &[&[&str]] = &[
    &["High", "Medium", "Low"],
    &["Pass", "Fail", "Pending"],
    &["OK", "Error", "Warning"],
    &["Open", "Closed", "In Progress"],
    &["Critical", "Major", "Minor", "Trivial"],
    &["Yes", "No", "Maybe"],
    &["Approved", "Rejected", "Review"],
    &["Shipped", "Processing", "Cancelled", "Returned"],
];

const FIRST_NAMES: &[&str] = &[
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Hugo", "Iris", "Jack", "Kara",
    "Liam", "Mona", "Nina", "Omar", "Pam", "Quinn", "Rosa", "Sam", "Tara", "Uma", "Victor",
    "Wendy", "Xander", "Yara", "Zane",
];

const LAST_NAMES: &[&str] = &[
    "Smith", "Jones", "Brown", "Taylor", "Wilson", "Davies", "Evans", "Thomas", "Johnson",
    "Roberts", "Walker", "Wright", "Green", "Hall", "Wood", "Harris", "Martin", "Cooper", "King",
    "Lee",
];

const DOMAINS: &[&str] = &[
    "example.com",
    "mail.org",
    "corp.net",
    "school.edu",
    "startup.io",
];

const PRODUCT_WORDS: &[&str] = &[
    "Laptop", "Monitor", "Keyboard", "Mouse", "Desk", "Chair", "Cable", "Adapter", "Printer",
    "Scanner", "Tablet", "Phone", "Camera", "Speaker", "Headset",
];

const ID_PREFIXES: &[&[&str]] = &[
    &["RW", "RS", "TW"],
    &["INV", "ORD", "REF"],
    &["A", "B", "C", "D"],
    &["EU", "US", "APAC"],
    &["PRJ", "TSK", "BUG"],
];

/// Parameters of a generated text column, retained so the rule generator can
/// sample constants that actually occur.
#[derive(Debug, Clone)]
pub struct TextColumnSpec {
    /// The family used.
    pub family: TextFamily,
    /// Distinct atoms rules can target: prefixes for id codes, the word pool
    /// for statuses, last names, domains or product words otherwise.
    pub atoms: Vec<String>,
    /// Optional suffix some id codes carry (e.g. `-T`).
    pub suffix: Option<String>,
}

/// Generates a text column of `n` cells.
pub fn text_column(
    family: TextFamily,
    n: usize,
    rng: &mut impl Rng,
) -> (Vec<CellValue>, TextColumnSpec) {
    match family {
        TextFamily::IdCodes => {
            let prefixes = *ID_PREFIXES.choose(rng).unwrap();
            let k = rng.gen_range(2..=prefixes.len());
            let chosen: Vec<String> = prefixes
                .choose_multiple(rng, k)
                .map(|s| s.to_string())
                .collect();
            let suffix = if rng.gen_bool(0.4) {
                Some(["-T", "-X", "-OLD"].choose(rng).unwrap().to_string())
            } else {
                None
            };
            let cells = (0..n)
                .map(|_| {
                    let p = chosen.choose(rng).unwrap();
                    let num = rng.gen_range(100..1000);
                    let mut s = format!("{p}-{num}");
                    if let Some(suf) = &suffix {
                        if rng.gen_bool(0.15) {
                            s.push_str(suf);
                        }
                    }
                    CellValue::Text(s)
                })
                .collect();
            (
                cells,
                TextColumnSpec {
                    family,
                    atoms: chosen,
                    suffix,
                },
            )
        }
        TextFamily::StatusWords => {
            let pool = *STATUS_POOLS.choose(rng).unwrap();
            let cells = (0..n)
                .map(|_| CellValue::Text(pool.choose(rng).unwrap().to_string()))
                .collect();
            (
                cells,
                TextColumnSpec {
                    family,
                    atoms: pool.iter().map(|s| s.to_string()).collect(),
                    suffix: None,
                },
            )
        }
        TextFamily::Names => {
            let k = rng.gen_range(4..=8);
            let lasts: Vec<String> = LAST_NAMES
                .choose_multiple(rng, k)
                .map(|s| s.to_string())
                .collect();
            let cells = (0..n)
                .map(|_| {
                    let first = FIRST_NAMES.choose(rng).unwrap();
                    let last = lasts.choose(rng).unwrap();
                    CellValue::Text(format!("{first} {last}"))
                })
                .collect();
            (
                cells,
                TextColumnSpec {
                    family,
                    atoms: lasts,
                    suffix: None,
                },
            )
        }
        TextFamily::Emails => {
            let k = rng.gen_range(2..=4);
            let domains: Vec<String> = DOMAINS
                .choose_multiple(rng, k)
                .map(|s| s.to_string())
                .collect();
            let cells = (0..n)
                .map(|_| {
                    let first = FIRST_NAMES.choose(rng).unwrap().to_lowercase();
                    let last = LAST_NAMES.choose(rng).unwrap().to_lowercase();
                    let domain = domains.choose(rng).unwrap();
                    CellValue::Text(format!("{first}.{last}@{domain}"))
                })
                .collect();
            (
                cells,
                TextColumnSpec {
                    family,
                    atoms: domains,
                    suffix: None,
                },
            )
        }
        TextFamily::Products => {
            let k = rng.gen_range(3..=6);
            let words: Vec<String> = PRODUCT_WORDS
                .choose_multiple(rng, k)
                .map(|s| s.to_string())
                .collect();
            let cells = (0..n)
                .map(|_| {
                    let word = words.choose(rng).unwrap();
                    let model = rng.gen_range(10..100);
                    CellValue::Text(format!("{word} {model}"))
                })
                .collect();
            (
                cells,
                TextColumnSpec {
                    family,
                    atoms: words,
                    suffix: None,
                },
            )
        }
    }
}

/// Parameters of a generated numeric column.
#[derive(Debug, Clone)]
pub struct NumericColumnSpec {
    /// The family used.
    pub family: NumericFamily,
    /// Low end of the sampled value range.
    pub lo: f64,
    /// High end of the sampled value range.
    pub hi: f64,
    /// Whether all values are integral.
    pub integral: bool,
    /// When the column is bimodal, the empty interval between the two value
    /// clusters `(max of lower cluster, min of upper cluster)`. Real
    /// spreadsheet columns frequently separate into groups (normal vs
    /// outlier readings, cheap vs premium items), and user rules cut in the
    /// gap; thresholds placed there are robust to boundary ambiguity.
    pub gap: Option<(f64, f64)>,
}

/// Generates a numeric column of `n` cells. With probability ~0.7 the
/// column is *bimodal*: two value clusters separated by an empty band, the
/// structure user-written threshold rules typically exploit (columns that
/// carry a threshold rule usually have the group structure the rule names).
pub fn numeric_column(
    family: NumericFamily,
    n: usize,
    rng: &mut impl Rng,
) -> (Vec<CellValue>, NumericColumnSpec) {
    let bimodal = rng.gen_bool(0.7);
    let (mut values, lo, hi, integral): (Vec<f64>, f64, f64, bool) = match family {
        NumericFamily::Integers => {
            let lo = rng.gen_range(0..50) as f64;
            let hi = lo + rng.gen_range(40..500) as f64;
            let values = if bimodal {
                let split = lo + (hi - lo) * rng.gen_range(0.35..0.65);
                let gap = (hi - lo) * rng.gen_range(0.12..0.3);
                let upper_share = rng.gen_range(0.25..0.6);
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(upper_share) {
                            rng.gen_range((split + gap).min(hi)..=hi).round()
                        } else {
                            rng.gen_range(lo..=split).round()
                        }
                    })
                    .collect()
            } else {
                (0..n).map(|_| rng.gen_range(lo..=hi).round()).collect()
            };
            (values, lo, hi, true)
        }
        NumericFamily::Measurements => {
            let mean = rng.gen_range(10.0..1000.0);
            let sd = mean * rng.gen_range(0.05..0.2);
            let round2 = |v: f64| (v * 100.0).round() / 100.0;
            let values = if bimodal {
                let mean2 = mean + sd * rng.gen_range(8.0..15.0);
                let upper_share = rng.gen_range(0.25..0.6);
                (0..n)
                    .map(|_| {
                        let z: f64 = sample_normal(rng).clamp(-3.0, 3.0);
                        let m = if rng.gen_bool(upper_share) {
                            mean2
                        } else {
                            mean
                        };
                        round2(m + sd * z)
                    })
                    .collect()
            } else {
                (0..n)
                    .map(|_| round2(mean + sd * sample_normal(rng)))
                    .collect()
            };
            (values, mean - 3.0 * sd, mean + 15.0 * sd, false)
        }
        NumericFamily::Prices => {
            let base = rng.gen_range(5.0..200.0);
            let round2 = |v: f64| (v * 100.0).round() / 100.0;
            let values = if bimodal {
                let premium = base * rng.gen_range(3.0..6.0);
                let upper_share = rng.gen_range(0.25..0.6);
                (0..n)
                    .map(|_| {
                        let z: f64 = sample_normal(rng).clamp(-2.5, 2.5);
                        let b = if rng.gen_bool(upper_share) {
                            premium
                        } else {
                            base
                        };
                        round2(b * (0.12 * z).exp())
                    })
                    .collect()
            } else {
                (0..n)
                    .map(|_| round2(base * (0.3 * sample_normal(rng)).exp()))
                    .collect()
            };
            (values, base * 0.3, base * 8.0, false)
        }
        NumericFamily::Percentages => {
            let values = if bimodal {
                let upper_share = rng.gen_range(0.25..0.6);
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(upper_share) {
                            rng.gen_range(65..=100) as f64
                        } else {
                            rng.gen_range(0..=45) as f64
                        }
                    })
                    .collect()
            } else {
                (0..n).map(|_| rng.gen_range(0..=100) as f64).collect()
            };
            (values, 0.0, 100.0, true)
        }
    };
    // Detect the widest empty band: it defines where a user rule would cut.
    let gap = widest_gap(&mut values, lo, hi);
    let cells = values.into_iter().map(CellValue::Number).collect();
    (
        cells,
        NumericColumnSpec {
            family,
            lo,
            hi,
            integral,
            gap,
        },
    )
}

/// Finds the widest interior gap between consecutive sorted values, if it
/// is wide enough (≥ 8% of the span) to be a meaningful group separator.
fn widest_gap(values: &mut [f64], lo: f64, hi: f64) -> Option<(f64, f64)> {
    if values.len() < 4 {
        return None;
    }
    // Generator values are finite by construction, but `total_cmp` costs
    // nothing and cannot panic if that ever changes (NaN sorts last).
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let span = (hi - lo).max(1e-9);
    let mut best: Option<(f64, f64)> = None;
    for pair in sorted.windows(2) {
        let width = pair[1] - pair[0];
        if width / span >= 0.08 {
            // Only interior gaps with data on both sides count.
            let below = sorted.iter().filter(|&&v| v <= pair[0]).count();
            let above = sorted.iter().filter(|&&v| v >= pair[1]).count();
            if below >= 2 && above >= 2 {
                match best {
                    Some((a, b)) if pair[1] - pair[0] <= b - a => {}
                    _ => best = Some((pair[0], pair[1])),
                }
            }
        }
    }
    best
}

/// Parameters of a generated date column.
#[derive(Debug, Clone)]
pub struct DateColumnSpec {
    /// First day of the sampled range.
    pub start: Date,
    /// Number of days in the range.
    pub span_days: i32,
}

/// Generates a date column of `n` cells, uniform over a 1–3 year window.
pub fn date_column(n: usize, rng: &mut impl Rng) -> (Vec<CellValue>, DateColumnSpec) {
    let start_year = rng.gen_range(2018..=2023);
    let start = Date::from_ymd(start_year, 1, 1).unwrap();
    let span_days = rng.gen_range(365..=3 * 365);
    let cells = (0..n)
        .map(|_| CellValue::Date(start.add_days(rng.gen_range(0..span_days))))
        .collect();
    (cells, DateColumnSpec { start, span_days })
}

/// Standard normal via Box–Muller.
pub fn sample_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_table::DataType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn text_columns_have_right_type_and_atoms() {
        let mut r = rng();
        for family in [
            TextFamily::IdCodes,
            TextFamily::StatusWords,
            TextFamily::Names,
            TextFamily::Emails,
            TextFamily::Products,
        ] {
            let (cells, spec) = text_column(family, 50, &mut r);
            assert_eq!(cells.len(), 50);
            assert!(cells.iter().all(|c| c.data_type() == Some(DataType::Text)));
            assert!(!spec.atoms.is_empty());
            // Atoms must actually occur in the data.
            let joined: String = cells
                .iter()
                .map(|c| c.display_string().to_lowercase())
                .collect::<Vec<_>>()
                .join("|");
            assert!(
                spec.atoms
                    .iter()
                    .any(|a| joined.contains(&a.to_lowercase())),
                "{family:?}: no atom occurs in the column"
            );
        }
    }

    #[test]
    fn numeric_columns_within_family_shape() {
        let mut r = rng();
        let (cells, spec) = numeric_column(NumericFamily::Percentages, 80, &mut r);
        assert!(cells
            .iter()
            .all(|c| matches!(c, CellValue::Number(n) if (0.0..=100.0).contains(n))));
        assert!(spec.integral);
        let (cells, spec) = numeric_column(NumericFamily::Integers, 80, &mut r);
        assert!(cells
            .iter()
            .all(|c| matches!(c, CellValue::Number(n) if n.fract() == 0.0)));
        assert!(spec.hi > spec.lo);
    }

    #[test]
    fn date_columns_within_span() {
        let mut r = rng();
        let (cells, spec) = date_column(60, &mut r);
        for c in &cells {
            let d = c.as_date().unwrap();
            assert!(d >= spec.start);
            assert!(d < spec.start.add_days(spec.span_days));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = text_column(TextFamily::IdCodes, 20, &mut rng());
        let (b, _) = text_column(TextFamily::IdCodes, 20, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5000).map(|_| sample_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }
}
