//! Rendering ground-truth rules the way *users* write them.
//!
//! Q4 of the paper (Figures 15/16, Table 7) compares Cornet's learned rules
//! against user-written custom formulas, which are typically longer than
//! necessary: `IF(LEFT(A1,2)="Dr",TRUE,FALSE)` instead of
//! `TextStartsWith("Dr")`, `ISNUMBER(SEARCH("Pass",A1))` instead of
//! `TextContains("Pass")`, `IF(NOT(A1<=5), TRUE)` instead of
//! `GreaterThan(5)`. This module renders a rule into such a formula, with
//! seeded random verbosity, while *preserving execution semantics exactly*.

use cornet_core::predicate::{CmpOp, DatePart, Predicate, TextOp};
use cornet_core::rule::{Conjunct, Rule, RuleLiteral};
use cornet_formula::{BinaryOp, Expr};
use rand::Rng;

/// Renders the rule as a user-style custom formula. `verbosity ∈ [0, 1]`
/// scales how often gratuitous wrapping is applied (0 = minimal idioms,
/// 1 = maximal bloat).
pub fn user_formula(rule: &Rule, verbosity: f64, rng: &mut impl Rng) -> Expr {
    let inner = condition_expr(rule, verbosity, rng);
    // The classic IF(cond, TRUE, FALSE) wrapper.
    if rng.gen_bool(0.5 * verbosity) {
        Expr::call("IF", vec![inner, Expr::Bool(true), Expr::Bool(false)])
    } else if rng.gen_bool(0.3 * verbosity) {
        // IF(cond, TRUE) — the two-argument variant from Table 7.
        Expr::call("IF", vec![inner, Expr::Bool(true)])
    } else {
        inner
    }
}

fn condition_expr(rule: &Rule, verbosity: f64, rng: &mut impl Rng) -> Expr {
    let mut parts: Vec<Expr> = rule
        .condition
        .iter()
        .map(|c| conjunct_expr(c, verbosity, rng))
        .collect();
    match parts.len() {
        0 => Expr::Bool(false),
        1 => parts.pop().unwrap(),
        _ => Expr::call("OR", parts),
    }
}

fn conjunct_expr(conjunct: &Conjunct, verbosity: f64, rng: &mut impl Rng) -> Expr {
    let mut parts: Vec<Expr> = conjunct
        .literals
        .iter()
        .map(|l| literal_expr(l, verbosity, rng))
        .collect();
    match parts.len() {
        0 => Expr::Bool(true),
        1 => parts.pop().unwrap(),
        _ => Expr::call("AND", parts),
    }
}

fn literal_expr(literal: &RuleLiteral, verbosity: f64, rng: &mut impl Rng) -> Expr {
    if literal.negated {
        // Users sometimes write the inverted comparison instead of NOT.
        if let Predicate::NumCmp { op, n } = &literal.predicate {
            if rng.gen_bool(0.5) {
                let inverted = match op {
                    CmpOp::Greater => CmpOp::LessEquals,
                    CmpOp::GreaterEquals => CmpOp::Less,
                    CmpOp::Less => CmpOp::GreaterEquals,
                    CmpOp::LessEquals => CmpOp::Greater,
                };
                return predicate_expr(
                    &Predicate::NumCmp {
                        op: inverted,
                        n: *n,
                    },
                    verbosity,
                    rng,
                );
            }
        }
        Expr::call(
            "NOT",
            vec![predicate_expr(&literal.predicate, verbosity, rng)],
        )
    } else {
        predicate_expr(&literal.predicate, verbosity, rng)
    }
}

fn predicate_expr(p: &Predicate, verbosity: f64, rng: &mut impl Rng) -> Expr {
    let cell = Expr::current_cell;
    match p {
        Predicate::NumCmp { op, n } => {
            if rng.gen_bool(0.35 * verbosity) {
                // IF(NOT(A1<=5), TRUE) idiom: negate the inverted operator.
                let inverted = match op {
                    CmpOp::Greater => CmpOp::LessEquals,
                    CmpOp::GreaterEquals => CmpOp::Less,
                    CmpOp::Less => CmpOp::GreaterEquals,
                    CmpOp::LessEquals => CmpOp::Greater,
                };
                Expr::call("NOT", vec![cmp_expr(inverted, cell(), *n)])
            } else {
                cmp_expr(*op, cell(), *n)
            }
        }
        Predicate::NumBetween { lo, hi } => Expr::call(
            "AND",
            vec![
                Expr::binary(BinaryOp::Ge, cell(), Expr::Number(*lo)),
                Expr::binary(BinaryOp::Le, cell(), Expr::Number(*hi)),
            ],
        ),
        Predicate::DateCmp { op, part, n } => cmp_expr(*op, part_expr(*part), *n as f64),
        Predicate::DateBetween { part, lo, hi } => Expr::call(
            "AND",
            vec![
                Expr::binary(BinaryOp::Ge, part_expr(*part), Expr::Number(*lo as f64)),
                Expr::binary(BinaryOp::Le, part_expr(*part), Expr::Number(*hi as f64)),
            ],
        ),
        Predicate::Text { op, pattern } => match op {
            TextOp::Equals => {
                if rng.gen_bool(0.3 * verbosity) {
                    // Case-insensitive EXACT over uppercased operands keeps
                    // the semantics of the case-insensitive predicate.
                    Expr::call(
                        "EXACT",
                        vec![
                            Expr::call("UPPER", vec![cell()]),
                            Expr::Text(pattern.to_uppercase()),
                        ],
                    )
                } else {
                    Expr::binary(BinaryOp::Eq, cell(), Expr::Text(pattern.clone()))
                }
            }
            TextOp::Contains => Expr::call(
                "ISNUMBER",
                vec![Expr::call(
                    "SEARCH",
                    vec![Expr::Text(pattern.clone()), cell()],
                )],
            ),
            TextOp::StartsWith => Expr::binary(
                BinaryOp::Eq,
                Expr::call(
                    "LEFT",
                    vec![cell(), Expr::Number(pattern.chars().count() as f64)],
                ),
                Expr::Text(pattern.clone()),
            ),
            TextOp::EndsWith => Expr::binary(
                BinaryOp::Eq,
                Expr::call(
                    "RIGHT",
                    vec![cell(), Expr::Number(pattern.chars().count() as f64)],
                ),
                Expr::Text(pattern.clone()),
            ),
        },
    }
}

fn cmp_expr(op: CmpOp, lhs: Expr, n: f64) -> Expr {
    let bop = match op {
        CmpOp::Greater => BinaryOp::Gt,
        CmpOp::GreaterEquals => BinaryOp::Ge,
        CmpOp::Less => BinaryOp::Lt,
        CmpOp::LessEquals => BinaryOp::Le,
    };
    Expr::binary(bop, lhs, Expr::Number(n))
}

fn part_expr(part: DatePart) -> Expr {
    let cell = Expr::current_cell();
    match part {
        DatePart::Day => Expr::call("DAY", vec![cell]),
        DatePart::Month => Expr::call("MONTH", vec![cell]),
        DatePart::Year => Expr::call("YEAR", vec![cell]),
        DatePart::Weekday => Expr::call("WEEKDAY", vec![cell, Expr::Number(2.0)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_formula::evaluate_bool;
    use cornet_table::CellValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_semantics(rule: &Rule, cells: &[CellValue], verbosity: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let formula = user_formula(rule, verbosity, &mut rng);
            for cell in cells {
                assert_eq!(
                    evaluate_bool(&formula, cell),
                    rule.eval(cell),
                    "formula {formula} diverges from rule {rule} on {cell:?}"
                );
            }
        }
    }

    #[test]
    fn text_rules_preserve_semantics_at_all_verbosities() {
        let rule = Rule::new(vec![Conjunct::new(vec![
            RuleLiteral::pos(Predicate::Text {
                op: TextOp::StartsWith,
                pattern: "RW".into(),
            }),
            RuleLiteral::neg(Predicate::Text {
                op: TextOp::EndsWith,
                pattern: "T".into(),
            }),
        ])]);
        let cells: Vec<CellValue> = ["RW-187", "RS-762", "RW-131-T", "rw-1", ""]
            .iter()
            .map(|s| CellValue::parse(s))
            .collect();
        check_semantics(&rule, &cells, 0.0, 1);
        check_semantics(&rule, &cells, 0.5, 2);
        check_semantics(&rule, &cells, 1.0, 3);
    }

    #[test]
    fn numeric_negations_preserve_semantics() {
        let rule = Rule::new(vec![Conjunct::single(RuleLiteral::neg(
            Predicate::NumCmp {
                op: CmpOp::LessEquals,
                n: 5.0,
            },
        ))]);
        let cells: Vec<CellValue> = [4.0, 5.0, 6.0]
            .iter()
            .map(|&n| CellValue::Number(n))
            .collect();
        check_semantics(&rule, &cells, 1.0, 4);
    }

    #[test]
    fn date_rules_preserve_semantics() {
        let rule = Rule::new(vec![Conjunct::single(RuleLiteral::pos(
            Predicate::DateCmp {
                op: CmpOp::Greater,
                part: DatePart::Month,
                n: 6,
            },
        ))]);
        let cells: Vec<CellValue> = ["2022-05-01", "2022-07-01", "2022-12-31"]
            .iter()
            .map(|s| CellValue::parse(s))
            .collect();
        check_semantics(&rule, &cells, 1.0, 5);
    }

    #[test]
    fn verbose_formulas_are_longer() {
        use cornet_formula::token_length;
        let rule = Rule::from_predicate(Predicate::NumCmp {
            op: CmpOp::Greater,
            n: 5.0,
        });
        let mut rng = StdRng::seed_from_u64(6);
        let mut min_len = usize::MAX;
        let mut max_len = 0;
        for _ in 0..50 {
            let f = user_formula(&rule, 1.0, &mut rng);
            let len = token_length(&f);
            min_len = min_len.min(len);
            max_len = max_len.max(len);
        }
        // Cornet's rule has length 2; verbose user formulas often exceed it.
        assert!(max_len > 2, "never generated a verbose variant");
        assert!(min_len >= 2);
    }

    #[test]
    fn zero_verbosity_is_minimal_and_deterministic_shape() {
        let rule = Rule::from_predicate(Predicate::Text {
            op: TextOp::Equals,
            pattern: "OK".into(),
        });
        let mut rng = StdRng::seed_from_u64(7);
        let f = user_formula(&rule, 0.0, &mut rng);
        assert_eq!(f.to_string(), "A1=\"OK\"");
    }
}
