//! Multi-rule benchmark tasks: columns whose ground truth is a *rule
//! set* — k ≥ 2 disjoint format classes, each with a style payload —
//! rather than a single boolean mask.
//!
//! Two column flavours cover the common real-sheet shapes:
//!
//! * **Status words** — an enum column (`completed` / `pending` /
//!   `failed` / …) where each word is its own class, styled with a fill
//!   color and scoped to the whole row (a status column colors its row).
//! * **Numeric tiers** — a numeric column banded into contiguous value
//!   ranges (low / mid / high / …), one class per tier, scoped to the
//!   cell.
//!
//! Every cell belongs to exactly one class and every class has at least
//! two members, so per-class example protocols ("give the learner the
//! first n cells of each class") are always well-defined. Fills come
//! from a fixed palette so generated styles are stable across runs.

use cornet_table::{CellValue, Format, TargetScope};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The fixed fill palette, assigned to classes in order.
pub const FILL_PALETTE: &[&str] = &["#dcfce7", "#fef9c3", "#fee2e2", "#dbeafe", "#f3e8ff"];

const STATUS_WORDS: &[&str] = &["completed", "pending", "failed", "blocked", "review"];

/// One ground-truth format class of a multi-rule task.
#[derive(Debug, Clone)]
pub struct MultiRuleClass {
    /// The style the latent rule applies.
    pub style: Format,
    /// Cell vs row scope of the style.
    pub scope: TargetScope,
    /// Member cell indices, in column order.
    pub members: Vec<usize>,
}

/// One multi-rule benchmark task: a column partitioned into k styled
/// classes.
#[derive(Debug, Clone)]
pub struct MultiRuleTask {
    /// Stable identifier.
    pub id: u64,
    /// Column cells.
    pub cells: Vec<CellValue>,
    /// The disjoint format classes (k ≥ 2, each with ≥ 2 members).
    pub classes: Vec<MultiRuleClass>,
}

impl MultiRuleTask {
    /// The ground-truth class of cell `i`, if any.
    pub fn class_of(&self, i: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.members.contains(&i))
    }

    /// The first `n` members of each class — the per-class analogue of
    /// the paper's "examples top to bottom" protocol.
    pub fn examples(&self, n: usize) -> Vec<Vec<usize>> {
        self.classes
            .iter()
            .map(|c| c.members.iter().take(n).copied().collect())
            .collect()
    }
}

/// Configuration for the multi-rule corpus.
#[derive(Debug, Clone)]
pub struct MultiRuleConfig {
    /// RNG seed; same seed, same corpus.
    pub seed: u64,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Column length range (inclusive).
    pub cells_range: (usize, usize),
    /// Class count range (inclusive); clamped to the palette size.
    pub classes_range: (usize, usize),
}

impl Default for MultiRuleConfig {
    fn default() -> Self {
        MultiRuleConfig {
            seed: 0xD1CE,
            n_tasks: 100,
            cells_range: (12, 48),
            classes_range: (2, 4),
        }
    }
}

/// Generates the multi-rule corpus: alternating status-word and
/// numeric-tier columns, rejection-sampled until every class has at
/// least two members.
pub fn generate_multirule_corpus(config: &MultiRuleConfig) -> Vec<MultiRuleTask> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (k_lo, k_hi) = config.classes_range;
    let k_hi = k_hi.min(FILL_PALETTE.len()).max(k_lo.max(2));
    let mut out = Vec::with_capacity(config.n_tasks);
    let mut id = 0u64;
    while out.len() < config.n_tasks {
        let n = rng.gen_range(config.cells_range.0..=config.cells_range.1);
        let k = rng.gen_range(k_lo.max(2)..=k_hi);
        let task = if id % 2 == 0 {
            status_task(id, n, k, &mut rng)
        } else {
            numeric_task(id, n, k, &mut rng)
        };
        id += 1;
        if let Some(task) = task {
            out.push(task);
        }
    }
    out
}

/// Status-word column: k distinct words, each its own row-scoped class.
fn status_task(id: u64, n: usize, k: usize, rng: &mut StdRng) -> Option<MultiRuleTask> {
    let mut words: Vec<&str> = STATUS_WORDS.to_vec();
    words.shuffle(rng);
    words.truncate(k);
    // Seed every class with two members, then fill the rest at random.
    let mut assigned: Vec<usize> = Vec::with_capacity(n);
    for class in 0..k {
        assigned.push(class);
        assigned.push(class);
    }
    if assigned.len() > n {
        return None;
    }
    while assigned.len() < n {
        assigned.push(rng.gen_range(0..k));
    }
    assigned.shuffle(rng);
    let cells: Vec<CellValue> = assigned
        .iter()
        .map(|&class| CellValue::Text(words[class].to_string()))
        .collect();
    Some(MultiRuleTask {
        id,
        cells,
        classes: classes_from_assignment(&assigned, k, TargetScope::Row),
    })
}

/// Numeric-tier column: k contiguous value bands, each a cell-scoped
/// class.
fn numeric_task(id: u64, n: usize, k: usize, rng: &mut StdRng) -> Option<MultiRuleTask> {
    if 2 * k > n {
        return None;
    }
    // Band b covers [100b, 100b + 100); draw each cell's band first so
    // class membership is exact by construction.
    let mut assigned: Vec<usize> = Vec::with_capacity(n);
    for class in 0..k {
        assigned.push(class);
        assigned.push(class);
    }
    while assigned.len() < n {
        assigned.push(rng.gen_range(0..k));
    }
    assigned.shuffle(rng);
    let cells: Vec<CellValue> = assigned
        .iter()
        .map(|&class| {
            let lo = 100.0 * class as f64;
            let v = lo + rng.gen_range(0..1000) as f64 / 10.0;
            CellValue::Number((v * 10.0).round() / 10.0)
        })
        .collect();
    Some(MultiRuleTask {
        id,
        cells,
        classes: classes_from_assignment(&assigned, k, TargetScope::Cell),
    })
}

fn classes_from_assignment(
    assigned: &[usize],
    k: usize,
    scope: TargetScope,
) -> Vec<MultiRuleClass> {
    (0..k)
        .map(|class| MultiRuleClass {
            style: Format::fill(FILL_PALETTE[class]),
            scope,
            members: assigned
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == class)
                .map(|(i, _)| i)
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_tasks_with_disjoint_classes() {
        let tasks = generate_multirule_corpus(&MultiRuleConfig {
            n_tasks: 40,
            ..MultiRuleConfig::default()
        });
        assert_eq!(tasks.len(), 40);
        for task in &tasks {
            assert!(task.classes.len() >= 2);
            let mut seen = vec![false; task.cells.len()];
            for class in &task.classes {
                assert!(class.members.len() >= 2, "every class has ≥2 members");
                assert!(class.style.fill.is_some(), "every class is styled");
                for &i in &class.members {
                    assert!(!seen[i], "classes are disjoint");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every cell belongs to a class");
        }
    }

    #[test]
    fn both_flavours_appear_with_distinct_scopes() {
        let tasks = generate_multirule_corpus(&MultiRuleConfig {
            n_tasks: 20,
            ..MultiRuleConfig::default()
        });
        let row = tasks
            .iter()
            .filter(|t| t.classes[0].scope == TargetScope::Row)
            .count();
        assert!(row > 0 && row < tasks.len(), "row-scoped: {row}/20");
    }

    #[test]
    fn per_class_examples_are_class_prefixes() {
        let tasks = generate_multirule_corpus(&MultiRuleConfig {
            n_tasks: 4,
            ..MultiRuleConfig::default()
        });
        for task in &tasks {
            let examples = task.examples(2);
            assert_eq!(examples.len(), task.classes.len());
            for (k, ex) in examples.iter().enumerate() {
                assert_eq!(ex.len(), 2);
                for &i in ex {
                    assert_eq!(task.class_of(i), Some(k));
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let config = MultiRuleConfig {
            n_tasks: 8,
            ..MultiRuleConfig::default()
        };
        let a = generate_multirule_corpus(&config);
        let b = generate_multirule_corpus(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells, y.cells);
            assert_eq!(x.classes.len(), y.classes.len());
            for (cx, cy) in x.classes.iter().zip(&y.classes) {
                assert_eq!(cx.members, cy.members);
                assert_eq!(cx.style, cy.style);
            }
        }
    }
}
