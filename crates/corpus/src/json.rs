//! JSON codec (`cornet_serde`) implementations for corpus tasks.
//!
//! A [`Task`] encodes as
//!
//! ```json
//! {"id":7,"cells":[…],"dtype":"text","rule":{…},
//!  "formatted":{"len":…,"ones":[…]},
//!  "user_formula":"AND(ISTEXT(A1),LEFT(A1,2)=\"RW\")","custom_formula":true}
//! ```
//!
//! The user formula is persisted as mini-language source text and re-parsed
//! on decode — the formula grammar (`cornet_formula::parse`) is its own
//! serial form, so there is no second AST encoding to keep in sync. The
//! decoder validates that `formatted` has one bit per cell.

use crate::taskgen::Task;
use cornet_serde::{field_t, DecodeError, FromJson, Json, ToJson};

impl ToJson for Task {
    fn to_json(&self) -> Json {
        Json::object([
            ("id", self.id.to_json()),
            ("cells", self.cells.to_json()),
            ("dtype", self.dtype.to_json()),
            ("rule", self.rule.to_json()),
            ("formatted", self.formatted.to_json()),
            ("user_formula", Json::str(self.user_formula.to_string())),
            ("custom_formula", Json::Bool(self.custom_formula)),
        ])
    }
}

impl FromJson for Task {
    fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let formula_text: String = field_t(json, "user_formula")?;
        let user_formula = cornet_formula::parse(&formula_text)
            .map_err(|e| DecodeError::new(format!("user_formula: {e:?}")))?;
        let task = Task {
            id: field_t(json, "id")?,
            cells: field_t(json, "cells")?,
            dtype: field_t(json, "dtype")?,
            rule: field_t(json, "rule")?,
            formatted: field_t(json, "formatted")?,
            user_formula,
            custom_formula: field_t(json, "custom_formula")?,
        };
        if task.formatted.len() != task.cells.len() {
            return Err(DecodeError::new(format!(
                "task {}: formatting mask has {} bits for {} cells",
                task.id,
                task.formatted.len(),
                task.cells.len()
            )));
        }
        Ok(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgen::{generate_corpus, CorpusConfig};
    use cornet_serde::{parse, to_string};

    #[test]
    fn generated_tasks_round_trip() {
        let corpus = generate_corpus(&CorpusConfig {
            n_tasks: 12,
            seed: 21,
            ..CorpusConfig::default()
        });
        for task in &corpus.tasks {
            let text = to_string(&task.to_json());
            let back = Task::from_json(&parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back.id, task.id);
            assert_eq!(back.cells, task.cells);
            assert_eq!(back.dtype, task.dtype);
            assert_eq!(back.rule, task.rule);
            assert_eq!(back.formatted, task.formatted);
            assert_eq!(back.user_formula, task.user_formula);
            assert_eq!(back.custom_formula, task.custom_formula);
        }
    }

    #[test]
    fn formatting_mask_length_is_validated() {
        let corpus = generate_corpus(&CorpusConfig {
            n_tasks: 1,
            seed: 3,
            ..CorpusConfig::default()
        });
        let mut doc = match corpus.tasks[0].to_json() {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        for (key, value) in &mut doc {
            if key == "formatted" {
                *value = parse(r#"{"len":1,"ones":[0]}"#).unwrap();
            }
        }
        let e = Task::from_json(&Json::Object(doc)).unwrap_err();
        assert!(e.message.contains("bits for"), "{e}");
    }

    #[test]
    fn bad_formula_text_is_rejected() {
        let corpus = generate_corpus(&CorpusConfig {
            n_tasks: 1,
            seed: 3,
            ..CorpusConfig::default()
        });
        let mut doc = match corpus.tasks[0].to_json() {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        for (key, value) in &mut doc {
            if key == "user_formula" {
                *value = Json::str("AND(((");
            }
        }
        let e = Task::from_json(&Json::Object(doc)).unwrap_err();
        assert!(e.message.contains("user_formula"), "{e}");
    }
}
