//! `cornet-obs`: process-wide observability for the CORNET workspace.
//!
//! Three small pieces, all dependency-free:
//!
//! - a **metrics registry** ([`registry`], [`Registry`]) of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s,
//!   rendered on demand in the Prometheus text exposition format
//!   ([`Registry::render`]);
//! - a **span API** ([`StageTimer`]) — RAII timers that record an
//!   elapsed duration into a histogram and, when a [`TraceSink`] is
//!   installed, emit one structured [`TraceEvent`] per span. With the
//!   default [`NullSink`] the per-span cost is two `Instant` reads and
//!   two relaxed atomic adds; the sink gate itself is one atomic load;
//! - a **request-id context** ([`set_request_id`]) — a thread-local
//!   carried from the HTTP worker into trace events so a slow request
//!   can be attributed to its learner stages.
//!
//! Recording is lock-free: handles are `Arc`-wrapped atomics, so the
//! registry mutex is touched only at registration and render time.
//!
//! ```
//! use cornet_obs::{registry, StageTimer};
//!
//! let learns = registry().counter("doc_learns_total", "Total learn calls");
//! learns.inc();
//! let stages = registry().histogram_with(
//!     "doc_stage_duration_seconds",
//!     "Stage wall time",
//!     &[("stage", "rank")],
//! );
//! drop(StageTimer::start("rank", stages.clone()));
//! assert_eq!(stages.count(), 1);
//! let text = registry().render();
//! assert!(text.contains("doc_learns_total 1"));
//! assert!(text.contains("doc_stage_duration_seconds_bucket"));
//! ```

pub mod expo;
mod metrics;
mod trace;

pub use metrics::{registry, Counter, Gauge, Histogram, Registry, DEFAULT_BUCKETS};
pub use trace::{
    clear_trace_sink, current_request_id, set_request_id, set_trace_sink, trace_enabled, NullSink,
    OwnedTraceEvent, RequestIdGuard, StageTimer, StderrSink, TraceEvent, TraceSink, VecSink,
};
