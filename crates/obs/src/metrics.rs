//! Atomic metric primitives and the process-wide registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-wrapped
//! atomics: cloning one is cheap and recording through it never takes a
//! lock. The [`Registry`] mutex guards only the family list, touched at
//! registration and [`Registry::render`] time.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Latency bucket upper bounds in seconds, roughly exponential from
/// 100µs to 10s. `+Inf` is implicit (the overflow slot).
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket upper bounds, ascending. `counts` has one extra slot for
    /// observations above the last bound (the `+Inf` bucket).
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_micros: AtomicU64,
}

/// Fixed-bucket latency histogram with lock-free recording.
///
/// Buckets are per-slot (non-cumulative) internally; rendering emits
/// the cumulative Prometheus form. The sum is accumulated in integer
/// microseconds so recording needs no float atomics.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
        }))
    }

    /// Record an observation in seconds.
    pub fn observe(&self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0).round() as u64;
        self.record(seconds, micros);
    }

    /// Record an elapsed [`Duration`].
    pub fn observe_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_secs_f64(), elapsed.as_micros() as u64);
    }

    fn record(&self, seconds: f64, micros: u64) {
        let core = &*self.0;
        let slot = core
            .bounds
            .iter()
            .position(|bound| seconds <= *bound)
            .unwrap_or(core.bounds.len());
        core.counts[slot].fetch_add(1, Ordering::Relaxed);
        core.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<(Vec<(String, String)>, Metric)>,
}

/// A collection of metric families rendered together.
///
/// [`registry`] returns the process-wide instance; independent
/// instances (e.g. per-service state rendered at scrape time) can be
/// created with [`Registry::new`] and their outputs concatenated —
/// family names must be distinct across concatenated registries.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create a counter with the given label set. Calling again
    /// with the same name and labels returns a handle to the same
    /// underlying value.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_create(name, help, Kind::Counter, labels, || {
            Metric::Counter(Counter::default())
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    /// Get or create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a gauge with the given label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_create(name, help, Kind::Gauge, labels, || {
            Metric::Gauge(Gauge::default())
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    /// Get or create an unlabelled histogram with [`DEFAULT_BUCKETS`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Get or create a histogram with the given label set and
    /// [`DEFAULT_BUCKETS`].
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_create(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Histogram::new(DEFAULT_BUCKETS))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.kind,
                kind,
                "metric `{name}` already registered as a {}",
                family.kind.as_str()
            );
            if let Some((_, metric)) = family.series.iter().find(|(l, _)| *l == labels) {
                return metric.clone();
            }
            let metric = make();
            family.series.push((labels, metric.clone()));
            return metric;
        }
        let metric = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![(labels, metric.clone())],
        });
        metric
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` lines per family, one
    /// sample line per series, histograms expanded to cumulative
    /// `_bucket{le=…}` samples plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        sample_line(&mut out, &family.name, labels, None, c.get() as f64)
                    }
                    Metric::Gauge(g) => {
                        sample_line(&mut out, &family.name, labels, None, g.get() as f64)
                    }
                    Metric::Histogram(h) => render_histogram(&mut out, &family.name, labels, h),
                }
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let core = &*h.0;
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (i, bound) in core.bounds.iter().enumerate() {
        cumulative += core.counts[i].load(Ordering::Relaxed);
        sample_line(
            out,
            &bucket_name,
            labels,
            Some(&format_f64(*bound)),
            cumulative as f64,
        );
    }
    cumulative += core.counts[core.bounds.len()].load(Ordering::Relaxed);
    sample_line(out, &bucket_name, labels, Some("+Inf"), cumulative as f64);
    sample_line(out, &format!("{name}_sum"), labels, None, h.sum_seconds());
    sample_line(
        out,
        &format!("{name}_count"),
        labels,
        None,
        cumulative as f64,
    );
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: f64,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (key, val) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_f64(value));
    out.push('\n');
}

fn format_f64(value: f64) -> String {
    // `{}` prints integral floats without a trailing `.0` and keeps
    // shortest-roundtrip precision otherwise — both valid exposition.
    format!("{value}")
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Handles obtained here are global: every
/// crate in the workspace records into the same families, and one
/// [`Registry::render`] call exposes them all.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_alias_the_same_value() {
        let r = Registry::new();
        let a = r.counter("t_total", "t");
        let b = r.counter("t_total", "t");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(r.render().contains("t_total 3"));
    }

    #[test]
    fn labelled_series_are_distinct_within_one_family() {
        let r = Registry::new();
        let ok = r.counter_with("req_total", "reqs", &[("status", "200")]);
        let err = r.counter_with("req_total", "reqs", &[("status", "500")]);
        ok.add(5);
        err.inc();
        let text = r.render();
        assert!(text.contains("req_total{status=\"200\"} 5"));
        assert!(text.contains("req_total{status=\"500\"} 1"));
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.observe(0.0002); // second bucket (0.00025)
        h.observe(0.003); // 0.005 bucket
        h.observe(99.0); // +Inf overflow
        assert_eq!(h.count(), 3);
        let text = r.render();
        assert!(text.contains("lat_seconds_bucket{le=\"0.0001\"} 0"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.00025\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.005\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
    }

    #[test]
    fn gauge_moves_both_directions() {
        let r = Registry::new();
        let g = r.gauge("inflight", "in-flight");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert!(r.render().contains("inflight -4"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let c = r.counter_with("esc_total", "escapes", &[("path", "a\"b\\c\nd")]);
        c.inc();
        assert!(r.render().contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("kind_clash", "x");
        let _ = r.gauge("kind_clash", "x");
    }
}
