//! Span timers, trace sinks, and request-id propagation.
//!
//! A [`StageTimer`] always records its elapsed time into a histogram;
//! it additionally emits a [`TraceEvent`] through the installed
//! [`TraceSink`] when tracing is enabled. The enable check is a single
//! relaxed atomic load, so instrumented hot paths stay cheap with the
//! default [`NullSink`].

use crate::metrics::Histogram;
use std::cell::Cell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span, handed to the [`TraceSink`].
#[derive(Debug)]
pub struct TraceEvent<'a> {
    /// Span name, e.g. `learn.rank`.
    pub span: &'a str,
    /// Request id propagated from the HTTP layer, if any.
    pub request_id: Option<u64>,
    /// Span duration in microseconds.
    pub micros: u64,
}

/// Receives completed-span events. Implementations must be cheap and
/// non-blocking enough for hot paths, or buffer internally.
pub trait TraceSink: Send + Sync {
    /// Called once per completed span while tracing is enabled.
    fn event(&self, event: &TraceEvent<'_>);
}

/// Discards every event — the default when tracing is disabled.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&self, _event: &TraceEvent<'_>) {}
}

/// Writes one `trace span=… micros=…` line per event with a single
/// locked write, so concurrent workers cannot interleave half-lines.
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn event(&self, event: &TraceEvent<'_>) {
        let line = match event.request_id {
            Some(id) => format!(
                "trace span={} request_id={id} micros={}\n",
                event.span, event.micros
            ),
            None => format!("trace span={} micros={}\n", event.span, event.micros),
        };
        let mut stderr = std::io::stderr().lock();
        let _ = stderr.write_all(line.as_bytes());
    }
}

/// An owned copy of a [`TraceEvent`], as collected by [`VecSink`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedTraceEvent {
    /// Span name.
    pub span: String,
    /// Request id at emit time.
    pub request_id: Option<u64>,
    /// Span duration in microseconds.
    pub micros: u64,
}

/// Collects every event for test assertions.
#[derive(Debug, Default)]
pub struct VecSink(Mutex<Vec<OwnedTraceEvent>>);

impl VecSink {
    /// A snapshot of the events collected so far.
    pub fn events(&self) -> Vec<OwnedTraceEvent> {
        self.0.lock().unwrap().clone()
    }
}

impl TraceSink for VecSink {
    fn event(&self, event: &TraceEvent<'_>) {
        self.0.lock().unwrap().push(OwnedTraceEvent {
            span: event.span.to_string(),
            request_id: event.request_id,
            micros: event.micros,
        });
    }
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);

/// Install a sink and enable tracing process-wide.
pub fn set_trace_sink(sink: Arc<dyn TraceSink>) {
    *TRACE_SINK.lock().unwrap() = Some(sink);
    TRACE_ENABLED.store(true, Ordering::Release);
}

/// Disable tracing and drop the installed sink.
pub fn clear_trace_sink() {
    TRACE_ENABLED.store(false, Ordering::Release);
    *TRACE_SINK.lock().unwrap() = None;
}

/// Whether a trace sink is installed. One relaxed atomic load.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

fn emit(span: &str, micros: u64) {
    if !trace_enabled() {
        return;
    }
    let sink = TRACE_SINK.lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.event(&TraceEvent {
            span,
            request_id: current_request_id(),
            micros,
        });
    }
}

thread_local! {
    static REQUEST_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Restores the previous request id on drop (see [`set_request_id`]).
#[derive(Debug)]
pub struct RequestIdGuard {
    previous: Option<u64>,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|cell| cell.set(self.previous));
    }
}

/// Set the current thread's request id for the lifetime of the
/// returned guard. Spans completed on this thread while the guard
/// lives carry the id in their [`TraceEvent::request_id`].
pub fn set_request_id(id: u64) -> RequestIdGuard {
    let previous = REQUEST_ID.with(|cell| cell.replace(Some(id)));
    RequestIdGuard { previous }
}

/// The request id installed on this thread, if any.
pub fn current_request_id() -> Option<u64> {
    REQUEST_ID.with(|cell| cell.get())
}

/// RAII span timer: started with a name and a histogram handle, it
/// records the elapsed duration into the histogram on drop and emits a
/// [`TraceEvent`] if tracing is enabled.
#[derive(Debug)]
pub struct StageTimer {
    span: &'static str,
    histogram: Histogram,
    start: Instant,
}

impl StageTimer {
    /// Start timing `span`; the measurement lands when the timer drops.
    pub fn start(span: &'static str, histogram: Histogram) -> Self {
        StageTimer {
            span,
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.histogram.observe_duration(elapsed);
        emit(self.span, elapsed.as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn timer_records_into_histogram_without_a_sink() {
        let r = Registry::new();
        let h = r.histogram("t_span_seconds", "t");
        assert!(!trace_enabled() || true); // global flag may be set by other tests
        drop(StageTimer::start("t", h.clone()));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn request_id_guard_nests_and_restores() {
        assert_eq!(current_request_id(), None);
        let outer = set_request_id(7);
        assert_eq!(current_request_id(), Some(7));
        {
            let _inner = set_request_id(8);
            assert_eq!(current_request_id(), Some(8));
        }
        assert_eq!(current_request_id(), Some(7));
        drop(outer);
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn vec_sink_sees_span_and_request_id() {
        let r = Registry::new();
        let h = r.histogram("t_traced_seconds", "t");
        let sink = Arc::new(VecSink::default());
        set_trace_sink(sink.clone());
        {
            let _id = set_request_id(42);
            drop(StageTimer::start("traced", h));
        }
        clear_trace_sink();
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.span == "traced")
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].request_id, Some(42));
    }
}
