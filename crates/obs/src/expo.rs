//! Parser for the Prometheus text exposition format (version 0.0.4).
//!
//! Shared by the `/metrics` conformance tests and the `serve_load`
//! harness, which scrapes the endpoint before and after a run to
//! report server-side stage breakdowns. Only the subset the workspace
//! emits is supported: `# HELP` / `# TYPE` comments and sample lines
//! with optional `{key="value"}` label blocks (escaped `\\`, `\"`,
//! `\n` in values).

use std::collections::BTreeMap;

/// One sample line: metric name, label pairs, numeric value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name as written (histogram samples keep their `_bucket`
    /// / `_sum` / `_count` suffixes).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: `# HELP`/`# TYPE` metadata plus every sample.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// `# HELP` text per family name.
    pub helps: BTreeMap<String, String>,
    /// `# TYPE` (`counter`/`gauge`/`histogram`) per family name.
    pub types: BTreeMap<String, String>,
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples with the given name, in document order.
    pub fn samples_named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The value of the sample with the given name whose label set
    /// contains every pair in `labels` (order-insensitive).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.label(k).is_some_and(|found| found == *v))
            })
            .map(|s| s.value)
    }
}

/// Parse an exposition document. Returns the first syntax error with
/// its 1-based line number.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: HELP without text: {line:?}"))?;
            expo.helps.insert(name.to_string(), help.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE without kind: {line:?}"))?;
            expo.types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        expo.samples
            .push(parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(expo)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value_text) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label block: {line:?}"))?;
            if close < open {
                return Err(format!("mismatched braces: {line:?}"));
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("sample without value: {line:?}"))?;
            (name, value.trim())
        }
    };
    let (name, labels) = match head.split_once('{') {
        Some((name, block)) => {
            let block = block
                .strip_suffix('}')
                .ok_or_else(|| format!("bad label block: {head:?}"))?;
            (name, parse_labels(block)?)
        }
        None => (head, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name: {name:?}"));
    }
    let value = parse_value(value_text)?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value: {other:?}")),
    }
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        // Skip separators and trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label name in {block:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}` value not quoted in {block:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {block:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {block:?}")),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_the_registry_renders() {
        let r = crate::Registry::new();
        r.counter_with("c_total", "a counter", &[("route", "/learn")])
            .add(3);
        let h = r.histogram("h_seconds", "a histogram");
        h.observe(0.002);
        h.observe(7.0);
        let g = r.gauge("g_now", "a gauge");
        g.set(-2);
        let expo = parse(&r.render()).expect("render must parse");
        assert_eq!(
            expo.types.get("c_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(expo.value("c_total", &[("route", "/learn")]), Some(3.0));
        assert_eq!(expo.value("g_now", &[]), Some(-2.0));
        assert_eq!(expo.value("h_seconds_count", &[]), Some(2.0));
        let inf = expo.value("h_seconds_bucket", &[("le", "+Inf")]);
        assert_eq!(inf, Some(2.0));
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let r = crate::Registry::new();
        r.counter_with("e_total", "escapes", &[("p", "a\"b\\c\nd")])
            .inc();
        let expo = parse(&r.render()).unwrap();
        assert_eq!(expo.value("e_total", &[("p", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("just_a_name\n").is_err());
        assert!(parse("bad{open=\"x\" 1\n").is_err());
        assert!(parse("name{k=unquoted} 1\n").is_err());
        assert!(parse("name not_a_number\n").is_err());
    }
}
