//! Deterministic feature-hashing text embedder — the BERT substitute.
//!
//! The paper's ranker and neural baselines consume pre-trained BERT token
//! embeddings. No such model is available offline in Rust, so cell contents
//! are embedded by hashing character n-grams (with word-boundary markers)
//! into a fixed table of random Gaussian rows and averaging
//! (DESIGN.md, substitution 3). This preserves the *syntactic* signal —
//! shared prefixes, suffixes and tokens — that dominates conditional
//! formatting, while staying deterministic and dependency-free. Downstream
//! projections are trained; the hash table itself is frozen, mirroring a
//! frozen language-model encoder.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;

thread_local! {
    /// Per-thread count of [`HashEmbedder::embed_batch`] calls, used by the
    /// ranking differential tests to prove a column is embedded exactly
    /// once per learn call. Thread-local so concurrently running tests
    /// cannot pollute each other's tallies.
    static EMBED_BATCH_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`HashEmbedder::embed_batch`] calls made **by the current
/// thread** since it started. Calls issued from pool worker threads count
/// toward those threads, not the caller's.
pub fn embed_batch_calls() -> u64 {
    EMBED_BATCH_CALLS.with(Cell::get)
}

/// Frozen n-gram hashing embedder.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    buckets: usize,
    table: Matrix,
}

impl HashEmbedder {
    /// Creates an embedder with `buckets` hash rows of width `dim`, filled
    /// with seeded Gaussian noise (Box–Muller over a seeded `StdRng`).
    pub fn new(dim: usize, buckets: usize, seed: u64) -> HashEmbedder {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (dim as f64).sqrt();
        let mut table = Matrix::zeros(buckets, dim);
        for r in 0..buckets {
            for c in 0..dim {
                // Box–Muller transform.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                table.set(r, c, z * scale);
            }
        }
        HashEmbedder {
            dim,
            buckets,
            table,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a string: average of the hash rows of its 2- and 3-grams over
    /// `^text$` boundary markers, L2-normalised. The empty string maps to
    /// the zero vector.
    pub fn embed_str(&self, text: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        let lowered = text.to_lowercase();
        let marked: Vec<char> = std::iter::once('^')
            .chain(lowered.chars())
            .chain(std::iter::once('$'))
            .collect();
        let mut count = 0usize;
        for n in 2..=3usize {
            if marked.len() < n {
                continue;
            }
            for window in marked.windows(n) {
                let bucket = hash_chars(window) as usize % self.buckets;
                for (o, v) in out.iter_mut().zip(self.table.row(bucket)) {
                    *o += v;
                }
                count += 1;
            }
        }
        if count > 0 {
            let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for o in &mut out {
                    *o /= norm;
                }
            }
        }
        out
    }

    /// Embeds a token sequence (average of per-token embeddings,
    /// L2-normalised) — used for the CodeBERT-substitute rule encoding.
    pub fn embed_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if tokens.is_empty() {
            return out;
        }
        for tok in tokens {
            for (o, v) in out.iter_mut().zip(self.embed_str(tok.as_ref())) {
                *o += v;
            }
        }
        let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for o in &mut out {
                *o /= norm;
            }
        }
        out
    }

    /// Embeds a batch of strings into an `n × dim` matrix.
    pub fn embed_batch<S: AsRef<str>>(&self, texts: &[S]) -> Matrix {
        EMBED_BATCH_CALLS.with(|c| c.set(c.get() + 1));
        let mut out = Matrix::zeros(texts.len(), self.dim);
        for (r, t) in texts.iter().enumerate() {
            let e = self.embed_str(t.as_ref());
            out.row_mut(r).copy_from_slice(&e);
        }
        out
    }
}

/// FNV-1a over the UTF-32 code points of an n-gram.
fn hash_chars(chars: &[char]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &c in chars {
        for b in (c as u32).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    #[test]
    fn deterministic() {
        let e1 = HashEmbedder::new(16, 512, 42);
        let e2 = HashEmbedder::new(16, 512, 42);
        assert_eq!(e1.embed_str("RW-187"), e2.embed_str("RW-187"));
    }

    #[test]
    fn different_seeds_differ() {
        let e1 = HashEmbedder::new(16, 512, 42);
        let e2 = HashEmbedder::new(16, 512, 43);
        assert_ne!(e1.embed_str("RW-187"), e2.embed_str("RW-187"));
    }

    #[test]
    fn shared_prefix_is_more_similar_than_disjoint() {
        let e = HashEmbedder::new(32, 2048, 7);
        let a = e.embed_str("RW-187");
        let b = e.embed_str("RW-159");
        let c = e.embed_str("QX-933");
        assert!(
            cosine(&a, &b) > cosine(&a, &c),
            "prefix-sharing strings must embed closer: {} vs {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn case_insensitive() {
        let e = HashEmbedder::new(16, 512, 1);
        assert_eq!(e.embed_str("Pass"), e.embed_str("pass"));
    }

    #[test]
    fn empty_string_is_zero_safe() {
        let e = HashEmbedder::new(8, 128, 1);
        let v = e.embed_str("");
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normalised() {
        let e = HashEmbedder::new(16, 512, 1);
        let v = e.embed_str("hello world");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_matches_single() {
        let e = HashEmbedder::new(8, 128, 3);
        let batch = e.embed_batch(&["a", "bb"]);
        assert_eq!(batch.row(0), e.embed_str("a").as_slice());
        assert_eq!(batch.row(1), e.embed_str("bb").as_slice());
    }

    #[test]
    fn embed_batch_calls_are_counted_per_thread() {
        let e = HashEmbedder::new(8, 128, 3);
        let before = embed_batch_calls();
        e.embed_batch(&["a", "b"]);
        e.embed_batch(&["c"]);
        // embed_str alone must not move the batch counter.
        e.embed_str("d");
        assert_eq!(embed_batch_calls() - before, 2);
    }

    #[test]
    fn token_embedding_order_invariant() {
        let e = HashEmbedder::new(8, 128, 3);
        let ab = e.embed_tokens(&["alpha", "beta"]);
        let ba = e.embed_tokens(&["beta", "alpha"]);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
