//! Dense row-major matrices.
//!
//! # The kernel bit-identity rule
//!
//! Every product kernel here accumulates each output element from that
//! element's inputs only, in a fixed left-to-right (ascending `k`) order
//! from a `+0.0` start. Batching rows, tiling loops for cache locality, or
//! computing `A·Bᵀ` via a transposed copy therefore never changes a single
//! output bit relative to the naive triple loop — the property the batched
//! ranking and stacked-attention paths rely on
//! (`tests/kernels_differential.rs` pins it).
//!
//! The kernels do **not** skip zero terms: `0.0 × NaN` and `0.0 × ∞` are
//! `NaN` and must surface, so a poisoned weight cannot silently vanish
//! from a product.
//!
//! One historical wrinkle the rule normalises: `matmul_t` used to take its
//! dots with `Iterator::sum`, whose identity is `-0.0`, so a dot whose
//! terms were all `-0.0` came out `-0.0` while the sibling kernels (which
//! accumulate into `Matrix::zeros`) produced `+0.0`. Under the `+0.0`-start
//! rule all three kernels agree: such degenerate dots are `+0.0`.

use rand::Rng;
use std::fmt;

/// Row-block edge of the tiled [`Matrix::matmul`] kernel.
const I_BLOCK: usize = 32;

/// Inner-dimension block edge of the tiled [`Matrix::matmul`] kernel.
const K_BLOCK: usize = 128;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a 1×n row matrix from a slice.
    pub fn from_row(values: &[f64]) -> Matrix {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Matrix–vector product `self · v`, one dot product per row.
    ///
    /// Each dot accumulates left to right over the full row (no zero
    /// skipping), exactly like `row.iter().zip(v).map(|(a, b)| a * b).sum()`
    /// — so batching rows through this helper is bit-identical to scoring
    /// them one at a time with that expression.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "inner dimensions must agree");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Xavier/Glorot-uniform initialisation.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self @ other`, as an `i/k`-tiled branch-free kernel.
    ///
    /// The output row stays full-width in the inner loop, which is then a
    /// contiguous axpy over independent lanes — exactly what the
    /// autovectorizer can lift to SIMD (a strict dot-product reduction
    /// cannot be vectorized without reassociating the sum). Tiling visits
    /// `k`-blocks in ascending order, so each `out[i][j]` still accumulates
    /// its terms in ascending `k` from `+0.0` — bit-identical to the naive
    /// `i,k,j` triple loop. Zero terms are **not** skipped so non-finite
    /// inputs propagate (`0.0 × NaN = NaN`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        for i0 in (0..self.rows).step_by(I_BLOCK) {
            let i_end = (i0 + I_BLOCK).min(self.rows);
            for k0 in (0..self.cols).step_by(K_BLOCK) {
                let k_end = (k0 + K_BLOCK).min(self.cols);
                for i in i0..i_end {
                    let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                    let orow = &mut out.data[i * cols..(i + 1) * cols];
                    for k in k0..k_end {
                        let a = arow[k];
                        let brow = &other.data[k * cols..(k + 1) * cols];
                        for (o, &b) in orow.iter_mut().zip(brow) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`, as direct row-against-row dots.
    ///
    /// Both operands walk their rows contiguously, so no transposed copy is
    /// materialised (the kernels sit on hot per-candidate paths where the
    /// extra allocation shows up). Each dot accumulates ascending `k` from
    /// `+0.0` — the exact operation sequence of
    /// `self.matmul(&other.transpose())`, hence bit-identical to the tiled
    /// kernel (`tests/kernels_differential.rs` pins it). Zero terms are not
    /// skipped.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut dot = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    dot += a * b;
                }
                *o = dot;
            }
        }
        out
    }

    /// `selfᵀ @ other`, as a direct `k`-outer axpy over rows of both
    /// operands — all accesses contiguous, no transposed copy. `out[i][j]`
    /// accumulates over ascending rows `k` of `self` from `+0.0`: the same
    /// order as `self.transpose().matmul(other)`, hence bit-identical to
    /// the tiled kernel. Zero terms are not skipped.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (for gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_matches_rowwise_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::xavier(5, 7, &mut rng);
        let v: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        let batched = a.matvec(&v);
        for r in 0..5 {
            let serial: f64 = a.row(r).iter().zip(&v).map(|(x, y)| x * y).sum();
            assert_eq!(batched[r].to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(3, 4, &mut rng);
        let b = Matrix::xavier(5, 4, &mut rng);
        let direct = a.matmul_t(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn t_matmul_equals_transpose_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        let direct = a.t_matmul(&b);
        let via_t = a.transpose().matmul(&b);
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    /// `0.0 × NaN` and `0.0 × ∞` must surface as NaN — the kernels may not
    /// skip zero terms, or a poisoned weight silently vanishes from the
    /// product (the PR 7 bugfix).
    #[test]
    fn zero_times_non_finite_propagates_nan() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f64::NAN, 2.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan());

        let b_inf = Matrix::from_vec(2, 1, vec![f64::INFINITY, 2.0]);
        assert!(a.matmul(&b_inf).get(0, 0).is_nan());

        // Same poisoning through the transposed-operand kernels.
        let bt = Matrix::from_vec(1, 2, vec![f64::NAN, 2.0]);
        assert!(a.matmul_t(&bt).get(0, 0).is_nan());
        let at = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let c = Matrix::from_vec(2, 1, vec![f64::NAN, 2.0]);
        assert!(at.t_matmul(&c).get(0, 0).is_nan());
    }

    /// The tiled kernel must agree with the naive `i,k,j` triple loop to
    /// the last bit, including at sizes that straddle the block edges.
    #[test]
    fn blocked_matmul_is_bit_identical_to_naive_triple_loop() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (I_BLOCK, K_BLOCK, 4),
            (I_BLOCK + 1, K_BLOCK + 1, 3),
            (2 * I_BLOCK + 5, K_BLOCK / 2 + 3, 7),
        ] {
            let a = Matrix::xavier(m, k, &mut rng);
            let b = Matrix::xavier(k, n, &mut rng);
            let tiled = a.matmul(&b);
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    let av = a.get(i, kk);
                    for j in 0..n {
                        let acc = naive.get(i, j) + av * b.get(kk, j);
                        naive.set(i, j, acc);
                    }
                }
            }
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// `matmul_t`/`t_matmul` now route through a transposed copy; the
    /// results must be bit-identical to the historical direct loops (a
    /// row·row dot in ascending `k`, and a `k`-outer axpy respectively).
    #[test]
    fn transposed_kernels_match_direct_loops_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::xavier(6, 9, &mut rng);
        let b = Matrix::xavier(4, 9, &mut rng);
        let batched = a.matmul_t(&b);
        for i in 0..6 {
            for j in 0..4 {
                let dot: f64 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
                assert_eq!(batched.get(i, j).to_bits(), dot.to_bits());
            }
        }

        let c = Matrix::xavier(9, 5, &mut rng);
        let d = Matrix::xavier(9, 3, &mut rng);
        let routed = c.t_matmul(&d);
        let mut direct = Matrix::zeros(5, 3);
        for k in 0..9 {
            for i in 0..5 {
                for j in 0..3 {
                    let acc = direct.get(i, j) + c.get(k, i) * d.get(k, j);
                    direct.set(i, j, acc);
                }
            }
        }
        for (x, y) in routed.data().iter().zip(direct.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::xavier(3, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.0, 1.5, 2.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }
}
