//! Dense row-major matrices.

use rand::Rng;
use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a 1×n row matrix from a slice.
    pub fn from_row(values: &[f64]) -> Matrix {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Matrix–vector product `self · v`, one dot product per row.
    ///
    /// Each dot accumulates left to right over the full row (no zero
    /// skipping), exactly like `row.iter().zip(v).map(|(a, b)| a * b).sum()`
    /// — so batching rows through this helper is bit-identical to scoring
    /// them one at a time with that expression.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "inner dimensions must agree");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Xavier/Glorot-uniform initialisation.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let dot: f64 = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// `selfᵀ @ other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (for gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_matches_rowwise_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::xavier(5, 7, &mut rng);
        let v: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        let batched = a.matvec(&v);
        for r in 0..5 {
            let serial: f64 = a.row(r).iter().zip(&v).map(|(x, y)| x * y).sum();
            assert_eq!(batched[r].to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(3, 4, &mut rng);
        let b = Matrix::xavier(5, 4, &mut rng);
        let direct = a.matmul_t(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn t_matmul_equals_transpose_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        let direct = a.t_matmul(&b);
        let via_t = a.transpose().matmul(&b);
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::xavier(3, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.0, 1.5, 2.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }
}
