//! The Adam optimizer.

/// Adam optimizer state over a set of registered parameter tensors.
///
/// Callers register each parameter buffer once (obtaining a slot) and then
/// call [`Adam::step`] with the matching slot on every update. Bias
/// correction uses a single shared timestep, advanced by [`Adam::tick`].
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: i32,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone)]
struct Slot {
    m: Vec<f64>,
    v: Vec<f64>,
}

/// Handle to a registered parameter buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(usize);

impl Adam {
    /// Creates an optimizer with the usual defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            slots: Vec::new(),
        }
    }

    /// Registers a parameter buffer of the given length.
    pub fn register(&mut self, len: usize) -> SlotId {
        self.slots.push(Slot {
            m: vec![0.0; len],
            v: vec![0.0; len],
        });
        SlotId(self.slots.len() - 1)
    }

    /// Advances the shared timestep. Call once per optimisation step, before
    /// the [`Adam::step`] calls of that step.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to `params` given `grads`.
    pub fn step(&mut self, slot: SlotId, params: &mut [f64], grads: &[f64]) {
        let state = &mut self.slots[slot.0];
        assert_eq!(params.len(), state.m.len(), "buffer length changed");
        assert_eq!(params.len(), grads.len());
        let t = self.t.max(1);
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            let g = grads[i];
            state.m[i] = self.beta1 * state.m[i] + (1.0 - self.beta1) * g;
            state.v[i] = self.beta2 * state.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = state.m[i] / bc1;
            let v_hat = state.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(x) = (x - 3)², df = 2(x - 3).
        let mut adam = Adam::new(0.1);
        let slot = adam.register(1);
        let mut x = [0.0_f64];
        for _ in 0..500 {
            adam.tick();
            let grad = [2.0 * (x[0] - 3.0)];
            adam.step(slot, &mut x, &grad);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "converged to {}", x[0]);
    }

    #[test]
    fn multiple_slots_are_independent() {
        let mut adam = Adam::new(0.05);
        let a = adam.register(1);
        let b = adam.register(1);
        let mut xa = [0.0_f64];
        let mut xb = [0.0_f64];
        for _ in 0..800 {
            adam.tick();
            let ga = [2.0 * (xa[0] - 1.0)];
            adam.step(a, &mut xa, &ga);
            let gb = [2.0 * (xb[0] + 2.0)];
            adam.step(b, &mut xb, &gb);
        }
        assert!((xa[0] - 1.0).abs() < 1e-2);
        assert!((xb[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn first_step_magnitude_is_bounded_by_lr() {
        // Adam's first update is ≈ lr regardless of gradient scale.
        let mut adam = Adam::new(0.01);
        let slot = adam.register(1);
        let mut x = [0.0_f64];
        adam.tick();
        adam.step(slot, &mut x, &[1e6]);
        assert!(x[0].abs() <= 0.0101);
    }
}
