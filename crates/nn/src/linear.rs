//! Fully connected layers with manual backprop.

use crate::matrix::Matrix;
use rand::Rng;

/// A dense layer `y = x W + b` with gradient accumulation.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, shape `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f64>,
    /// Accumulated weight gradient.
    pub gw: Matrix,
    /// Accumulated bias gradient.
    pub gb: Vec<f64>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Linear {
        Linear {
            w: Matrix::xavier(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass over a batch (`x` is `n × in_dim`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: accumulates `gw`/`gb` and returns `dx`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        self.gw.add_assign(&x.t_matmul(dy));
        for r in 0..dy.rows() {
            for (g, v) in self.gb.iter_mut().zip(dy.row(r)) {
                *g += v;
            }
        }
        dy.matmul_t(&self.w)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill_zero();
        self.gb.fill(0.0);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check on a scalar loss `sum(forward(x))`.
    #[test]
    fn gradient_check_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::xavier(2, 4, &mut rng);

        // Analytic gradients: d(sum y)/dy = ones.
        let y = layer.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let dx = layer.backward(&x, &dy);

        let eps = 1e-6;
        // Check dW numerically.
        for r in 0..4 {
            for c in 0..3 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + eps);
                let plus: f64 = layer.forward(&x).data().iter().sum();
                layer.w.set(r, c, orig - eps);
                let minus: f64 = layer.forward(&x).data().iter().sum();
                layer.w.set(r, c, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (numeric - layer.gw.get(r, c)).abs() < 1e-6,
                    "dW[{r},{c}]: numeric {numeric} vs analytic {}",
                    layer.gw.get(r, c)
                );
            }
        }
        // Check db numerically.
        for c in 0..3 {
            let orig = layer.b[c];
            layer.b[c] = orig + eps;
            let plus: f64 = layer.forward(&x).data().iter().sum();
            layer.b[c] = orig - eps;
            let minus: f64 = layer.forward(&x).data().iter().sum();
            layer.b[c] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - layer.gb[c]).abs() < 1e-6);
        }
        // Check dx numerically.
        let mut x2 = x.clone();
        for r in 0..2 {
            for c in 0..4 {
                let orig = x2.get(r, c);
                x2.set(r, c, orig + eps);
                let plus: f64 = layer.forward(&x2).data().iter().sum();
                x2.set(r, c, orig - eps);
                let minus: f64 = layer.forward(&x2).data().iter().sum();
                x2.set(r, c, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                assert!((numeric - dx.get(r, c)).abs() < 1e-6);
            }
        }
    }

    /// The batched ranking path relies on `forward` over a stacked batch
    /// being bit-identical, row by row, to `forward` over each row alone:
    /// matmul accumulates each output row from that row's inputs only.
    #[test]
    fn batched_forward_matches_single_rows_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let layer = Linear::new(6, 4, &mut rng);
        let batch = Matrix::xavier(5, 6, &mut rng);
        let y_batch = layer.forward(&batch);
        for r in 0..batch.rows() {
            let y_single = layer.forward(&Matrix::from_row(batch.row(r)));
            for (b, s) in y_batch.row(r).iter().zip(y_single.row(0)) {
                assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        layer.backward(&x, &dy);
        assert!(layer.gw.norm() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.gw.norm(), 0.0);
        assert!(layer.gb.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer = Linear::new(5, 3, &mut rng);
        assert_eq!(layer.param_count(), 5 * 3 + 3);
    }
}
