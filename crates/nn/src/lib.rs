//! A minimal pure-Rust neural network stack.
//!
//! The paper's ranker (§3.4, Figure 5) combines BERT cell embeddings,
//! cross-attention against the rule's execution bits, and linear layers with
//! a sigmoid output, trained as binary classification. The Rust ML ecosystem
//! offers no offline equivalent of that stack, so this crate implements the
//! required pieces from scratch (DESIGN.md, substitution 3):
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the handful of BLAS-1/2
//!   kernels the models need,
//! * [`Linear`] — fully connected layers with manual backprop,
//! * [`CrossAttention`] — single-head scaled dot-product cross-attention with
//!   manual backprop (the paper's "cross attention" block),
//! * [`Adam`] — the Adam optimizer,
//! * [`HashEmbedder`] — a deterministic character-n-gram feature-hashing
//!   embedder standing in for BERT token embeddings: it preserves the
//!   syntactic signal (prefixes/suffixes/tokens) that conditional formatting
//!   rules rely on,
//! * [`BallTree`] — an exact k-nearest-neighbour ball tree over
//!   fixed-dimension embedding vectors (the retrieval index behind the
//!   serve layer's zero-example rule suggestions),
//! * [`ops`] — sigmoid/BCE/ReLU/pooling primitives.
//!
//! Every forward pass returns the cache its backward pass needs; no autograd
//! tape, no global state. All randomness flows through caller-provided
//! seeded RNGs, keeping training runs reproducible.

pub mod adam;
pub mod attention;
pub mod balltree;
pub mod hashing;
pub mod linear;
pub mod matrix;
pub mod ops;

pub use adam::Adam;
pub use attention::CrossAttention;
pub use balltree::{BallTree, Neighbor};
pub use hashing::HashEmbedder;
pub use linear::Linear;
pub use matrix::Matrix;
