//! A hand-rolled ball tree for exact k-nearest-neighbour queries over
//! fixed-dimension `f64` points (modeled on linfa-nn's balltree, rebuilt
//! from scratch because the build environment is offline).
//!
//! Every node covers a contiguous slice of a permutation array and
//! stores the centroid and radius of its points; internal nodes split
//! their slice at the median projection onto the node's widest axis
//! (farthest-point pair), so splits follow the data's cluster
//! structure rather than the coordinate axes. A query
//! walks the tree best-child-first and prunes a subtree when the
//! triangle-inequality lower bound `dist(q, center) - radius` strictly
//! exceeds the current k-th best distance — so results are **exact**,
//! not approximate: [`BallTree::nearest`] returns bit-identical
//! neighbours, distances and order to the brute-force
//! [`BallTree::nearest_linear`] scan (both accumulate the squared
//! differences in coordinate order and break distance ties by ascending
//! point index, making the top-k a unique total-order prefix).
//!
//! Incremental growth: [`BallTree::insert`] appends to a flat pending
//! list that queries scan linearly; once the list outgrows the rebuild
//! threshold the whole tree is rebuilt in bulk. That trades a rare
//! O(n log n) rebuild for O(1) inserts while keeping queries sublinear —
//! the regime the suggest index lives in, where reads vastly outnumber
//! writes.

use std::collections::BinaryHeap;

/// Points per leaf. Each split visited costs two center-distance
/// computations; a leaf point costs one sequential distance — so leaves
/// should hold a few dozen points before the extra node depth pays for
/// itself. 32 keeps the node array ~4x smaller than a leaf-of-8 tree
/// and measures fastest on the `suggest_index` corpus.
const LEAF_SIZE: usize = 32;

/// Default for [`BallTree::with_rebuild_threshold`]: how many pending
/// inserts accumulate before the tree is rebuilt in bulk.
pub const DEFAULT_REBUILD_THRESHOLD: usize = 64;

/// One k-NN result: the point's insertion index and its Euclidean
/// distance from the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point, as returned by [`BallTree::insert`] / the
    /// position in the [`BallTree::build`] input.
    pub index: usize,
    /// Euclidean distance to the query.
    pub dist: f64,
}

/// Candidate ordering: smaller distance first, ties broken by ascending
/// index. `total_cmp` keeps the order total (NaN never occurs for finite
/// inputs, but a total order is what makes tree ≡ linear scan provable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cand {
    bits: u64,
    index: u32,
}

impl Cand {
    fn new(dist: f64, index: u32) -> Cand {
        Cand {
            // total_cmp's order as an integer key: flip the sign bit for
            // positives, all bits for negatives. Distances are >= 0 here,
            // so this is just the IEEE ordering made monotone.
            bits: {
                let b = dist.to_bits();
                if b >> 63 == 1 {
                    !b
                } else {
                    b | 1 << 63
                }
            },
            index,
        }
    }

    fn dist(&self) -> f64 {
        let b = self.bits;
        f64::from_bits(if b >> 63 == 1 { b & !(1 << 63) } else { !b })
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.bits, self.index).cmp(&(other.bits, other.index))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded worst-on-top heap holding the best k candidates seen.
struct TopK {
    k: usize,
    heap: BinaryHeap<Cand>,
}

impl TopK {
    fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    fn offer(&mut self, cand: Cand) {
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// The current k-th best distance, or `None` while under-full (in
    /// which case nothing may be pruned).
    fn bound(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(Cand::dist)
        }
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut cands = self.heap.into_vec();
        cands.sort_unstable();
        cands
            .into_iter()
            .map(|c| Neighbor {
                index: c.index as usize,
                dist: c.dist(),
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    /// Covers `order[start..end]` directly.
    Leaf { start: usize, end: usize },
    /// Children by node index.
    Split { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct Node {
    center: Vec<f64>,
    radius: f64,
    kind: NodeKind,
}

/// An exact k-NN ball tree over fixed-dimension points. See the module
/// docs for the construction, pruning and determinism contract.
#[derive(Debug, Clone)]
pub struct BallTree {
    dim: usize,
    /// Point `i` lives at `coords[i*dim..(i+1)*dim]`.
    coords: Vec<f64>,
    nodes: Vec<Node>,
    /// Permutation of the first `tree_len` point indices; leaves
    /// reference contiguous ranges of it.
    order: Vec<u32>,
    /// Points covered by `nodes` (the rest are pending).
    tree_len: usize,
    /// Indices inserted since the last rebuild, scanned linearly.
    pending: Vec<u32>,
    rebuild_threshold: usize,
}

/// Euclidean distance with a fixed accumulation order, shared by the
/// tree walk and the linear scan so both produce bit-identical values.
fn dist(a: &[f64], b: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
    }
    sum.sqrt()
}

impl BallTree {
    /// An empty tree over `dim`-dimensional points with the default
    /// rebuild threshold. `dim` must be non-zero.
    pub fn new(dim: usize) -> BallTree {
        BallTree::with_rebuild_threshold(dim, DEFAULT_REBUILD_THRESHOLD)
    }

    /// An empty tree that rebuilds once more than `threshold` inserts
    /// are pending (minimum 1 — every tree must eventually rebuild).
    pub fn with_rebuild_threshold(dim: usize, threshold: usize) -> BallTree {
        assert!(dim > 0, "ball tree dimension must be non-zero");
        BallTree {
            dim,
            coords: Vec::new(),
            nodes: Vec::new(),
            order: Vec::new(),
            tree_len: 0,
            pending: Vec::new(),
            rebuild_threshold: threshold.max(1),
        }
    }

    /// Bulk-builds a tree over `points` (point `i` keeps index `i`).
    pub fn build(dim: usize, points: &[Vec<f64>]) -> BallTree {
        let mut tree = BallTree::new(dim);
        tree.coords.reserve(points.len() * dim);
        for point in points {
            assert_eq!(point.len(), dim, "point dimension mismatch");
            tree.coords.extend_from_slice(point);
        }
        tree.rebuild();
        tree
    }

    /// Number of indexed points (tree + pending).
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The point dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of inserts awaiting the next rebuild.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The coordinates of point `index`.
    pub fn point(&self, index: usize) -> &[f64] {
        &self.coords[index * self.dim..(index + 1) * self.dim]
    }

    /// Appends a point, returning its index. O(1) until the pending
    /// list exceeds the rebuild threshold, then one bulk rebuild.
    pub fn insert(&mut self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        let index = self.len();
        self.coords.extend_from_slice(point);
        self.pending.push(index as u32);
        if self.pending.len() > self.rebuild_threshold {
            self.rebuild();
        }
        index
    }

    /// Rebuilds the tree over every point, draining the pending list.
    pub fn rebuild(&mut self) {
        let n = self.len();
        self.nodes.clear();
        self.pending.clear();
        self.order = (0..n as u32).collect();
        self.tree_len = n;
        if n > 0 {
            self.build_node(0, n);
        }
    }

    /// Builds the node over `order[start..end]`, returning its index.
    fn build_node(&mut self, start: usize, end: usize) -> usize {
        let count = end - start;
        let mut center = vec![0.0; self.dim];
        for &p in &self.order[start..end] {
            let point = &self.coords[p as usize * self.dim..(p as usize + 1) * self.dim];
            for (c, x) in center.iter_mut().zip(point) {
                *c += x;
            }
        }
        for c in center.iter_mut() {
            *c /= count as f64;
        }
        let radius = self.order[start..end]
            .iter()
            .map(|&p| {
                dist(
                    &center,
                    &self.coords[p as usize * self.dim..(p as usize + 1) * self.dim],
                )
            })
            .fold(0.0, f64::max);
        let slot = self.nodes.len();
        self.nodes.push(Node {
            center,
            radius,
            kind: NodeKind::Leaf { start, end },
        });
        if count > LEAF_SIZE {
            // Split at the median projection onto the node's widest axis:
            // the direction between the point farthest from the centroid
            // and the point farthest from *that* point. Cluster structure
            // in hashed embeddings is diagonal to the coordinate axes, so
            // a coordinate-median split would cut through clusters and
            // leave child balls almost as wide as the parent; projecting
            // onto the empirically widest direction separates them. Ties
            // (equal projections, or a degenerate zero direction) break by
            // point index, keeping the partition a deterministic function
            // of the point set.
            let axis = self.split_axis(&self.nodes[slot].center, start, end);
            let mid = start + count / 2;
            let coords = &self.coords;
            let dim = self.dim;
            let project = |p: u32| -> f64 {
                coords[p as usize * dim..(p as usize + 1) * dim]
                    .iter()
                    .zip(&axis)
                    .map(|(x, a)| x * a)
                    .sum()
            };
            self.order[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
                project(a).total_cmp(&project(b)).then(a.cmp(&b))
            });
            let left = self.build_node(start, mid);
            let right = self.build_node(mid, end);
            self.nodes[slot].kind = NodeKind::Split { left, right };
        }
        slot
    }

    /// The split direction for `order[start..end]`: from the point
    /// farthest from `center` to the point farthest from that point
    /// (ties by ascending index).
    fn split_axis(&self, center: &[f64], start: usize, end: usize) -> Vec<f64> {
        let far = |from: &[f64]| -> &[f64] {
            let mut best = self.order[start];
            let mut best_dist = -1.0;
            for &p in &self.order[start..end] {
                let d = dist(from, self.point(p as usize));
                if d > best_dist {
                    best_dist = d;
                    best = p;
                }
            }
            self.point(best as usize)
        };
        let a = far(center);
        let b = far(a);
        a.iter().zip(b).map(|(x, y)| x - y).collect()
    }

    /// The `k` nearest points to `query`, sorted by ascending distance
    /// (ties by ascending index). Returns fewer than `k` neighbours only
    /// when the tree holds fewer points. Exact: identical to
    /// [`BallTree::nearest_linear`], bit for bit.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k.min(self.len()));
        if self.tree_len > 0 {
            let root_dist = dist(query, &self.nodes[0].center);
            self.search_node(0, root_dist, query, &mut top);
        }
        for &p in &self.pending {
            top.offer(Cand::new(dist(query, self.point(p as usize)), p));
        }
        top.into_sorted()
    }

    /// `center_dist` is `dist(query, node.center)`, computed by the
    /// caller (the parent already needs it to order the children, so
    /// passing it down halves the center-distance work per node).
    fn search_node(&self, node: usize, center_dist: f64, query: &[f64], top: &mut TopK) {
        let n = &self.nodes[node];
        if let Some(bound) = top.bound() {
            // Strict: a subtree whose lower bound *equals* the current
            // k-th distance may still hold an equal-distance point with a
            // smaller index, which wins the tie.
            if center_dist - n.radius > bound {
                return;
            }
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &p in &self.order[start..end] {
                    top.offer(Cand::new(dist(query, self.point(p as usize)), p));
                }
            }
            NodeKind::Split { left, right } => {
                // Nearer child first: tightens the bound before the far
                // child is tested, which is where the pruning comes from.
                let dl = dist(query, &self.nodes[left].center);
                let dr = dist(query, &self.nodes[right].center);
                let (first_dist, first, second_dist, second) = if dl <= dr {
                    (dl, left, dr, right)
                } else {
                    (dr, right, dl, left)
                };
                self.search_node(first, first_dist, query, top);
                self.search_node(second, second_dist, query, top);
            }
        }
    }

    /// Brute-force reference: scans every point with the same distance
    /// function and tie-breaking as [`BallTree::nearest`]. The
    /// differential suite pins `nearest ≡ nearest_linear`; the
    /// `suggest_index` bench measures the gap between them.
    pub fn nearest_linear(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k.min(self.len()));
        for p in 0..self.len() {
            top.offer(Cand::new(dist(query, self.point(p)), p as u32));
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Vec<f64>> {
        // 5×5 grid plus a duplicate of the origin (tie-break coverage).
        let mut points = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                points.push(vec![x as f64, y as f64]);
            }
        }
        points.push(vec![0.0, 0.0]);
        points
    }

    #[test]
    fn nearest_matches_linear_on_a_grid() {
        let points = grid_points();
        let tree = BallTree::build(2, &points);
        assert_eq!(tree.len(), points.len());
        for k in [1, 3, 7, points.len(), points.len() + 5] {
            for q in [[0.2, 0.1], [2.5, 2.5], [9.0, -3.0], [4.0, 4.0]] {
                assert_eq!(tree.nearest(&q, k), tree.nearest_linear(&q, k), "k={k}");
            }
        }
    }

    #[test]
    fn exact_hits_and_duplicate_ties_resolve_by_index() {
        let tree = BallTree::build(2, &grid_points());
        // The origin exists twice (indices 0 and 25): the smaller index
        // wins the k=1 tie, and k=2 returns both at distance zero.
        let best = tree.nearest(&[0.0, 0.0], 2);
        assert_eq!(
            best[0],
            Neighbor {
                index: 0,
                dist: 0.0
            }
        );
        assert_eq!(
            best[1],
            Neighbor {
                index: 25,
                dist: 0.0
            }
        );
    }

    #[test]
    fn incremental_insert_answers_like_bulk_build() {
        let points = grid_points();
        let bulk = BallTree::build(2, &points);
        // Threshold 4 forces several rebuild cycles plus a non-empty
        // pending tail at the end.
        let mut grown = BallTree::with_rebuild_threshold(2, 4);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(grown.insert(p), i);
        }
        assert!(grown.pending() <= 4);
        for q in [[0.7, 3.1], [5.0, 5.0], [-1.0, 2.0]] {
            assert_eq!(grown.nearest(&q, 5), bulk.nearest(&q, 5));
        }
    }

    #[test]
    fn empty_and_k_zero_return_nothing() {
        let tree = BallTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&[0.0, 0.0, 0.0], 4), Vec::new());
        let tree = BallTree::build(1, &[vec![1.0]]);
        assert_eq!(tree.nearest(&[0.0], 0), Vec::new());
        assert_eq!(tree.nearest(&[0.0], 3).len(), 1, "k capped at len");
    }

    #[test]
    fn identical_points_split_without_recursing_forever() {
        let points: Vec<Vec<f64>> = (0..40).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let tree = BallTree::build(3, &points);
        let found = tree.nearest(&[1.0, 2.0, 3.0], 3);
        assert_eq!(
            found.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "zero-spread ties resolve by index"
        );
        assert!(found.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn point_accessor_round_trips() {
        let mut tree = BallTree::new(2);
        let idx = tree.insert(&[0.5, -1.5]);
        assert_eq!(tree.point(idx), &[0.5, -1.5]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.dim(), 2);
    }
}
