//! Single-head scaled dot-product cross-attention with manual backprop.
//!
//! The ranker (§3.4, Figure 5) attends from the column's cell embeddings to
//! embeddings of the rule's *execution outputs* ("formatted or not"); the
//! neural baselines (§4.2, Figure 6) attend from the full column to the
//! formatted example cells. Both are instances of this block:
//!
//! ```text
//! Q = X·Wq   K = E·Wk   V = E·Wv
//! A = softmax(Q·Kᵀ / √d)
//! O = A·V
//! ```

use crate::matrix::Matrix;
use crate::ops::{softmax_rows, softmax_rows_backward};
use rand::Rng;

/// Learnable single-head cross-attention.
#[derive(Debug, Clone)]
pub struct CrossAttention {
    /// Query projection (`d_model × d_k`).
    pub wq: Matrix,
    /// Key projection (`d_model × d_k`).
    pub wk: Matrix,
    /// Value projection (`d_model × d_v`).
    pub wv: Matrix,
    /// Gradient of `wq`.
    pub gwq: Matrix,
    /// Gradient of `wk`.
    pub gwk: Matrix,
    /// Gradient of `wv`.
    pub gwv: Matrix,
}

/// Forward-pass cache consumed by [`CrossAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    x: Matrix,
    e: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
}

impl CrossAttention {
    /// Creates a block with `d_model` input width and `d_k = d_v = d_model`.
    pub fn new(d_model: usize, rng: &mut impl Rng) -> CrossAttention {
        CrossAttention {
            wq: Matrix::xavier(d_model, d_model, rng),
            wk: Matrix::xavier(d_model, d_model, rng),
            wv: Matrix::xavier(d_model, d_model, rng),
            gwq: Matrix::zeros(d_model, d_model),
            gwk: Matrix::zeros(d_model, d_model),
            gwv: Matrix::zeros(d_model, d_model),
        }
    }

    /// Attention forward: `x` are queries (`n × d`), `e` are keys/values
    /// (`m × d`). Returns the output (`n × d`) and the cache for backward.
    pub fn forward(&self, x: &Matrix, e: &Matrix) -> (Matrix, AttentionCache) {
        let q = x.matmul(&self.wq);
        let k = e.matmul(&self.wk);
        let v = e.matmul(&self.wv);
        let mut attn = q.matmul_t(&k);
        attn.scale(1.0 / (self.wq.cols() as f64).sqrt());
        softmax_rows(&mut attn);
        let out = attn.matmul(&v);
        (
            out,
            AttentionCache {
                x: x.clone(),
                e: e.clone(),
                q,
                k,
                v,
                attn,
            },
        )
    }

    /// Inference-only batched forward over `n_cand` stacked key/value
    /// blocks sharing one query matrix.
    ///
    /// `e_stacked` holds the candidates' E matrices stacked row-wise
    /// (`(n_cand·m) × d`, candidate `c` in rows `c·m .. (c+1)·m`); the
    /// return value stacks the per-candidate outputs the same way
    /// (`(n_cand·n) × d`). Bit-identical to calling [`Self::forward`] once
    /// per block: `Q = X·Wq` is computed once (each candidate's query rows
    /// are the same values), `K`/`V` for all candidates come from single
    /// matmuls whose output rows each depend only on their own input row,
    /// the score matrix `Q·K_allᵀ` holds exactly the per-candidate dot
    /// products in its `m`-wide column segments, softmax is applied per
    /// segment with the same algorithm as [`softmax_rows`], and each output
    /// block accumulates in the same ascending-`k` order as
    /// [`Matrix::matmul`].
    pub fn forward_stacked(&self, x: &Matrix, e_stacked: &Matrix, n_cand: usize) -> Matrix {
        let d = self.wv.cols();
        let n = x.rows();
        if n_cand == 0 {
            assert_eq!(e_stacked.rows(), 0, "stacked rows must be n_cand * m");
            return Matrix::zeros(0, d);
        }
        assert_eq!(
            e_stacked.rows() % n_cand,
            0,
            "stacked rows must be n_cand * m"
        );
        let m = e_stacked.rows() / n_cand;

        let q = x.matmul(&self.wq);
        let k_all = e_stacked.matmul(&self.wk);
        let v_all = e_stacked.matmul(&self.wv);
        // n × (n_cand·m): segment c·m..(c+1)·m of row i holds candidate
        // c's query-i scores, bit-equal to the per-candidate `q.matmul_t(&k)`.
        let mut s_all = q.matmul_t(&k_all);
        s_all.scale(1.0 / (self.wq.cols() as f64).sqrt());
        // Per-segment softmax, same operation order as `softmax_rows` on
        // the per-candidate score matrix.
        for r in 0..n {
            let row = s_all.row_mut(r);
            for seg in row.chunks_mut(m.max(1)) {
                let max = seg.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in seg.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in seg.iter_mut() {
                        *v /= sum;
                    }
                }
            }
        }
        // Output blocks: row c·n+i accumulates candidate c's attention row
        // against its V block in ascending `k` — the `matmul` order.
        let mut out = Matrix::zeros(n_cand * n, d);
        for c in 0..n_cand {
            for i in 0..n {
                for k in 0..m {
                    let a = s_all.get(i, c * m + k);
                    let vrow = v_all.row(c * m + k);
                    let orow = out.row_mut(c * n + i);
                    for (o, &b) in orow.iter_mut().zip(vrow) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Backward: accumulates weight gradients, returns `(dx, de)`.
    pub fn backward(&mut self, cache: &AttentionCache, dout: &Matrix) -> (Matrix, Matrix) {
        let scale = 1.0 / (self.wq.cols() as f64).sqrt();
        // O = A·V
        let da = dout.matmul_t(&cache.v);
        let dv = cache.attn.t_matmul(dout);
        // A = softmax(S), S = Q·Kᵀ·scale
        let mut ds = softmax_rows_backward(&cache.attn, &da);
        ds.scale(scale);
        // S = Q·Kᵀ
        let dq = ds.matmul(&cache.k);
        let dk = ds.t_matmul(&cache.q);
        // Projections.
        self.gwq.add_assign(&cache.x.t_matmul(&dq));
        self.gwk.add_assign(&cache.e.t_matmul(&dk));
        self.gwv.add_assign(&cache.e.t_matmul(&dv));
        let dx = dq.matmul_t(&self.wq);
        let mut de = dk.matmul_t(&self.wk);
        de.add_assign(&dv.matmul_t(&self.wv));
        (dx, de)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gwq.fill_zero();
        self.gwk.fill_zero();
        self.gwv.fill_zero();
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        3 * self.wq.rows() * self.wq.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scalar_loss(attn: &CrossAttention, x: &Matrix, e: &Matrix) -> f64 {
        let (out, _) = attn.forward(x, e);
        out.data().iter().sum()
    }

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = CrossAttention::new(4, &mut rng);
        let x = Matrix::xavier(3, 4, &mut rng);
        let e = Matrix::xavier(5, 4, &mut rng);
        let (out, cache) = attn.forward(&x, &e);
        assert_eq!((out.rows(), out.cols()), (3, 4));
        // Attention rows are distributions over the 5 key positions.
        for r in 0..3 {
            let sum: f64 = cache.attn.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// The stacked inference path must reproduce per-candidate forward
    /// passes bit-for-bit, including the 0- and 1-candidate edges.
    #[test]
    fn forward_stacked_matches_per_candidate_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = 4;
        let attn = CrossAttention::new(d, &mut rng);
        let x = Matrix::xavier(3, d, &mut rng);
        for &n_cand in &[0usize, 1, 5] {
            let m = 6;
            let blocks: Vec<Matrix> = (0..n_cand)
                .map(|_| Matrix::xavier(m, d, &mut rng))
                .collect();
            let mut stacked = Matrix::zeros(n_cand * m, d);
            for (c, e) in blocks.iter().enumerate() {
                for r in 0..m {
                    stacked.row_mut(c * m + r).copy_from_slice(e.row(r));
                }
            }
            let out = attn.forward_stacked(&x, &stacked, n_cand);
            assert_eq!((out.rows(), out.cols()), (n_cand * x.rows(), d));
            for (c, e) in blocks.iter().enumerate() {
                let (single, _) = attn.forward(&x, e);
                for r in 0..x.rows() {
                    for (a, b) in out.row(c * x.rows() + r).iter().zip(single.row(r)) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
        // Degenerate m = 0 block: empty keys give an all-zero output row,
        // same as the per-candidate path.
        let empty = Matrix::zeros(0, d);
        let out = attn.forward_stacked(&x, &empty, 2);
        let (single, _) = attn.forward(&x, &Matrix::zeros(0, d));
        for r in 0..x.rows() {
            for c in 0..2 {
                for (a, b) in out.row(c * x.rows() + r).iter().zip(single.row(r)) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut attn = CrossAttention::new(3, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng);
        let e = Matrix::xavier(4, 3, &mut rng);
        let (out, cache) = attn.forward(&x, &e);
        let dout = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let (dx, de) = attn.backward(&cache, &dout);

        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let numeric =
                    (scalar_loss(&attn, &xp, &e) - scalar_loss(&attn, &xm, &e)) / (2.0 * eps);
                assert!(
                    (numeric - dx.get(r, c)).abs() < 1e-5,
                    "dx[{r},{c}] numeric {numeric} analytic {}",
                    dx.get(r, c)
                );
            }
        }
        for r in 0..4 {
            for c in 0..3 {
                let mut ep = e.clone();
                ep.set(r, c, e.get(r, c) + eps);
                let mut em = e.clone();
                em.set(r, c, e.get(r, c) - eps);
                let numeric =
                    (scalar_loss(&attn, &x, &ep) - scalar_loss(&attn, &x, &em)) / (2.0 * eps);
                assert!(
                    (numeric - de.get(r, c)).abs() < 1e-5,
                    "de[{r},{c}] numeric {numeric} analytic {}",
                    de.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut attn = CrossAttention::new(3, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng);
        let e = Matrix::xavier(3, 3, &mut rng);
        let (out, cache) = attn.forward(&x, &e);
        let dout = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        attn.backward(&cache, &dout);

        let eps = 1e-6;
        // Spot-check a few coordinates in each projection.
        for &(name, r, c) in &[("wq", 0, 1), ("wk", 2, 0), ("wv", 1, 2)] {
            let (w, g) = match name {
                "wq" => (&attn.wq, &attn.gwq),
                "wk" => (&attn.wk, &attn.gwk),
                _ => (&attn.wv, &attn.gwv),
            };
            let orig = w.get(r, c);
            let analytic = g.get(r, c);
            let mut perturbed = attn.clone();
            match name {
                "wq" => perturbed.wq.set(r, c, orig + eps),
                "wk" => perturbed.wk.set(r, c, orig + eps),
                _ => perturbed.wv.set(r, c, orig + eps),
            }
            let plus = scalar_loss(&perturbed, &x, &e);
            let mut perturbed = attn.clone();
            match name {
                "wq" => perturbed.wq.set(r, c, orig - eps),
                "wk" => perturbed.wk.set(r, c, orig - eps),
                _ => perturbed.wv.set(r, c, orig - eps),
            }
            let minus = scalar_loss(&perturbed, &x, &e);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "{name}[{r},{c}] numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_grad() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut attn = CrossAttention::new(2, &mut rng);
        let x = Matrix::xavier(1, 2, &mut rng);
        let e = Matrix::xavier(2, 2, &mut rng);
        let (out, cache) = attn.forward(&x, &e);
        let dout = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; 2]);
        attn.backward(&cache, &dout);
        assert!(attn.gwq.norm() > 0.0);
        attn.zero_grad();
        assert_eq!(attn.gwq.norm(), 0.0);
        assert_eq!(attn.param_count(), 3 * 4);
    }
}
