//! Activation, loss and pooling primitives.

use crate::matrix::Matrix;

/// Numerically stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy on a logit. Returns `(loss, dlogit)` — combining the
/// sigmoid with the loss keeps the gradient simply `σ(x) − target`.
pub fn bce_with_logit(logit: f64, target: f64) -> (f64, f64) {
    let p = sigmoid(logit);
    // Stable log-loss: max(x,0) − x·t + ln(1 + e^{−|x|}).
    let loss = logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln();
    (loss, p - target)
}

/// In-place ReLU; returns a mask matrix for the backward pass.
pub fn relu_forward(x: &mut Matrix) -> Matrix {
    let mut mask = Matrix::zeros(x.rows(), x.cols());
    for (i, v) in x.data_mut().iter_mut().enumerate() {
        if *v > 0.0 {
            mask.data_mut()[i] = 1.0;
        } else {
            *v = 0.0;
        }
    }
    mask
}

/// Backward pass of ReLU using the forward mask.
pub fn relu_backward(dy: &mut Matrix, mask: &Matrix) {
    for (g, m) in dy.data_mut().iter_mut().zip(mask.data()) {
        *g *= m;
    }
}

/// Row-wise softmax in place.
pub fn softmax_rows(x: &mut Matrix) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Backward through a row-wise softmax: given `a = softmax(z)` and `da`,
/// computes `dz` in place (standard Jacobian-vector product).
pub fn softmax_rows_backward(a: &Matrix, da: &Matrix) -> Matrix {
    let mut dz = Matrix::zeros(a.rows(), a.cols());
    for r in 0..a.rows() {
        let arow = a.row(r);
        let darow = da.row(r);
        let dot: f64 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
        let dzrow = dz.row_mut(r);
        for ((dzv, &av), &dav) in dzrow.iter_mut().zip(arow).zip(darow) {
            *dzv = av * (dav - dot);
        }
    }
    dz
}

/// Mean-pools the rows of a matrix into a single row vector.
pub fn mean_pool_rows(x: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; x.cols()];
    if x.rows() == 0 {
        return out;
    }
    for r in 0..x.rows() {
        for (o, v) in out.iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    let inv = 1.0 / x.rows() as f64;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Backward of [`mean_pool_rows`]: spreads `dpool` evenly over `n_rows`.
pub fn mean_pool_rows_backward(dpool: &[f64], n_rows: usize) -> Matrix {
    let mut dx = Matrix::zeros(n_rows, dpool.len());
    if n_rows == 0 {
        return dx;
    }
    let inv = 1.0 / n_rows as f64;
    for r in 0..n_rows {
        for (d, &g) in dx.row_mut(r).iter_mut().zip(dpool) {
            *d = g * inv;
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bce_matches_definition() {
        let (loss, grad) = bce_with_logit(0.0, 1.0);
        assert!((loss - (2.0_f64).ln()).abs() < 1e-12);
        assert!((grad - (0.5 - 1.0)).abs() < 1e-12);
        // Large logits stay finite.
        let (loss, _) = bce_with_logit(500.0, 0.0);
        assert!(loss.is_finite() && loss > 100.0);
    }

    #[test]
    fn bce_gradient_check() {
        let eps = 1e-6;
        for &(x, t) in &[(0.3, 1.0), (-1.2, 0.0), (2.5, 1.0)] {
            let (_, grad) = bce_with_logit(x, t);
            let (lp, _) = bce_with_logit(x + eps, t);
            let (lm, _) = bce_with_logit(x - eps, t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_roundtrip() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let mask = relu_forward(&mut x);
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut dy = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward(&mut dy, &mask);
        assert_eq!(dy.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut x);
        for r in 0..2 {
            let sum: f64 = x.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(x.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in the logits.
        assert!(x.get(0, 2) > x.get(0, 1));
    }

    #[test]
    fn softmax_backward_gradient_check() {
        let z = Matrix::from_vec(1, 3, vec![0.2, -0.5, 1.1]);
        let da = Matrix::from_vec(1, 3, vec![0.3, 0.9, -0.4]);
        let mut a = z.clone();
        softmax_rows(&mut a);
        let dz = softmax_rows_backward(&a, &da);
        let eps = 1e-6;
        for c in 0..3 {
            let mut zp = z.clone();
            zp.set(0, c, z.get(0, c) + eps);
            softmax_rows(&mut zp);
            let mut zm = z.clone();
            zm.set(0, c, z.get(0, c) - eps);
            softmax_rows(&mut zm);
            let mut numeric = 0.0;
            for k in 0..3 {
                numeric += da.get(0, k) * (zp.get(0, k) - zm.get(0, k)) / (2.0 * eps);
            }
            assert!((numeric - dz.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_pool_roundtrip() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 5.0]);
        let pooled = mean_pool_rows(&x);
        assert_eq!(pooled, vec![2.0, 4.0]);
        let dx = mean_pool_rows_backward(&[1.0, 2.0], 2);
        assert_eq!(dx.data(), &[0.5, 1.0, 0.5, 1.0]);
    }

    #[test]
    fn mean_pool_empty() {
        let x = Matrix::zeros(0, 3);
        assert_eq!(mean_pool_rows(&x), vec![0.0, 0.0, 0.0]);
    }
}
