//! Formula lexer.

use std::fmt;

/// Lexical tokens of the formula language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped, doubled quotes unescaped).
    Text(String),
    /// Identifier: function name, TRUE/FALSE, or cell reference.
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// An unexpected character at the given byte offset.
    UnexpectedChar(char, usize),
    /// A string literal was never closed.
    UnterminatedString(usize),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar(c, at) => write!(f, "unexpected character {c:?} at byte {at}"),
            LexError::UnterminatedString(at) => {
                write!(f, "unterminated string starting at byte {at}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a formula. A leading `=` (as typed in the formula bar) is
/// skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let src = input.strip_prefix('=').unwrap_or(input);
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' | ';' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(LexError::UnterminatedString(start)),
                        Some(&b'"') => {
                            if bytes.get(i + 1) == Some(&b'"') {
                                s.push('"');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance one UTF-8 scalar.
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Text(s));
            }
            c if c.is_ascii_digit() || (c == '.' && next_is_digit(bytes, i)) => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                match text.parse::<f64>() {
                    Ok(n) => tokens.push(Token::Number(n)),
                    Err(_) => return Err(LexError::UnexpectedChar(c, start)),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => return Err(LexError::UnexpectedChar(other, i)),
        }
    }
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tokens() {
        let toks = tokenize("A1>=10").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("A1".into()), Token::Ge, Token::Number(10.0)]
        );
    }

    #[test]
    fn leading_equals_is_skipped() {
        assert_eq!(tokenize("=1+2").unwrap().len(), 3);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("\"a\"\"b\"").unwrap();
        assert_eq!(toks, vec![Token::Text("a\"b".into())]);
    }

    #[test]
    fn unterminated_string() {
        assert!(matches!(
            tokenize("\"oops"),
            Err(LexError::UnterminatedString(0))
        ));
    }

    #[test]
    fn absolute_refs_and_functions() {
        let toks = tokenize("IF($A$1=\"x\",TRUE,FALSE)").unwrap();
        assert_eq!(toks[0], Token::Ident("IF".into()));
        assert_eq!(toks[2], Token::Ident("$A$1".into()));
    }

    #[test]
    fn scientific_numbers() {
        assert_eq!(tokenize("1.5e3").unwrap(), vec![Token::Number(1500.0)]);
        assert_eq!(tokenize("2E-2").unwrap(), vec![Token::Number(0.02)]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("1<>2<=3>=4<5>6").unwrap();
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn semicolon_is_separator() {
        // European locales use ';' as the argument separator.
        let toks = tokenize("IF(A1;1;2)").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Comma).count(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            tokenize("1 # 2"),
            Err(LexError::UnexpectedChar('#', _))
        ));
    }
}
