//! The paper's rule-length metric (§5.4).
//!
//! "We treat all functions, operators and arguments as individual tokens and
//! define the length of the rule as the associated count of tokens. For
//! example, `IF(A1="Not Applicable", TRUE, FALSE)` consists of tokens
//! `{IF, =, "Not Applicable", TRUE, FALSE}` and thus has length 5. Similarly,
//! `GreaterThan(10)` has length 2."
//!
//! Cell references, parentheses and commas therefore do not count.

use crate::ast::Expr;

/// Token length of a formula per §5.4 of the paper.
pub fn token_length(expr: &Expr) -> usize {
    match expr {
        Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) => 1,
        Expr::CellRef(_) => 0,
        Expr::Neg(inner) => 1 + token_length(inner),
        Expr::Binary(_, l, r) => 1 + token_length(l) + token_length(r),
        Expr::Call(_, args) => 1 + args.iter().map(token_length).sum::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn paper_example_if() {
        // {IF, =, "Not Applicable", TRUE, FALSE} → 5
        let e = parse("IF(A1=\"Not Applicable\", TRUE, FALSE)").unwrap();
        assert_eq!(token_length(&e), 5);
    }

    #[test]
    fn paper_example_greaterthan() {
        // Pseudo-predicate syntax also parses as a call: {GREATERTHAN, 10} → 2
        let e = parse("GreaterThan(10)").unwrap();
        assert_eq!(token_length(&e), 2);
    }

    #[test]
    fn cell_refs_do_not_count() {
        let e = parse("A1>5").unwrap();
        assert_eq!(token_length(&e), 2); // {>, 5}
    }

    #[test]
    fn nested() {
        // {ISNUMBER, SEARCH, "Pass"} → 3
        let e = parse("ISNUMBER(SEARCH(\"Pass\",A1))").unwrap();
        assert_eq!(token_length(&e), 3);
        // {IF, =, LEFT, 2, "Dr", TRUE, FALSE} → 7
        let e = parse("IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)").unwrap();
        assert_eq!(token_length(&e), 7);
    }

    #[test]
    fn negation_counts_as_operator() {
        let e = parse("-A1>5").unwrap();
        assert_eq!(token_length(&e), 3); // {-, >, 5}
    }
}
