//! A miniature Excel formula language.
//!
//! Conditional-formatting rules in Excel and Google Sheets can be arbitrary
//! boolean-valued formulas. The Cornet paper compares learned rules against
//! *user-written* custom formulas (Q4, Figures 15/16, Table 7), measures rule
//! length in tokens (§5.4), and gives worked examples such as
//! `IF(LEFT(A1,2)="Dr",TRUE,FALSE)`. This crate implements the subset of the
//! formula language those experiments need:
//!
//! * [`ast::Expr`] — the abstract syntax tree,
//! * [`parser`] — a recursive-descent parser with spreadsheet precedence,
//! * [`eval`] — an evaluator where a cell reference resolves to "the value of
//!   the current cell" (CF formulas are written against the anchor cell of
//!   the range, e.g. `A1`),
//! * [`tokens`] — the paper's token-length metric: functions, operators and
//!   literal arguments count one token each; cell references, parentheses
//!   and commas do not (§5.4: `IF(A1="Not Applicable", TRUE, FALSE)` has
//!   length 5, `GreaterThan(10)` has length 2).

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod tokens;

pub use ast::{BinaryOp, Expr};
pub use eval::{evaluate, evaluate_bool, FValue};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};
pub use tokens::token_length;
