//! Formula abstract syntax tree.

use std::fmt;

/// Binary operators with spreadsheet semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=` (case-insensitive text equality, like Excel).
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&` string concatenation.
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Concat => "&",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// A formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Text(String),
    /// Boolean literal (`TRUE` / `FALSE`).
    Bool(bool),
    /// A cell reference such as `A1` or `$B$2`. In conditional formatting the
    /// reference denotes the current cell of the formatted range, so we only
    /// record the surface text.
    CellRef(String),
    /// Function call, name stored upper-cased.
    Call(String, Vec<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for calls.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(name.to_ascii_uppercase(), args)
    }

    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// The default cell reference used when rendering rules as formulas.
    pub fn current_cell() -> Expr {
        Expr::CellRef("A1".to_string())
    }

    /// Number of nodes in the AST (used in tests and complexity metrics).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::CellRef(_) => 1,
            Expr::Call(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Neg(inner) => 1 + inner.node_count(),
            Expr::Binary(_, l, r) => 1 + l.node_count() + r.node_count(),
        }
    }

    /// Depth of the AST (a literal has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::CellRef(_) => 1,
            Expr::Call(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::Neg(inner) => 1 + inner.depth(),
            Expr::Binary(_, l, r) => 1 + l.depth().max(r.depth()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::CellRef(r) => write!(f, "{r}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Neg(inner) => write!(f, "-{inner}"),
            Expr::Binary(op, l, r) => write!(f, "{l}{}{r}", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::call(
            "IF",
            vec![
                Expr::binary(
                    BinaryOp::Eq,
                    Expr::call("LEFT", vec![Expr::current_cell(), Expr::Number(2.0)]),
                    Expr::Text("Dr".into()),
                ),
                Expr::Bool(true),
                Expr::Bool(false),
            ],
        );
        assert_eq!(e.to_string(), "IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)");
    }

    #[test]
    fn quote_escaping() {
        let e = Expr::Text("say \"hi\"".into());
        assert_eq!(e.to_string(), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn node_count_and_depth() {
        let e = Expr::binary(BinaryOp::Gt, Expr::current_cell(), Expr::Number(5.0));
        assert_eq!(e.node_count(), 3);
        assert_eq!(e.depth(), 2);
        assert_eq!(Expr::Number(1.0).depth(), 1);
    }
}
