//! Recursive-descent parser with spreadsheet operator precedence.
//!
//! Precedence (loosest binds last, as in Excel):
//! comparisons < concatenation (`&`) < additive < multiplicative < unary.

use crate::ast::{BinaryOp, Expr};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// Parser errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Ran out of tokens mid-expression.
    UnexpectedEnd,
    /// A token that cannot start or continue the expression here.
    UnexpectedToken(String),
    /// Tokens remained after a complete expression.
    TrailingTokens(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::UnexpectedEnd => write!(f, "unexpected end of formula"),
            ParseError::UnexpectedToken(t) => write!(f, "unexpected token {t}"),
            ParseError::TrailingTokens(t) => write!(f, "trailing tokens starting at {t}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a formula string into an [`Expr`].
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.comparison()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::TrailingTokens(format!(
            "{:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, expected: &Token) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t == expected {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken(format!("{t:?}")))
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.concat()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::Ne) => BinaryOp::Ne,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::Le) => BinaryOp::Le,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::Ge) => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.concat()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn concat(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        while self.peek() == Some(&Token::Amp) {
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::binary(BinaryOp::Concat, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if self.peek() == Some(&Token::Plus) {
            self.pos += 1;
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Token::Number(n) => Ok(Expr::Number(n)),
            Token::Text(s) => Ok(Expr::Text(s)),
            Token::LParen => {
                let inner = self.comparison()?;
                self.eat(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Token::RParen) {
                        self.pos += 1;
                    } else {
                        loop {
                            args.push(self.comparison()?);
                            match self.next()? {
                                Token::Comma => continue,
                                Token::RParen => break,
                                t => return Err(ParseError::UnexpectedToken(format!("{t:?}"))),
                            }
                        }
                    }
                    return Ok(Expr::Call(upper, args));
                }
                match upper.as_str() {
                    "TRUE" => Ok(Expr::Bool(true)),
                    "FALSE" => Ok(Expr::Bool(false)),
                    _ if is_cell_ref(&name) => Ok(Expr::CellRef(name)),
                    _ => Err(ParseError::UnexpectedToken(format!("identifier {name}"))),
                }
            }
            t => Err(ParseError::UnexpectedToken(format!("{t:?}"))),
        }
    }
}

/// True for surface texts that look like an A1-style cell reference
/// (optionally absolute, e.g. `$B$12`).
fn is_cell_ref(s: &str) -> bool {
    let s = s.trim_start_matches('$');
    let letters: String = s.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
    let rest = &s[letters.len()..];
    let rest = rest.strip_prefix('$').unwrap_or(rest);
    !letters.is_empty()
        && letters.len() <= 3
        && !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comparison() {
        let e = parse("A1>10").unwrap();
        assert_eq!(
            e,
            Expr::binary(BinaryOp::Gt, Expr::CellRef("A1".into()), Expr::Number(10.0))
        );
    }

    #[test]
    fn parses_nested_calls() {
        let e = parse("IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)").unwrap();
        assert_eq!(e.to_string(), "IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)");
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse("1+2*3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinaryOp::Add,
                Expr::Number(1.0),
                Expr::binary(BinaryOp::Mul, Expr::Number(2.0), Expr::Number(3.0))
            )
        );
    }

    #[test]
    fn precedence_add_over_comparison() {
        let e = parse("1+2>2+0").unwrap();
        match e {
            Expr::Binary(BinaryOp::Gt, _, _) => {}
            other => panic!("expected comparison at root, got {other:?}"),
        }
    }

    #[test]
    fn parens_override() {
        let e = parse("(1+2)*3").unwrap();
        match e {
            Expr::Binary(BinaryOp::Mul, _, _) => {}
            other => panic!("expected mul at root, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let e = parse("-A1").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
        let e = parse("--5").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn absolute_refs() {
        assert!(matches!(parse("$A$1=5").unwrap(), Expr::Binary(..)));
    }

    #[test]
    fn bool_literals() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse("false").unwrap(), Expr::Bool(false));
    }

    #[test]
    fn zero_arg_calls() {
        assert_eq!(
            parse("TODAY()").unwrap(),
            Expr::Call("TODAY".into(), vec![])
        );
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("1+").is_err());
        assert!(parse("IF(1,2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("unknownident").is_err());
    }

    #[test]
    fn cell_ref_detection() {
        assert!(is_cell_ref("A1"));
        assert!(is_cell_ref("$B$12"));
        assert!(is_cell_ref("AZ99"));
        assert!(!is_cell_ref("A"));
        assert!(!is_cell_ref("1A"));
        assert!(!is_cell_ref("ABCD1"));
        assert!(!is_cell_ref("HELLO"));
    }

    #[test]
    fn leading_equals() {
        assert!(parse("=A1>5").is_ok());
    }
}
