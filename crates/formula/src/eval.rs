//! Formula evaluation against a single cell.
//!
//! Conditional-formatting formulas are written against the anchor cell of the
//! formatted range, so every cell reference resolves to the value of the cell
//! currently being tested. Semantics follow Excel where the paper's
//! experiments depend on them:
//!
//! * `=` / `<>` on text are case-insensitive; `EXACT` is case-sensitive.
//! * `SEARCH` is case-insensitive and returns a 1-based position or an error;
//!   `FIND` is the case-sensitive variant. `ISNUMBER(SEARCH(..))` is the
//!   canonical "contains" idiom the paper's Table 7 shows.
//! * Comparing a number with text: numbers order before text (Excel sort
//!   order); equality across types is false.
//! * Arithmetic coerces numeric-looking text and booleans like Excel does.

use crate::ast::{BinaryOp, Expr};
use cornet_table::{CellValue, Date};

/// The result of evaluating a formula.
#[derive(Debug, Clone, PartialEq)]
pub enum FValue {
    /// Numeric result.
    Number(f64),
    /// Text result.
    Text(String),
    /// Boolean result.
    Bool(bool),
    /// A date (stored as days since 1970-01-01). Unlike real Excel, this
    /// mini-language keeps dates distinct from numbers so that `ISNUMBER`
    /// can implement the paper's *typed* predicates; in arithmetic and
    /// comparisons a date still behaves as its serial number.
    Date(i32),
    /// Blank (reference to an empty cell).
    Blank,
    /// An error value such as `#VALUE!`.
    Error(&'static str),
}

impl FValue {
    /// Excel-style truthiness: errors propagate as `false` at the CF layer,
    /// numbers are true when non-zero, text is never true.
    pub fn is_truthy(&self) -> bool {
        match self {
            FValue::Bool(b) => *b,
            FValue::Number(n) => *n != 0.0,
            FValue::Date(_) => true,
            _ => false,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            FValue::Number(n) => Some(*n),
            FValue::Date(d) => Some(*d as f64),
            FValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            FValue::Text(s) => s.trim().parse::<f64>().ok(),
            FValue::Blank => Some(0.0),
            FValue::Error(_) => None,
        }
    }

    fn as_text(&self) -> String {
        match self {
            FValue::Text(s) => s.clone(),
            FValue::Number(n) => cornet_table::value::format_number(*n),
            FValue::Date(d) => Date::from_days(*d).to_string(),
            FValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            FValue::Blank => String::new(),
            FValue::Error(e) => (*e).to_string(),
        }
    }
}

fn cell_to_fvalue(cell: &CellValue) -> FValue {
    match cell {
        CellValue::Empty => FValue::Blank,
        CellValue::Text(s) => FValue::Text(s.clone()),
        CellValue::Number(n) => FValue::Number(*n),
        CellValue::Date(d) => FValue::Date(d.days()),
    }
}

/// Evaluates `expr` with every cell reference bound to `cell`.
pub fn evaluate(expr: &Expr, cell: &CellValue) -> FValue {
    match expr {
        Expr::Number(n) => FValue::Number(*n),
        Expr::Text(s) => FValue::Text(s.clone()),
        Expr::Bool(b) => FValue::Bool(*b),
        Expr::CellRef(_) => cell_to_fvalue(cell),
        Expr::Neg(inner) => match evaluate(inner, cell).as_number() {
            Some(n) => FValue::Number(-n),
            None => FValue::Error("#VALUE!"),
        },
        Expr::Binary(op, l, r) => {
            let lv = evaluate(l, cell);
            let rv = evaluate(r, cell);
            eval_binary(*op, lv, rv)
        }
        Expr::Call(name, args) => eval_call(name, args, cell),
    }
}

/// Evaluates a formula as a conditional-formatting condition: errors and
/// non-truthy values mean "do not format".
pub fn evaluate_bool(expr: &Expr, cell: &CellValue) -> bool {
    evaluate(expr, cell).is_truthy()
}

fn eval_binary(op: BinaryOp, lv: FValue, rv: FValue) -> FValue {
    if let FValue::Error(e) = lv {
        return FValue::Error(e);
    }
    if let FValue::Error(e) = rv {
        return FValue::Error(e);
    }
    match op {
        BinaryOp::Concat => FValue::Text(format!("{}{}", lv.as_text(), rv.as_text())),
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
            match (lv.as_number(), rv.as_number()) {
                (Some(a), Some(b)) => match op {
                    BinaryOp::Add => FValue::Number(a + b),
                    BinaryOp::Sub => FValue::Number(a - b),
                    BinaryOp::Mul => FValue::Number(a * b),
                    BinaryOp::Div => {
                        if b == 0.0 {
                            FValue::Error("#DIV/0!")
                        } else {
                            FValue::Number(a / b)
                        }
                    }
                    _ => unreachable!(),
                },
                _ => FValue::Error("#VALUE!"),
            }
        }
        _ => compare(op, &lv, &rv),
    }
}

fn compare(op: BinaryOp, lv: &FValue, rv: &FValue) -> FValue {
    use std::cmp::Ordering;
    // Excel type ordering: number < text < bool. Blank coerces to the other
    // side's zero value.
    fn rank(v: &FValue) -> u8 {
        match v {
            FValue::Number(_) | FValue::Date(_) | FValue::Blank => 0,
            FValue::Text(_) => 1,
            FValue::Bool(_) => 2,
            FValue::Error(_) => 3,
        }
    }
    let ord = if rank(lv) == rank(rv) {
        match (lv, rv) {
            (FValue::Text(a), FValue::Text(b)) => {
                let (a, b) = (a.to_lowercase(), b.to_lowercase());
                a.cmp(&b)
            }
            _ => {
                // NaN is reachable here (finite arithmetic can overflow to
                // ∞, and ∞ − ∞ = NaN). `total_cmp` sorts NaN above every
                // number, so `NaN = x` is FALSE instead of the silent TRUE
                // the old `unwrap_or(Equal)` produced (regression test
                // `nan_compares_unequal_not_silently_equal`).
                let a = lv.as_number().unwrap_or(0.0);
                let b = rv.as_number().unwrap_or(0.0);
                a.total_cmp(&b)
            }
        }
    } else {
        rank(lv).cmp(&rank(rv))
    };
    let result = match op {
        BinaryOp::Eq => ord == Ordering::Equal && rank(lv) == rank(rv),
        BinaryOp::Ne => ord != Ordering::Equal || rank(lv) != rank(rv),
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compare only handles comparison ops"),
    };
    FValue::Bool(result)
}

fn eval_call(name: &str, args: &[Expr], cell: &CellValue) -> FValue {
    let arg = |i: usize| -> FValue {
        args.get(i)
            .map(|a| evaluate(a, cell))
            .unwrap_or(FValue::Blank)
    };
    let num = |i: usize| -> Option<f64> { arg(i).as_number() };
    match name {
        "IF" => {
            if args.is_empty() {
                return FValue::Error("#VALUE!");
            }
            let cond = arg(0);
            if let FValue::Error(e) = cond {
                return FValue::Error(e);
            }
            if cond.is_truthy() {
                if args.len() > 1 {
                    arg(1)
                } else {
                    FValue::Bool(true)
                }
            } else if args.len() > 2 {
                arg(2)
            } else {
                FValue::Bool(false)
            }
        }
        "AND" => {
            let mut all = true;
            for i in 0..args.len() {
                match arg(i) {
                    FValue::Error(e) => return FValue::Error(e),
                    v => all &= v.is_truthy(),
                }
            }
            FValue::Bool(all && !args.is_empty())
        }
        "OR" => {
            let mut any = false;
            for i in 0..args.len() {
                match arg(i) {
                    FValue::Error(e) => return FValue::Error(e),
                    v => any |= v.is_truthy(),
                }
            }
            FValue::Bool(any)
        }
        "NOT" => match arg(0) {
            FValue::Error(e) => FValue::Error(e),
            v => FValue::Bool(!v.is_truthy()),
        },
        "TRUE" => FValue::Bool(true),
        "FALSE" => FValue::Bool(false),
        "LEN" => FValue::Number(arg(0).as_text().chars().count() as f64),
        "LEFT" => {
            let s = arg(0).as_text();
            let n = num(1).unwrap_or(1.0).max(0.0) as usize;
            FValue::Text(s.chars().take(n).collect())
        }
        "RIGHT" => {
            let s = arg(0).as_text();
            let n = num(1).unwrap_or(1.0).max(0.0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let start = chars.len().saturating_sub(n);
            FValue::Text(chars[start..].iter().collect())
        }
        "MID" => {
            let s = arg(0).as_text();
            let (Some(start), Some(len)) = (num(1), num(2)) else {
                return FValue::Error("#VALUE!");
            };
            if start < 1.0 || len < 0.0 {
                return FValue::Error("#VALUE!");
            }
            FValue::Text(
                s.chars()
                    .skip(start as usize - 1)
                    .take(len as usize)
                    .collect(),
            )
        }
        "SEARCH" | "FIND" => {
            let needle = arg(0).as_text();
            let hay = arg(1).as_text();
            let (needle, hay) = if name == "SEARCH" {
                (needle.to_lowercase(), hay.to_lowercase())
            } else {
                (needle, hay)
            };
            match hay.find(&needle) {
                Some(byte_pos) => {
                    let char_pos = hay[..byte_pos].chars().count() + 1;
                    FValue::Number(char_pos as f64)
                }
                None => FValue::Error("#VALUE!"),
            }
        }
        "ISNUMBER" => FValue::Bool(matches!(arg(0), FValue::Number(_))),
        "ISTEXT" => FValue::Bool(matches!(arg(0), FValue::Text(_))),
        "ISBLANK" => FValue::Bool(matches!(arg(0), FValue::Blank)),
        "ISERROR" => FValue::Bool(matches!(arg(0), FValue::Error(_))),
        "EXACT" => FValue::Bool(arg(0).as_text() == arg(1).as_text()),
        "UPPER" => FValue::Text(arg(0).as_text().to_uppercase()),
        "LOWER" => FValue::Text(arg(0).as_text().to_lowercase()),
        "TRIM" => FValue::Text(arg(0).as_text().trim().to_string()),
        "ABS" => match num(0) {
            Some(n) => FValue::Number(n.abs()),
            None => FValue::Error("#VALUE!"),
        },
        "MOD" => match (num(0), num(1)) {
            (Some(a), Some(b)) if b != 0.0 => FValue::Number(a.rem_euclid(b)),
            (Some(_), Some(_)) => FValue::Error("#DIV/0!"),
            _ => FValue::Error("#VALUE!"),
        },
        "DAY" | "MONTH" | "YEAR" | "WEEKDAY" => {
            // Strict typing (unlike real Excel): the date-part functions
            // only accept dates, which is how exported date predicates stay
            // typed without explicit guards.
            let FValue::Date(serial) = arg(0) else {
                return FValue::Error("#VALUE!");
            };
            let date = Date::from_days(serial);
            let part = match name {
                "DAY" => date.day() as f64,
                "MONTH" => date.month() as f64,
                "YEAR" => date.year() as f64,
                _ => {
                    // WEEKDAY return types: 1 (default) Sunday=1..Saturday=7,
                    // 2 Monday=1..Sunday=7.
                    let return_type = num(1).unwrap_or(1.0) as i64;
                    let iso = date.weekday().number(); // Monday=1
                    match return_type {
                        2 => iso as f64,
                        _ => (iso % 7 + 1) as f64,
                    }
                }
            };
            FValue::Number(part)
        }
        "DATE" => match (num(0), num(1), num(2)) {
            (Some(y), Some(m), Some(d)) => match Date::from_ymd(y as i32, m as u32, d as u32) {
                Some(date) => FValue::Date(date.days()),
                None => FValue::Error("#NUM!"),
            },
            _ => FValue::Error("#VALUE!"),
        },
        "CONCATENATE" => {
            let mut out = String::new();
            for i in 0..args.len() {
                out.push_str(&arg(i).as_text());
            }
            FValue::Text(out)
        }
        "VALUE" => match arg(0).as_number() {
            Some(n) => FValue::Number(n),
            None => FValue::Error("#VALUE!"),
        },
        _ => FValue::Error("#NAME?"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval_on(src: &str, cell: CellValue) -> FValue {
        evaluate(&parse(src).unwrap(), &cell)
    }

    fn truthy(src: &str, cell: CellValue) -> bool {
        evaluate_bool(&parse(src).unwrap(), &cell)
    }

    #[test]
    fn paper_example_left_prefix() {
        // Table 7: IF(LEFT(A1,2)="Dr",TRUE,FALSE) ≡ TextStartsWith("Dr")
        let f = "IF(LEFT(A1,2)=\"Dr\",TRUE,FALSE)";
        assert!(truthy(f, CellValue::from("Dr Smith")));
        assert!(!truthy(f, CellValue::from("Mr Smith")));
    }

    #[test]
    fn paper_example_isnumber_search() {
        // Table 7: ISNUMBER(SEARCH("Pass",A1)) ≡ TextContains("Pass")
        let f = "ISNUMBER(SEARCH(\"Pass\",A1))";
        assert!(truthy(f, CellValue::from("Passed")));
        assert!(truthy(f, CellValue::from("did pass"))); // SEARCH case-insensitive
        assert!(!truthy(f, CellValue::from("Fail")));
    }

    #[test]
    fn paper_example_not_le() {
        // Table 7: IF(NOT(A1<=5), TRUE) ≡ GreaterThan(5)
        let f = "IF(NOT(A1<=5),TRUE)";
        assert!(truthy(f, CellValue::Number(6.0)));
        assert!(!truthy(f, CellValue::Number(5.0)));
    }

    #[test]
    fn equality_case_insensitive_but_exact_not() {
        assert!(truthy("A1=\"ok\"", CellValue::from("OK")));
        assert!(!truthy("EXACT(A1,\"ok\")", CellValue::from("OK")));
        assert!(truthy("EXACT(A1,\"OK\")", CellValue::from("OK")));
    }

    #[test]
    fn find_is_case_sensitive() {
        assert!(truthy(
            "ISNUMBER(FIND(\"Pass\",A1))",
            CellValue::from("Pass")
        ));
        assert!(!truthy(
            "ISNUMBER(FIND(\"Pass\",A1))",
            CellValue::from("pass")
        ));
    }

    #[test]
    fn cross_type_equality_is_false() {
        assert!(!truthy("A1=5", CellValue::from("5ish")));
        assert!(!truthy("A1=\"5\"", CellValue::Number(5.0)));
    }

    #[test]
    fn number_orders_before_text() {
        // Excel: any number < any text.
        assert!(truthy("A1<\"a\"", CellValue::Number(9e9)));
        assert!(!truthy("A1>\"a\"", CellValue::Number(9e9)));
    }

    #[test]
    fn nan_compares_unequal_not_silently_equal() {
        // ∞ − ∞ = NaN reaches the numeric comparator; the old
        // `partial_cmp(..).unwrap_or(Equal)` made `NaN = x` TRUE for every
        // x. `total_cmp` orders NaN above all numbers: never equal, always
        // strictly greater.
        let nan = "(1e308*10)-(1e308*10)"; // inf - inf
        assert!(!truthy(&format!("({nan})=0"), CellValue::Empty));
        // The total order is reflexive: an identical NaN equals itself
        // (unlike IEEE `==`, deliberately — the order must be total).
        assert!(truthy(&format!("({nan})=({nan})"), CellValue::Empty));
        assert!(truthy(&format!("({nan})<>0"), CellValue::Empty));
        // The sign of the NaN that `∞ − ∞` yields is platform-defined, so
        // it lands either above every number or below (−NaN) — but always
        // strictly ordered, never equal.
        let gt = truthy(&format!("({nan})>1e308"), CellValue::Empty);
        let lt = truthy(&format!("({nan})<-1e308"), CellValue::Empty);
        assert!(gt ^ lt, "NaN must order strictly to one side");
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        assert_eq!(eval_on("1+2*3", CellValue::Empty), FValue::Number(7.0));
        assert_eq!(eval_on("1/0", CellValue::Empty), FValue::Error("#DIV/0!"));
        assert_eq!(eval_on("MOD(7,3)", CellValue::Empty), FValue::Number(1.0));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_on("MID(A1,2,3)", CellValue::from("abcdef")),
            FValue::Text("bcd".into())
        );
        assert_eq!(
            eval_on("RIGHT(A1,2)", CellValue::from("abc")),
            FValue::Text("bc".into())
        );
        assert_eq!(
            eval_on("LEN(A1)", CellValue::from("héllo")),
            FValue::Number(5.0)
        );
        assert_eq!(
            eval_on("UPPER(A1)&\"!\"", CellValue::from("hi")),
            FValue::Text("HI!".into())
        );
    }

    #[test]
    fn date_parts() {
        let d = CellValue::Date(Date::from_ymd(2022, 12, 5).unwrap());
        assert_eq!(eval_on("YEAR(A1)", d.clone()), FValue::Number(2022.0));
        assert_eq!(eval_on("MONTH(A1)", d.clone()), FValue::Number(12.0));
        assert_eq!(eval_on("DAY(A1)", d.clone()), FValue::Number(5.0));
        // 2022-12-05 is a Monday: WEEKDAY()=2 (Sunday=1), WEEKDAY(..,2)=1.
        assert_eq!(eval_on("WEEKDAY(A1)", d.clone()), FValue::Number(2.0));
        assert_eq!(eval_on("WEEKDAY(A1,2)", d), FValue::Number(1.0));
    }

    #[test]
    fn date_comparison_via_date_fn() {
        let d = CellValue::Date(Date::from_ymd(2022, 6, 1).unwrap());
        assert!(truthy("A1>DATE(2022,1,1)", d.clone()));
        assert!(!truthy("A1>DATE(2023,1,1)", d));
    }

    #[test]
    fn errors_propagate_and_are_not_truthy() {
        assert!(!truthy("1/0", CellValue::Empty));
        assert_eq!(
            eval_on("IF(1/0,TRUE,FALSE)", CellValue::Empty),
            FValue::Error("#DIV/0!")
        );
        assert!(truthy("ISERROR(1/0)", CellValue::Empty));
    }

    #[test]
    fn and_or_not_semantics() {
        assert!(truthy("AND(1,TRUE)", CellValue::Empty));
        assert!(!truthy("AND(1,0)", CellValue::Empty));
        assert!(!truthy("AND()", CellValue::Empty));
        assert!(truthy("OR(0,1)", CellValue::Empty));
        assert!(!truthy("OR()", CellValue::Empty));
        assert!(truthy("NOT(0)", CellValue::Empty));
    }

    #[test]
    fn if_defaults() {
        assert_eq!(eval_on("IF(1)", CellValue::Empty), FValue::Bool(true));
        assert_eq!(eval_on("IF(0)", CellValue::Empty), FValue::Bool(false));
        assert_eq!(eval_on("IF(0,1)", CellValue::Empty), FValue::Bool(false));
    }

    #[test]
    fn unknown_function_is_name_error() {
        assert_eq!(
            eval_on("NOPE(1)", CellValue::Empty),
            FValue::Error("#NAME?")
        );
    }

    #[test]
    fn blank_handling() {
        assert!(truthy("ISBLANK(A1)", CellValue::Empty));
        assert!(!truthy("ISBLANK(A1)", CellValue::from("x")));
        // Blank coerces to 0 in arithmetic, as in Excel.
        assert_eq!(eval_on("A1+1", CellValue::Empty), FValue::Number(1.0));
    }
}
