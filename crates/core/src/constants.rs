//! Constant generation for predicate concretisation (Table 2).
//!
//! | Type    | Arg(s)    | Values                                            |
//! |---------|-----------|---------------------------------------------------|
//! | numeric | `n`       | all numbers that occur in the column              |
//! | numeric | `n`       | summary statistics: mean, min, max, percentiles   |
//! | numeric | `n`       | popular constants such as 0, 1 and 10ⁿ            |
//! | numeric | `n1`,`n2` | numeric generators for `n`, keeping `n1 < n2`     |
//! | text    | `s`       | whole cell value                                  |
//! | text    | `s`       | tokens from splitting on non-alphanumerics        |
//! | text    | `s`       | tokens from a prefix trie                         |
//! | date    | `n`,`d`   | per part `d`, extract values and use the numeric  |
//! |         |           | generator for `n`                                 |
//!
//! Candidate ordering matters downstream: when two predicates have identical
//! evaluation signatures on the column, predicate generation keeps the one
//! generated from the *earlier* constant source. Listing popular constants
//! and summary statistics before raw column values reproduces the paper's
//! observation that "due to enumeration, Cornet yields more general numbers
//! (10 versus 10.5)" (Table 7 discussion).

use cornet_table::Date;

/// Tunable bounds for constant generation. These are engineering bounds —
/// the paper enumerates unboundedly and relies on small real columns; the
/// defaults are generous enough to be behaviour-preserving on corpus-scale
/// columns while keeping worst-case work bounded.
#[derive(Debug, Clone)]
pub struct ConstantConfig {
    /// Maximum distinct numeric constants taken from raw column values;
    /// larger columns are thinned to evenly spaced quantile points.
    pub max_column_numbers: usize,
    /// Percentiles used as summary statistics.
    pub percentiles: Vec<f64>,
    /// "Popular" constants always tried for numeric predicates.
    pub popular: Vec<f64>,
    /// Maximum number of `between` pairs generated.
    pub max_between_pairs: usize,
    /// Minimum length of a prefix-trie token.
    pub min_prefix_len: usize,
    /// Minimum number of column values sharing a prefix for it to become a
    /// constant.
    pub min_prefix_support: usize,
    /// Maximum distinct text constants (whole values + tokens + prefixes).
    pub max_text_constants: usize,
}

impl Default for ConstantConfig {
    fn default() -> Self {
        ConstantConfig {
            // Effectively unthinned for realistic columns: every distinct
            // value is a candidate threshold, so any gold cut between two
            // adjacent values stays expressible (execution match depends on
            // it). Thinning only kicks in on pathological columns.
            max_column_numbers: 1024,
            percentiles: vec![0.25, 0.5, 0.75],
            popular: vec![0.0, 1.0, 10.0, 100.0, 1000.0],
            max_between_pairs: 128,
            min_prefix_len: 2,
            min_prefix_support: 2,
            max_text_constants: 512,
        }
    }
}

/// Numeric constants for single-argument predicates, in preference order
/// (popular → summary statistics → column values). Deduplicated.
pub fn numeric_constants(values: &[f64], config: &ConstantConfig) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    let mut push = |v: f64| {
        if v.is_finite() && !out.contains(&v) {
            out.push(v);
        }
    };
    for &p in &config.popular {
        push(p);
    }
    if !values.is_empty() {
        // The `is_finite` filter on the previous line makes NaN provably
        // unreachable here; `total_cmp` removes the panic path anyway.
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        if !sorted.is_empty() {
            let min = sorted[0];
            let max = sorted[sorted.len() - 1];
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            push(round_for_display(mean));
            push(min);
            push(max);
            for &p in &config.percentiles {
                push(percentile(&sorted, p));
            }
            if sorted.len() <= config.max_column_numbers {
                for &v in &sorted {
                    push(v);
                }
            } else {
                // Thin to evenly spaced quantile points so long columns keep
                // decision-boundary candidates everywhere in the range.
                for i in 0..config.max_column_numbers {
                    let idx = i * (sorted.len() - 1) / (config.max_column_numbers - 1);
                    push(sorted[idx]);
                }
            }
        }
    }
    out
}

/// `between` argument pairs: ordered pairs drawn from the single-argument
/// generator, keeping `lo < hi`, capped and biased toward pairs that bracket
/// dense regions (adjacent quantiles first, then wider spans).
pub fn between_pairs(constants: &[f64], config: &ConstantConfig) -> Vec<(f64, f64)> {
    // Public entry point: callers may pass arbitrary floats, so the sort
    // must be total — `partial_cmp(..).unwrap()` here panicked on NaN.
    let mut sorted: Vec<f64> = constants.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let mut out = Vec::new();
    // Widening spans: first adjacent pairs, then distance-2 pairs, etc.
    'outer: for span in 1..sorted.len() {
        for i in 0..sorted.len() - span {
            if out.len() >= config.max_between_pairs {
                break 'outer;
            }
            out.push((sorted[i], sorted[i + span]));
        }
    }
    out
}

/// Text constants, in preference order: whole cell values → prefix-trie
/// tokens → delimiter tokens. Deduplicated case-insensitively, capped.
pub fn text_constants(values: &[&str], config: &ConstantConfig) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let mut push = |s: &str| {
        if s.is_empty() || out.len() >= config.max_text_constants {
            return;
        }
        let key = s.to_lowercase();
        if !seen.contains(&key) {
            seen.push(key);
            out.push(s.to_string());
        }
    };
    // Whole values (Example 4's first source).
    for v in values {
        push(v.trim());
    }
    // Prefix-trie tokens: shared prefixes of ≥ min_prefix_len supported by
    // ≥ min_prefix_support values.
    for prefix in prefix_tokens(values, config.min_prefix_len, config.min_prefix_support) {
        push(&prefix);
    }
    // Delimiter tokens: split on non-alphanumeric characters.
    for v in values {
        for token in split_tokens(v) {
            push(token);
        }
    }
    out
}

/// Splits a cell value on runs of non-alphanumeric characters.
pub fn split_tokens(value: &str) -> impl Iterator<Item = &str> {
    value
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

/// Shared prefixes (length ≥ `min_len`, support ≥ `min_support`), found by
/// sorting lowercased values and taking longest common prefixes of adjacent
/// entries — equivalent to reading internal trie nodes. Only *maximal*
/// prefixes per adjacent pair are kept, plus their shorter closed ancestors
/// that gain additional support.
pub fn prefix_tokens(values: &[&str], min_len: usize, min_support: usize) -> Vec<String> {
    let mut lowered: Vec<String> = values.iter().map(|v| v.trim().to_lowercase()).collect();
    lowered.sort();
    lowered.dedup();
    let mut candidates: Vec<String> = Vec::new();
    for pair in lowered.windows(2) {
        let lcp = longest_common_prefix(&pair[0], &pair[1]);
        if lcp.chars().count() >= min_len {
            candidates.push(lcp.to_string());
        }
    }
    candidates.sort();
    candidates.dedup();
    // Filter by actual support over the original (deduplicated) values.
    candidates.retain(|prefix| {
        lowered
            .iter()
            .filter(|v| v.starts_with(prefix.as_str()))
            .count()
            >= min_support
    });
    candidates
}

fn longest_common_prefix<'a>(a: &'a str, b: &str) -> &'a str {
    let mut end = 0;
    for (ca, cb) in a.chars().zip(b.chars()) {
        if ca != cb {
            break;
        }
        end += ca.len_utf8();
    }
    &a[..end]
}

/// Date-part constants: for each requested part, extract the numeric values
/// and run the numeric generator (Table 2, last row). Returns integral
/// candidates only.
pub fn date_part_constants(
    dates: &[Date],
    part: crate::predicate::DatePart,
    config: &ConstantConfig,
) -> Vec<i64> {
    let values: Vec<f64> = dates.iter().map(|d| part.extract(*d) as f64).collect();
    numeric_constants(&values, config)
        .into_iter()
        .filter(|v| v.fract() == 0.0)
        .map(|v| v as i64)
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Rounds a derived statistic (e.g. the mean) to a display-friendly value so
/// generated rules carry readable constants.
fn round_for_display(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::DatePart;

    #[test]
    fn numeric_includes_all_sources() {
        let values = [5.0, 10.5, 20.0];
        let consts = numeric_constants(&values, &ConstantConfig::default());
        // Popular first.
        assert_eq!(consts[0], 0.0);
        assert!(consts.contains(&1.0));
        // Column values.
        assert!(consts.contains(&5.0));
        assert!(consts.contains(&10.5));
        assert!(consts.contains(&20.0));
        // Mean ≈ 11.83.
        assert!(consts.contains(&11.83));
        // No duplicates.
        let mut dedup = consts.clone();
        dedup.dedup_by(|a, b| a == b);
        assert_eq!(dedup.len(), consts.len());
    }

    #[test]
    fn numeric_popular_precede_column_values() {
        let values = [10.5, 42.0];
        let consts = numeric_constants(&values, &ConstantConfig::default());
        let pos_10 = consts.iter().position(|&v| v == 10.0).unwrap();
        let pos_105 = consts.iter().position(|&v| v == 10.5).unwrap();
        assert!(pos_10 < pos_105, "popular 10 must precede column 10.5");
    }

    #[test]
    fn numeric_thinning_caps_long_columns() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let config = ConstantConfig::default();
        let consts = numeric_constants(&values, &config);
        assert!(consts.len() <= config.max_column_numbers + config.popular.len() + 6);
        // Extremes survive thinning.
        assert!(consts.contains(&0.0));
        assert!(consts.contains(&9999.0));
    }

    #[test]
    fn between_pairs_ordered_and_capped() {
        let consts = [1.0, 2.0, 3.0, 4.0];
        let pairs = between_pairs(&consts, &ConstantConfig::default());
        assert!(pairs.iter().all(|(lo, hi)| lo < hi));
        // Adjacent pairs come first.
        assert_eq!(pairs[0], (1.0, 2.0));
        let config = ConstantConfig {
            max_between_pairs: 3,
            ..ConstantConfig::default()
        };
        assert_eq!(between_pairs(&consts, &config).len(), 3);
    }

    #[test]
    fn between_pairs_tolerates_nan_input() {
        // Public API: arbitrary floats may arrive. The sort used to panic
        // on NaN via `partial_cmp(..).unwrap()`; `total_cmp` sorts NaN to
        // one end, and the finite pairs are still produced.
        let consts = [2.0, f64::NAN, 1.0];
        let pairs = between_pairs(&consts, &ConstantConfig::default());
        assert!(pairs.contains(&(1.0, 2.0)));
    }

    #[test]
    fn text_constants_example_4() {
        // Paper Example 4: for RW-187 and TextEquals, the generated
        // constants are the whole value and its tokens (the "-" token is a
        // delimiter and never surfaces).
        let values = ["RW-187", "RW-159", "RS-762"];
        let consts = text_constants(&values, &ConstantConfig::default());
        assert!(consts.iter().any(|c| c == "RW-187"));
        assert!(consts.iter().any(|c| c == "RW"));
        assert!(consts.iter().any(|c| c == "187"));
        assert!(!consts.iter().any(|c| c == "-"));
    }

    #[test]
    fn text_prefixes_found() {
        let values = ["RW-187", "RW-159", "QX-1"];
        let consts = text_constants(&values, &ConstantConfig::default());
        // "rw-1" is the longest common prefix of the two RW ids.
        assert!(consts.iter().any(|c| c.eq_ignore_ascii_case("rw-1")));
    }

    #[test]
    fn text_dedup_case_insensitive() {
        let values = ["Pass", "PASS", "pass"];
        let consts = text_constants(&values, &ConstantConfig::default());
        assert_eq!(
            consts
                .iter()
                .filter(|c| c.eq_ignore_ascii_case("pass"))
                .count(),
            1
        );
    }

    #[test]
    fn text_cap_respected() {
        let values: Vec<String> = (0..500).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let config = ConstantConfig::default();
        let consts = text_constants(&refs, &config);
        assert!(consts.len() <= config.max_text_constants);
    }

    #[test]
    fn prefix_tokens_require_support() {
        let tokens = prefix_tokens(&["abcd", "abce", "xyz"], 2, 2);
        assert!(tokens.contains(&"abc".to_string()));
        assert!(!tokens.iter().any(|t| t.starts_with("xy")));
        // Raising support above what the data offers removes everything.
        assert!(prefix_tokens(&["abcd", "abce", "xyz"], 2, 3).is_empty());
    }

    #[test]
    fn date_part_constants_integral() {
        let dates = [
            Date::from_ymd(2020, 3, 5).unwrap(),
            Date::from_ymd(2021, 7, 15).unwrap(),
            Date::from_ymd(2022, 11, 25).unwrap(),
        ];
        let months = date_part_constants(&dates, DatePart::Month, &ConstantConfig::default());
        assert!(months.contains(&3));
        assert!(months.contains(&7));
        assert!(months.contains(&11));
        let years = date_part_constants(&dates, DatePart::Year, &ConstantConfig::default());
        assert!(years.contains(&2020) && years.contains(&2022));
    }

    #[test]
    fn empty_inputs() {
        assert!(numeric_constants(&[], &ConstantConfig::default())
            .iter()
            .all(|v| v.is_finite()));
        assert!(text_constants(&[], &ConstantConfig::default()).is_empty());
        assert!(prefix_tokens(&[], 2, 2).is_empty());
    }
}
