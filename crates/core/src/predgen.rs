//! Predicate generation (§3.1): instantiate every predicate template from
//! Table 1 with the constants of Table 2, keep those that hold for a
//! non-empty proper subset of the column, and deduplicate predicates with
//! identical evaluation signatures.

use crate::constants::{
    between_pairs, date_part_constants, numeric_constants, text_constants, ConstantConfig,
};
use crate::predicate::{CmpOp, DatePart, Predicate, TextOp};
use cornet_table::{BitVec, CellValue, DataType};

/// Configuration for predicate generation.
#[derive(Debug, Clone, Default)]
pub struct GenConfig {
    /// Constant-generation bounds.
    pub constants: ConstantConfig,
    /// Hard cap on the number of kept predicates (0 = unlimited). When the
    /// cap binds, earlier-generated predicates win, preserving the
    /// preference order documented in [`crate::constants`].
    pub max_predicates: usize,
}

/// A generated predicate set with per-predicate evaluation signatures.
///
/// All predicates passing the non-empty-proper-subset filter are kept — the
/// clustering distance of §3.2 counts *every* predicate, so families of
/// predicates sharing a signature (e.g. `year > 2021`, `year >= 2022`,
/// `year <> 2021` on a two-year column) legitimately amplify that signal.
/// For rule *enumeration*, however, signature-identical predicates are
/// interchangeable as decision-tree features, and removing a used root
/// would be pointless if its twin remained; [`PredicateSet::representatives`]
/// therefore indexes the first predicate of each distinct signature.
#[derive(Debug, Clone)]
pub struct PredicateSet {
    /// The predicates.
    pub predicates: Vec<Predicate>,
    /// `signatures[p].get(i)` — does predicate `p` hold on cell `i`?
    pub signatures: Vec<BitVec>,
    /// Number of cells the signatures cover.
    pub n_cells: usize,
    /// Indices of one representative predicate per distinct signature, in
    /// generation (preference) order.
    pub representatives: Vec<usize>,
}

impl PredicateSet {
    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when no predicate was generated.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Signatures of the representative predicates, for use as
    /// decision-tree features.
    pub fn representative_signatures(&self) -> Vec<BitVec> {
        self.representatives
            .iter()
            .map(|&i| self.signatures[i].clone())
            .collect()
    }
}

/// The inferred column type used for generation: majority vote over
/// non-empty cells (ties prefer text). Returns `None` for empty columns.
pub fn infer_type(cells: &[CellValue]) -> Option<DataType> {
    let mut counts = [0usize; 3];
    for c in cells {
        match c.data_type() {
            Some(DataType::Text) => counts[0] += 1,
            Some(DataType::Number) => counts[1] += 1,
            Some(DataType::Date) => counts[2] += 1,
            None => {}
        }
    }
    if counts.iter().all(|&c| c == 0) {
        return None;
    }
    let mut best = (counts[0], DataType::Text);
    for cand in [(counts[1], DataType::Number), (counts[2], DataType::Date)] {
        if cand.0 > best.0 {
            best = cand;
        }
    }
    Some(best.1)
}

/// Generates the predicate set for a column (§3.1). Predicates are produced
/// for the column's majority type only — "to avoid type errors, all
/// predicates are assigned a type and they only match cells of their type".
pub fn generate_predicates(cells: &[CellValue], config: &GenConfig) -> PredicateSet {
    let Some(dtype) = infer_type(cells) else {
        return PredicateSet {
            predicates: Vec::new(),
            signatures: Vec::new(),
            n_cells: cells.len(),
            representatives: Vec::new(),
        };
    };
    let candidates: Vec<Predicate> = match dtype {
        DataType::Number => numeric_candidates(cells, &config.constants),
        DataType::Text => text_candidates(cells, &config.constants),
        DataType::Date => date_candidates(cells, &config.constants),
    };
    filter_and_dedup(cells, candidates, config.max_predicates)
}

fn numeric_candidates(cells: &[CellValue], config: &ConstantConfig) -> Vec<Predicate> {
    let values: Vec<f64> = cells.iter().filter_map(CellValue::as_number).collect();
    let constants = numeric_constants(&values, config);
    let mut out = Vec::with_capacity(constants.len() * 5);
    for &n in &constants {
        for op in [
            CmpOp::Greater,
            CmpOp::GreaterEquals,
            CmpOp::Less,
            CmpOp::LessEquals,
        ] {
            out.push(Predicate::NumCmp { op, n });
        }
        // Numeric equality (Excel's "equal to" template), encoded as the
        // degenerate inclusive range.
        out.push(Predicate::NumBetween { lo: n, hi: n });
    }
    for (lo, hi) in between_pairs(&constants, config) {
        out.push(Predicate::NumBetween { lo, hi });
    }
    out
}

fn text_candidates(cells: &[CellValue], config: &ConstantConfig) -> Vec<Predicate> {
    let values: Vec<&str> = cells.iter().filter_map(CellValue::as_text).collect();
    let constants = text_constants(&values, config);
    let mut out = Vec::with_capacity(constants.len() * 4);
    // Equals first, then StartsWith/EndsWith, then Contains: when two
    // operators have the same signature on this column, the more specific
    // one is kept by dedup ("Cornet is generally more conservative and
    // yields more specific rules (Equals versus Contains)", Table 7).
    for op in [
        TextOp::Equals,
        TextOp::StartsWith,
        TextOp::EndsWith,
        TextOp::Contains,
    ] {
        for pattern in &constants {
            out.push(Predicate::Text {
                op,
                pattern: pattern.clone(),
            });
        }
    }
    out
}

fn date_candidates(cells: &[CellValue], config: &ConstantConfig) -> Vec<Predicate> {
    let dates: Vec<cornet_table::Date> = cells.iter().filter_map(CellValue::as_date).collect();
    let mut out = Vec::new();
    for part in DatePart::all() {
        let constants = date_part_constants(&dates, part, config);
        for &n in &constants {
            for op in [
                CmpOp::Greater,
                CmpOp::GreaterEquals,
                CmpOp::Less,
                CmpOp::LessEquals,
            ] {
                out.push(Predicate::DateCmp { op, part, n });
            }
        }
        let floats: Vec<f64> = constants.iter().map(|&v| v as f64).collect();
        for (lo, hi) in between_pairs(&floats, config) {
            out.push(Predicate::DateBetween {
                part,
                lo: lo as i64,
                hi: hi as i64,
            });
        }
    }
    out
}

/// Candidates whose signatures are evaluated per parallel batch: large
/// enough to amortise fan-out, small enough to bound wasted evaluations
/// when `max_predicates` binds mid-stream.
const EVAL_CHUNK: usize = 512;

/// Keeps predicates holding on a non-empty proper subset of the column and
/// records one representative per distinct signature (first generated wins —
/// see the preference-order note in [`crate::constants`]).
///
/// Signature evaluation — the `O(candidates × cells)` hot part — fans out
/// over `cornet-pool` one [`EVAL_CHUNK`] at a time; `par_map`'s
/// submission-order collection feeds the serial filter/dedup/cap pass in
/// generation order, so the output is identical to the historical serial
/// loop at every thread count.
fn filter_and_dedup(
    cells: &[CellValue],
    candidates: Vec<Predicate>,
    max_predicates: usize,
) -> PredicateSet {
    let n = cells.len();
    let mut predicates = Vec::new();
    let mut signatures: Vec<BitVec> = Vec::new();
    let mut representatives = Vec::new();
    let mut seen: std::collections::HashSet<BitVec> = std::collections::HashSet::new();
    let mut pending = candidates.into_iter();
    'chunks: loop {
        let chunk: Vec<Predicate> = pending.by_ref().take(EVAL_CHUNK).collect();
        if chunk.is_empty() {
            break;
        }
        let sigs: Vec<BitVec> = cornet_pool::par_map(chunk.len(), |p| {
            let mut sig = BitVec::zeros(n);
            for (i, cell) in cells.iter().enumerate() {
                if chunk[p].eval(cell) {
                    sig.set(i, true);
                }
            }
            sig
        });
        for (pred, sig) in chunk.into_iter().zip(sigs) {
            if max_predicates != 0 && predicates.len() >= max_predicates {
                break 'chunks;
            }
            let ones = sig.count_ones();
            if ones == 0 || ones == n {
                continue; // not a non-empty proper subset
            }
            if seen.insert(sig.clone()) {
                representatives.push(predicates.len());
            }
            predicates.push(pred);
            signatures.push(sig);
        }
    }
    PredicateSet {
        predicates,
        signatures,
        n_cells: n,
        representatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cells(raw: &[&str]) -> Vec<CellValue> {
        raw.iter().map(|s| CellValue::parse(s)).collect()
    }

    #[test]
    fn running_example_generates_needed_predicates() {
        let cells = parse_cells(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        assert!(!set.is_empty());
        // StartsWith("RW") must be present (as predicate or signature-equal
        // representative matching exactly cells {0,2,3,5}).
        let rw_sig = BitVec::from_indices(6, &[0, 2, 3, 5]);
        assert!(
            set.signatures.contains(&rw_sig),
            "no predicate matches the RW-prefix set"
        );
        // EndsWith("T") signature {3} must be available for the negation.
        let t_sig = BitVec::from_indices(6, &[3]);
        assert!(set.signatures.contains(&t_sig));
    }

    #[test]
    fn example_4_textequals_constants() {
        // TextEquals(c, "-") would hold for *all* cells → filtered as
        // improper subset; "RW-187" and tokens survive.
        let cells = parse_cells(&["RW-187", "RW-159", "RS-762"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        let displays: Vec<String> = set.predicates.iter().map(|p| p.to_string()).collect();
        assert!(displays.iter().any(|d| d == "TextEquals(\"RW-187\")"));
        assert!(!displays.iter().any(|d| d.contains("\"-\"")));
    }

    #[test]
    fn signatures_are_proper_subsets() {
        let cells = parse_cells(&["1", "5", "9", "12"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        for sig in &set.signatures {
            let ones = sig.count_ones();
            assert!(ones > 0 && ones < cells.len());
        }
    }

    #[test]
    fn representatives_deduplicate_signatures() {
        let cells = parse_cells(&["1", "2", "3"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        // Representative signatures are pairwise distinct…
        let mut rep_sigs = set.representative_signatures();
        let before = rep_sigs.len();
        rep_sigs.sort_by_key(|s| s.iter_ones().collect::<Vec<_>>());
        rep_sigs.dedup();
        assert_eq!(rep_sigs.len(), before);
        // …and cover every signature that occurs in the full set.
        for sig in &set.signatures {
            assert!(set
                .representatives
                .iter()
                .any(|&r| &set.signatures[r] == sig));
        }
        // The full set retains signature-equal families (e.g. `> 1` and
        // `>= 2` on an integer column), which the clustering distance needs.
        assert!(set.signatures.len() >= set.representatives.len());
    }

    #[test]
    fn numeric_column_generates_numeric_predicates_only() {
        let cells = parse_cells(&["1", "5", "9", "hello"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        assert!(set
            .predicates
            .iter()
            .all(|p| p.data_type() == DataType::Number));
    }

    #[test]
    fn date_column_generates_part_predicates() {
        let cells = parse_cells(&["2020-01-05", "2021-06-15", "2022-12-25"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        assert!(!set.is_empty());
        assert!(set
            .predicates
            .iter()
            .all(|p| p.data_type() == DataType::Date));
        // Some predicate must separate the 2020 date from the others.
        let first_only = BitVec::from_indices(3, &[0]);
        assert!(set.signatures.contains(&first_only));
    }

    #[test]
    fn empty_column_generates_nothing() {
        let cells = parse_cells(&["", "", ""]);
        let set = generate_predicates(&cells, &GenConfig::default());
        assert!(set.is_empty());
        assert_eq!(set.n_cells, 3);
    }

    #[test]
    fn cap_binds() {
        let cells = parse_cells(&["1", "2", "3", "4", "5", "6", "7", "8"]);
        let config = GenConfig {
            max_predicates: 5,
            ..GenConfig::default()
        };
        let set = generate_predicates(&cells, &config);
        assert!(set.len() <= 5);
    }

    #[test]
    fn uniform_column_yields_no_predicates() {
        // All-identical text: every predicate matches all or none.
        let cells = parse_cells(&["same", "same", "same"]);
        let set = generate_predicates(&cells, &GenConfig::default());
        assert!(set.is_empty());
    }

    #[test]
    fn infer_type_majority() {
        assert_eq!(
            infer_type(&parse_cells(&["1", "2", "x"])),
            Some(DataType::Number)
        );
        assert_eq!(infer_type(&parse_cells(&["", ""])), None);
    }
}
