//! Per-cell predicate signatures and the symmetric-difference cell distance
//! (§3.2: "The distance between two cells is the size of the symmetric
//! difference between the sets of predicates that hold for either cell").

use crate::predgen::PredicateSet;
use cornet_table::BitVec;

/// Transposed view of a [`PredicateSet`]: for each cell, the set of
/// predicates that hold on it, packed as a bit vector.
#[derive(Debug, Clone)]
pub struct CellSignatures {
    rows: Vec<BitVec>,
}

impl CellSignatures {
    /// Builds cell signatures from a predicate set.
    pub fn from_predicates(set: &PredicateSet) -> CellSignatures {
        let n_cells = set.n_cells;
        let n_preds = set.len();
        let mut rows = vec![BitVec::zeros(n_preds); n_cells];
        for (p, sig) in set.signatures.iter().enumerate() {
            for cell in sig.iter_ones() {
                rows[cell].set(p, true);
            }
        }
        CellSignatures { rows }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.rows.len()
    }

    /// The predicate set of cell `i`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Symmetric-difference distance between two cells.
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> usize {
        self.rows[i].hamming(&self.rows[j])
    }

    /// Combined min+max linkage distance from cell `i` to a cluster given as
    /// member indices (§3.2: "we combine the minimal and maximal distance to
    /// any element of the cluster", linear rather than quadratic like a
    /// medoid update). Returns `None` for an empty cluster.
    pub fn linkage(&self, i: usize, members: &[usize]) -> Option<usize> {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut any = false;
        for &m in members {
            if m == i {
                continue;
            }
            let d = self.distance(i, m);
            min = min.min(d);
            max = max.max(d);
            any = true;
        }
        any.then_some(min + max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predgen::{generate_predicates, GenConfig};
    use cornet_table::CellValue;

    fn sigs_for(raw: &[&str]) -> CellSignatures {
        let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
        let set = generate_predicates(&cells, &GenConfig::default());
        CellSignatures::from_predicates(&set)
    }

    #[test]
    fn similar_cells_are_closer() {
        let s = sigs_for(&["RW-187", "RW-159", "QX-933"]);
        assert!(s.distance(0, 1) < s.distance(0, 2));
        assert_eq!(s.distance(0, 0), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let s = sigs_for(&["1", "5", "9", "12"]);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(s.distance(i, j), s.distance(j, i));
            }
        }
    }

    #[test]
    fn linkage_combines_min_and_max() {
        let s = sigs_for(&["1", "2", "100"]);
        let d01 = s.distance(0, 1);
        let d02 = s.distance(0, 2);
        assert_eq!(s.linkage(0, &[1, 2]), Some(d01.min(d02) + d01.max(d02)));
        // Self is excluded; empty clusters yield None.
        assert_eq!(s.linkage(0, &[0]), None);
        assert_eq!(s.linkage(0, &[]), None);
    }

    #[test]
    fn transpose_is_consistent() {
        let raw = ["RW-1", "RW-2", "XX-3"];
        let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
        let set = generate_predicates(&cells, &GenConfig::default());
        let s = CellSignatures::from_predicates(&set);
        for (p, sig) in set.signatures.iter().enumerate() {
            for c in 0..cells.len() {
                assert_eq!(sig.get(c), s.row(c).get(p));
            }
        }
    }
}
