//! Prioritized rule sets with concrete style payloads.
//!
//! The demo paper and real spreadsheet templates (status-based row
//! colouring, numeric-threshold tiers) format a column with a *set* of
//! rules, each carrying the style it paints and a priority that resolves
//! overlaps — not the single boolean rule of the base pipeline. A
//! [`RuleSet`] is the output of [`crate::learner::Cornet::learn_ruleset`]:
//! one [`StyledRule`] per user-designated format class, disjoint by
//! construction (each class's examples are hard negatives for every other
//! class), with per-rule abstention semantics carried in
//! [`StyledRule::consistent`].
//!
//! # Conflict resolution
//!
//! When several rules' conditions hold on the same cell, the winner is
//! decided deterministically: **lowest `priority` number wins; among equal
//! priorities, the rule earliest in the set wins.** [`RuleSet::apply`] is
//! the single implementation of that order — scoring, serving and eval all
//! go through it, so a cell is never painted by two rules.

use crate::rule::Rule;
use cornet_table::{CellValue, Format, FormatTable, TargetScope};

/// One rule of a [`RuleSet`]: the learned condition plus the concrete
/// style it paints and where it paints it.
#[derive(Debug, Clone, PartialEq)]
pub struct StyledRule {
    /// The learned condition (DNF over typed predicates). `rule.format` is
    /// the interned id of `style` in the set's [`RuleSet::format_table`].
    pub rule: Rule,
    /// The style payload applied where this rule wins.
    pub style: Format,
    /// Whether the style paints the matching cell or its whole row.
    pub scope: TargetScope,
    /// Conflict-resolution rank: lower wins. [`Cornet::learn_ruleset`]
    /// assigns class order, so the first user class outranks the rest.
    ///
    /// [`Cornet::learn_ruleset`]: crate::learner::Cornet::learn_ruleset
    pub priority: u32,
    /// The ranker score of the winning candidate for this class.
    pub score: f64,
    /// True when the constrained search proved the rule satisfies the
    /// class spec exactly (covers every example of its class, excludes
    /// every other class's examples and every hard negative). False means
    /// the class abstained and this is the relaxed best-effort rule.
    pub consistent: bool,
}

/// A prioritized set of styled formatting rules over one column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleSet {
    /// The rules. Order is meaningful: it breaks priority ties.
    pub rules: Vec<StyledRule>,
}

impl RuleSet {
    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True when every rule in the set is consistent with its class spec.
    pub fn consistent(&self) -> bool {
        self.rules.iter().all(|r| r.consistent)
    }

    /// The deterministic evaluation order: rule indices sorted by
    /// `(priority, position)`, the order [`RuleSet::apply`] consults.
    pub fn evaluation_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by_key(|&i| (self.rules[i].priority, i));
        order
    }

    /// Applies the whole set to a column, resolving conflicts: for each
    /// cell, the index (into `self.rules`) of the winning rule, or `None`
    /// when no rule's condition holds. Lowest priority number wins; ties
    /// fall to the earlier rule in the set.
    pub fn apply(&self, cells: &[CellValue]) -> Vec<Option<usize>> {
        let order = self.evaluation_order();
        cells
            .iter()
            .map(|cell| {
                order
                    .iter()
                    .copied()
                    .find(|&i| self.rules[i].rule.eval(cell))
            })
            .collect()
    }

    /// The indices of cells claimed by *any* rule after conflict
    /// resolution — the multi-rule analogue of a single rule's match mask.
    pub fn matches(&self, cells: &[CellValue]) -> Vec<usize> {
        self.apply(cells)
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|_| i))
            .collect()
    }

    /// Builds the [`FormatTable`] for this set by interning each rule's
    /// style in rule order. [`Cornet::learn_ruleset`] interns through the
    /// same table while assigning each `rule.format`, so the ids agree:
    /// `table.get(set.rules[i].rule.format)` is `set.rules[i].style`
    /// (or the shared id when two classes picked the same style).
    ///
    /// [`Cornet::learn_ruleset`]: crate::learner::Cornet::learn_ruleset
    pub fn format_table(&self) -> FormatTable {
        let mut table = FormatTable::new();
        for rule in &self.rules {
            table.intern(rule.style.clone());
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Predicate, TextOp};

    fn text_rule(op: TextOp, s: &str) -> Rule {
        Rule::from_predicate(Predicate::Text {
            op,
            pattern: s.to_string(),
        })
    }

    fn styled(rule: Rule, fill: &str, priority: u32) -> StyledRule {
        StyledRule {
            rule,
            style: Format::fill(fill),
            scope: TargetScope::Cell,
            priority,
            score: 1.0,
            consistent: true,
        }
    }

    fn parse(raw: &[&str]) -> Vec<CellValue> {
        raw.iter().map(|s| CellValue::parse(s)).collect()
    }

    #[test]
    fn lowest_priority_number_wins() {
        // Both rules claim "ab"; priority 0 beats priority 1 regardless of
        // position in the set.
        let set = RuleSet {
            rules: vec![
                styled(text_rule(TextOp::StartsWith, "a"), "#111111", 1),
                styled(text_rule(TextOp::EndsWith, "b"), "#222222", 0),
            ],
        };
        let winners = set.apply(&parse(&["ab", "ax", "xb", "zz"]));
        assert_eq!(winners, vec![Some(1), Some(0), Some(1), None]);
        assert_eq!(set.evaluation_order(), vec![1, 0]);
    }

    #[test]
    fn equal_priority_falls_to_set_order() {
        let set = RuleSet {
            rules: vec![
                styled(text_rule(TextOp::StartsWith, "a"), "#111111", 0),
                styled(text_rule(TextOp::EndsWith, "b"), "#222222", 0),
            ],
        };
        let winners = set.apply(&parse(&["ab"]));
        assert_eq!(winners, vec![Some(0)], "earlier rule wins the tie");
    }

    #[test]
    fn matches_are_the_union_after_resolution() {
        let set = RuleSet {
            rules: vec![
                styled(text_rule(TextOp::StartsWith, "a"), "#111111", 0),
                styled(text_rule(TextOp::StartsWith, "b"), "#222222", 1),
            ],
        };
        assert_eq!(
            set.matches(&parse(&["ax", "bx", "cx", "ab"])),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn format_table_interning_is_stable_and_shared() {
        let set = RuleSet {
            rules: vec![
                styled(text_rule(TextOp::StartsWith, "a"), "#111111", 0),
                styled(text_rule(TextOp::StartsWith, "b"), "#222222", 1),
                // Third class reuses the first style: same id, no new entry.
                styled(text_rule(TextOp::StartsWith, "c"), "#111111", 2),
            ],
        };
        let mut table = set.format_table();
        assert_eq!(table.len(), 3); // default + two distinct fills
        assert_eq!(
            table.intern(Format::fill("#111111")),
            table.intern(Format::fill("#111111"))
        );
        let id = table.intern(Format::fill("#222222"));
        assert_eq!(table.get(id).unwrap(), &set.rules[1].style);
    }

    #[test]
    fn empty_set_claims_nothing() {
        let set = RuleSet::default();
        assert!(set.is_empty());
        assert!(set.consistent(), "vacuously consistent");
        assert_eq!(set.apply(&parse(&["a", "b"])), vec![None, None]);
        assert_eq!(set.matches(&parse(&["a"])), Vec::<usize>::new());
    }
}
