//! Semi-supervised clustering (§3.2).
//!
//! Rather than combining predicates into rules directly, Cornet first
//! hypothesises the expected output of the rule on every unlabeled cell.
//! Three clusters are maintained — formatted (seeded with the user
//! examples), unformatted (seeded with *soft negative* cells, i.e.
//! unformatted cells lying between two formatted examples), and unassigned.
//! Unassigned cells are iteratively pulled into the closer of the two
//! labeled clusters using a combined min+max linkage over the
//! symmetric-difference distance, until assignments stabilise.
//!
//! The three ablations of Table 5 are configurable as [`ClusterMode`]s.

use crate::signature::CellSignatures;
use cornet_table::BitVec;

/// Which clustering variant to run (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMode {
    /// The full algorithm: positives, soft negatives, iterative assignment.
    Full,
    /// Ablation: no clustering at all — user examples positive, everything
    /// else negative.
    NoClustering,
    /// Ablation: no negative cluster — cells may only join the positive
    /// cluster; whatever remains unassigned becomes negative at the end.
    NoNegatives,
    /// Ablation: clustering as in `Full`, but the learner weighs labeled and
    /// unlabeled cells equally (§5.2.1 "hard negatives").
    HardNegatives,
}

/// Clustering configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Variant to run.
    pub mode: ClusterMode,
    /// Maximum reassignment sweeps.
    pub max_iters: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            mode: ClusterMode::Full,
            max_iters: 10,
        }
    }
}

/// The hypothesised labels produced by clustering.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Hypothesised formatting label `f̂ᵢ` per cell (true = formatted).
    pub labels: BitVec,
    /// Mask of the user-provided examples (hard constraints).
    pub observed: BitVec,
    /// Mask of soft negative cells.
    pub soft_negatives: BitVec,
    /// Mask of the user's *hard* negative corrections (§5.2.1): cells the
    /// user explicitly unformatted. They seed the negative cluster, stay
    /// fixed there, are never labeled positive, and downstream search must
    /// not emit a rule that covers one. All-zero on unconstrained learns.
    pub hard_negatives: BitVec,
    /// Weight the rule learner should give observed cells relative to
    /// unlabeled ones (2.0 normally, 1.0 under `HardNegatives`).
    pub observed_weight: f64,
    /// Number of reassignment sweeps performed.
    pub iterations: usize,
}

/// Soft negatives: cells `cᵢ ∉ C_obs` such that observed examples exist both
/// above and below (`∃ j < i < k` with `cⱼ, cₖ ∈ C_obs`) — "tables are
/// typically annotated by users from top to bottom".
pub fn soft_negatives(n_cells: usize, observed: &[usize]) -> BitVec {
    let mut out = BitVec::zeros(n_cells);
    let (Some(&first), Some(&last)) = (observed.iter().min(), observed.iter().max()) else {
        return out;
    };
    let obs_mask = BitVec::from_indices(n_cells, observed);
    for i in first + 1..last {
        if !obs_mask.get(i) {
            out.set(i, true);
        }
    }
    out
}

/// Runs semi-supervised clustering and returns hypothesised labels.
///
/// Compatibility wrapper over [`cluster_constrained`] with no hard
/// negatives; output is bit-identical to the historical implementation.
pub fn cluster(
    signatures: &CellSignatures,
    observed: &[usize],
    config: &ClusterConfig,
) -> ClusterOutcome {
    cluster_constrained(signatures, observed, &[], config)
}

/// Semi-supervised clustering with the user's hard negative corrections
/// threaded in as first-class constraints (§5.2.1).
///
/// Hard negatives seed the negative cluster alongside the soft negatives
/// and stay fixed there for every sweep, so nearby unlabeled cells are
/// pulled toward the negative side by real user evidence instead of the
/// positional soft-negative heuristic alone. The final labels never mark a
/// hard negative positive, regardless of mode. With `negatives` empty this
/// is exactly the historical [`cluster`] (same sweeps, same labels, bit
/// for bit).
pub fn cluster_constrained(
    signatures: &CellSignatures,
    observed: &[usize],
    negatives: &[usize],
    config: &ClusterConfig,
) -> ClusterOutcome {
    let n = signatures.n_cells();
    let observed_mask = BitVec::from_indices(n, observed);
    let mut soft_neg = soft_negatives(n, observed);
    let hard_neg = BitVec::from_indices(n, negatives);
    // A cell the user explicitly unformatted is a hard negative, not a
    // soft one — keep the masks disjoint so weighting stays well-defined.
    for i in hard_neg.iter_ones() {
        soft_neg.set(i, false);
    }
    let observed_weight = if config.mode == ClusterMode::HardNegatives {
        1.0
    } else {
        2.0
    };

    if config.mode == ClusterMode::NoClustering {
        let mut labels = observed_mask.clone();
        for i in hard_neg.iter_ones() {
            labels.set(i, false);
        }
        return ClusterOutcome {
            labels,
            observed: observed_mask,
            soft_negatives: soft_neg,
            hard_negatives: hard_neg,
            observed_weight,
            iterations: 0,
        };
    }

    // Cluster membership: 0 = positive, 1 = negative, 2 = unassigned.
    const POS: u8 = 0;
    const NEG: u8 = 1;
    const UNK: u8 = 2;
    let mut assign: Vec<u8> = vec![UNK; n];
    for &i in observed {
        assign[i] = POS;
    }
    let use_negative_cluster = config.mode != ClusterMode::NoNegatives;
    if use_negative_cluster {
        for i in soft_neg.iter_ones() {
            assign[i] = NEG;
        }
    }
    // Hard negatives are negative-cluster seeds in every mode (they are
    // user-labeled, so even the NoNegatives ablation must not let them
    // drift into the positive cluster).
    for i in hard_neg.iter_ones() {
        assign[i] = NEG;
    }
    let fixed: Vec<bool> = (0..n)
        .map(|i| {
            observed_mask.get(i) || hard_neg.get(i) || (use_negative_cluster && soft_neg.get(i))
        })
        .collect();

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        let pos_members: Vec<usize> = (0..n).filter(|&i| assign[i] == POS).collect();
        let neg_members: Vec<usize> = (0..n).filter(|&i| assign[i] == NEG).collect();
        let unk_members: Vec<usize> = (0..n).filter(|&i| assign[i] == UNK).collect();
        let mut changed = false;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            // NoNegatives: once a cell joins the positive cluster it stays —
            // the only alternative cluster is the shrinking unassigned pool.
            if config.mode == ClusterMode::NoNegatives && assign[i] == POS {
                continue;
            }
            let d_pos = signatures.linkage(i, &pos_members);
            let new_assign = if use_negative_cluster {
                let d_neg = if neg_members.is_empty() {
                    // No negative seeds (e.g. a single example): compare
                    // against the unassigned pool instead, like NoNegatives.
                    signatures.linkage(i, &unk_members)
                } else {
                    signatures.linkage(i, &neg_members)
                };
                match (d_pos, d_neg) {
                    (Some(dp), Some(dn)) if dp < dn => POS,
                    (Some(_), Some(_)) => {
                        if neg_members.is_empty() {
                            UNK
                        } else {
                            NEG
                        }
                    }
                    (Some(_), None) => POS,
                    _ => assign[i],
                }
            } else {
                // NoNegatives: join positive when strictly closer to the
                // positive cluster than to the remaining unassigned pool.
                let d_unk = signatures.linkage(i, &unk_members);
                match (d_pos, d_unk) {
                    (Some(dp), Some(du)) if dp < du => POS,
                    (Some(_), None) => POS,
                    _ => assign[i],
                }
            };
            if new_assign != assign[i] {
                assign[i] = new_assign;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Unassigned collapses into the negative cluster ("cluster_u added to
    // cluster_0").
    let mut labels = BitVec::zeros(n);
    for (i, &a) in assign.iter().enumerate() {
        if a == POS {
            labels.set(i, true);
        }
    }
    // Hard constraints: observed examples are always positive, explicit
    // negatives never are. (The learner rejects overlapping indices, so
    // the order here is only a belt-and-braces tiebreak.)
    labels.or_assign(&observed_mask);
    for i in hard_neg.iter_ones() {
        labels.set(i, false);
    }

    ClusterOutcome {
        labels,
        observed: observed_mask,
        soft_negatives: soft_neg,
        hard_negatives: hard_neg,
        observed_weight,
        iterations,
    }
}

/// The result of partitioning a column into k format classes.
#[derive(Debug, Clone)]
pub struct MultiClusterOutcome {
    /// Winning class per cell after deterministic conflict resolution:
    /// among classes whose one-vs-rest labels claim the cell, the lowest
    /// class index wins; `None` when no class claims it.
    pub assignments: Vec<Option<usize>>,
    /// The one-vs-rest [`ClusterOutcome`] per class, in class order.
    pub classes: Vec<ClusterOutcome>,
}

/// Partitions a column into `classes.len()` format classes plus an
/// unformatted remainder — the k>2 generalisation of
/// [`cluster_constrained`]'s binary formatted/unformatted split.
///
/// Each class runs the binary constrained clustering *one-vs-rest*: its
/// own examples seed the positive cluster, and the union of every other
/// class's examples with the global hard negatives seeds the negative
/// cluster. The per-class sweeps are therefore exactly
/// [`cluster_constrained`] sweeps — with a single class and no negatives
/// this is bit-identical to [`cluster`] — and overlapping claims are
/// resolved deterministically (lowest class index wins), mirroring
/// [`crate::ruleset::RuleSet::apply`]'s priority order.
pub fn cluster_multi(
    signatures: &CellSignatures,
    classes: &[Vec<usize>],
    negatives: &[usize],
    config: &ClusterConfig,
) -> MultiClusterOutcome {
    let outcomes: Vec<ClusterOutcome> = classes
        .iter()
        .enumerate()
        .map(|(c, positives)| {
            let mut rest: Vec<usize> = negatives.to_vec();
            for (other, examples) in classes.iter().enumerate() {
                if other != c {
                    rest.extend_from_slice(examples);
                }
            }
            rest.sort_unstable();
            rest.dedup();
            cluster_constrained(signatures, positives, &rest, config)
        })
        .collect();
    let assignments = (0..signatures.n_cells())
        .map(|i| outcomes.iter().position(|o| o.labels.get(i)))
        .collect();
    MultiClusterOutcome {
        assignments,
        classes: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predgen::{generate_predicates, GenConfig};
    use crate::signature::CellSignatures;
    use cornet_table::CellValue;

    fn signatures_for(raw: &[&str]) -> CellSignatures {
        let cells: Vec<CellValue> = raw.iter().map(|s| CellValue::parse(s)).collect();
        let set = generate_predicates(&cells, &GenConfig::default());
        CellSignatures::from_predicates(&set)
    }

    #[test]
    fn soft_negative_extraction() {
        // Observed formatted at 0 and 4: cells 1..3 between them are soft
        // negatives; 5 is after the last example and stays unlabeled.
        let sn = soft_negatives(6, &[0, 4]);
        assert_eq!(sn.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(soft_negatives(6, &[2]).none());
        assert!(soft_negatives(6, &[]).none());
    }

    #[test]
    fn running_example_clusters_correctly() {
        // Figure 2: the user formats the three RW ids; the unformatted
        // cells in between (RS-762, RW-131-T, TW-224) are soft negatives and
        // stay fixed in the negative cluster ("these cells are never
        // assigned to another cluster", §3.2).
        let sigs = signatures_for(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        let outcome = cluster(&sigs, &[0, 2, 5], &ClusterConfig::default());
        assert_eq!(
            outcome.labels.iter_ones().collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
        assert_eq!(
            outcome.soft_negatives.iter_ones().collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert_eq!(outcome.observed_weight, 2.0);
    }

    #[test]
    fn two_adjacent_examples_generalise_without_negative_evidence() {
        // With examples {0, 2} there is no evidence against RW-131-T, so it
        // legitimately joins the positives (prefix-similar to the examples).
        let sigs = signatures_for(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        let outcome = cluster(&sigs, &[0, 2], &ClusterConfig::default());
        assert!(outcome.labels.get(0) && outcome.labels.get(2));
        assert!(!outcome.labels.get(1), "soft negative RS-762 stays out");
        assert!(!outcome.labels.get(4), "TW-224 stays out");
    }

    #[test]
    fn no_clustering_mode_labels_only_observed() {
        let sigs = signatures_for(&["RW-1", "RW-2", "RW-3", "XX-4"]);
        let outcome = cluster(
            &sigs,
            &[0],
            &ClusterConfig {
                mode: ClusterMode::NoClustering,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(outcome.labels.iter_ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn no_negatives_mode_still_finds_positives() {
        let sigs = signatures_for(&["RW-1", "RW-2", "XX-9", "RW-3"]);
        let outcome = cluster(
            &sigs,
            &[0, 1],
            &ClusterConfig {
                mode: ClusterMode::NoNegatives,
                ..ClusterConfig::default()
            },
        );
        assert!(outcome.labels.get(3), "RW-3 should join");
        assert!(outcome.labels.get(0) && outcome.labels.get(1));
    }

    #[test]
    fn hard_negatives_sets_weight_one() {
        let sigs = signatures_for(&["RW-1", "XX-2", "RW-3"]);
        let outcome = cluster(
            &sigs,
            &[0, 2],
            &ClusterConfig {
                mode: ClusterMode::HardNegatives,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(outcome.observed_weight, 1.0);
        assert!(outcome.labels.get(0) && outcome.labels.get(2));
    }

    #[test]
    fn observed_cells_never_flip() {
        // Even when an observed cell looks like the negatives, the hard
        // constraint keeps it positive.
        let sigs = signatures_for(&["XX-1", "XX-2", "XX-3", "RW-9"]);
        let outcome = cluster(&sigs, &[0], &ClusterConfig::default());
        assert!(outcome.labels.get(0));
    }

    #[test]
    fn single_example_without_negatives_terminates() {
        let sigs = signatures_for(&["RW-1", "RW-2", "RW-3", "XX-4", "XX-5"]);
        let outcome = cluster(&sigs, &[0], &ClusterConfig::default());
        assert!(outcome.iterations <= 10);
        assert!(outcome.labels.get(0));
    }

    #[test]
    fn hard_negatives_seed_and_stay_negative() {
        // With examples {0, 2} alone, RW-131-T joins the positives (no
        // counter-evidence — see the test above). An explicit hard
        // negative on it pins it out and gives the negative cluster a
        // prefix-similar seed.
        let sigs = signatures_for(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        let unconstrained = cluster(&sigs, &[0, 2], &ClusterConfig::default());
        assert!(
            unconstrained.labels.get(3),
            "fixture requires RW-131-T to join without a correction"
        );
        let outcome = cluster_constrained(&sigs, &[0, 2], &[3], &ClusterConfig::default());
        assert!(!outcome.labels.get(3), "hard negative must stay out");
        assert!(outcome.labels.get(0) && outcome.labels.get(2));
        assert_eq!(
            outcome.hard_negatives.iter_ones().collect::<Vec<_>>(),
            vec![3]
        );
        // The hard negative is carved out of the soft-negative mask.
        assert!(!outcome.soft_negatives.get(3));
    }

    #[test]
    fn empty_negatives_is_bit_identical_to_cluster() {
        let sigs = signatures_for(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        for observed in [vec![0], vec![0, 2], vec![0, 2, 5]] {
            for mode in [
                ClusterMode::Full,
                ClusterMode::NoClustering,
                ClusterMode::NoNegatives,
                ClusterMode::HardNegatives,
            ] {
                let config = ClusterConfig {
                    mode,
                    ..ClusterConfig::default()
                };
                let a = cluster(&sigs, &observed, &config);
                let b = cluster_constrained(&sigs, &observed, &[], &config);
                assert_eq!(a.labels, b.labels);
                assert_eq!(a.soft_negatives, b.soft_negatives);
                assert_eq!(a.iterations, b.iterations);
                assert!(b.hard_negatives.none());
            }
        }
    }

    #[test]
    fn hard_negatives_hold_in_every_mode() {
        let sigs = signatures_for(&["RW-1", "RW-2", "RW-3", "XX-4", "RW-5"]);
        for mode in [
            ClusterMode::Full,
            ClusterMode::NoClustering,
            ClusterMode::NoNegatives,
            ClusterMode::HardNegatives,
        ] {
            let config = ClusterConfig {
                mode,
                ..ClusterConfig::default()
            };
            let outcome = cluster_constrained(&sigs, &[0], &[2], &config);
            assert!(
                !outcome.labels.get(2),
                "{mode:?}: hard negative labeled positive"
            );
            assert!(outcome.labels.get(0));
        }
    }

    #[test]
    fn multi_class_partition_is_disjoint_and_deterministic() {
        // A 3-class status column: each class's examples pull the other
        // occurrences of its word, and no cell lands in two classes.
        let raw = [
            "completed",
            "pending",
            "failed",
            "completed",
            "pending",
            "failed",
            "completed",
        ];
        let sigs = signatures_for(&raw);
        let classes = vec![vec![0], vec![1], vec![2]];
        let outcome = cluster_multi(&sigs, &classes, &[], &ClusterConfig::default());
        assert_eq!(outcome.classes.len(), 3);
        let expected: Vec<Option<usize>> = raw
            .iter()
            .map(|s| match *s {
                "completed" => Some(0),
                "pending" => Some(1),
                _ => Some(2),
            })
            .collect();
        assert_eq!(outcome.assignments, expected);
        // One-vs-rest: class 0's negative seeds include the other classes.
        assert!(outcome.classes[0].hard_negatives.get(1));
        assert!(outcome.classes[0].hard_negatives.get(2));
    }

    #[test]
    fn single_class_multi_is_bit_identical_to_binary() {
        let sigs = signatures_for(&["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]);
        let config = ClusterConfig::default();
        let binary = cluster(&sigs, &[0, 2, 5], &config);
        let multi = cluster_multi(&sigs, &[vec![0, 2, 5]], &[], &config);
        assert_eq!(multi.classes[0].labels, binary.labels);
        assert_eq!(multi.classes[0].soft_negatives, binary.soft_negatives);
        assert_eq!(multi.classes[0].iterations, binary.iterations);
        for (i, assigned) in multi.assignments.iter().enumerate() {
            assert_eq!(assigned.is_some(), binary.labels.get(i));
        }
    }

    #[test]
    fn assignments_pick_the_lowest_claiming_class() {
        // The documented resolution rule, checked against the per-class
        // labels: every assignment is the first class whose one-vs-rest
        // labels claim the cell.
        let sigs = signatures_for(&["RW-1", "XX-2", "RW-3", "XX-4", "ZZ-5", "RW-6"]);
        let classes = vec![vec![0], vec![1], vec![4]];
        let outcome = cluster_multi(&sigs, &classes, &[], &ClusterConfig::default());
        for i in 0..6 {
            let first = (0..classes.len()).find(|&c| outcome.classes[c].labels.get(i));
            assert_eq!(outcome.assignments[i], first, "cell {i}");
        }
        // Each class's own examples always resolve to that class: every
        // other class holds them as hard negatives, so no lower class can
        // claim them first.
        for (c, examples) in classes.iter().enumerate() {
            for &i in examples {
                assert_eq!(outcome.assignments[i], Some(c));
            }
        }
    }

    #[test]
    fn empty_predicate_space_is_safe() {
        // Uniform column → no predicates → all distances zero; everything
        // must still terminate with observed as positives.
        let sigs = signatures_for(&["same", "same", "same"]);
        let outcome = cluster(&sigs, &[1], &ClusterConfig::default());
        assert!(outcome.labels.get(1));
    }
}
