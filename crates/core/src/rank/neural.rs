//! The neural ranker (§3.4, Figure 5) and its neural-only ablation.
//!
//! Architecture (hybrid mode — the paper's Cornet ranker):
//!
//! ```text
//! cells ──HashEmbedder──► X (n×d)            exec bits ──lookup──► E (n×d)
//!                  └──────── cross-attention(X, E) ────────┘
//!                                │ (+ residual X)
//!                            mean-pool → column linear → u (d)
//! [u ‖ handpicked features] ──► head linear ──► sigmoid score
//! ```
//!
//! The neural-only ablation (Table 6 "Neural") replaces the handpicked
//! features with a hashed embedding of the rule's token stream — the
//! CodeBERT substitute of DESIGN.md.

use super::{RankContext, RankSample, Ranker};
use crate::features::{rule_tokens, FEATURE_DIM};
use cornet_nn::ops::{bce_with_logit, mean_pool_rows, mean_pool_rows_backward, sigmoid};
use cornet_nn::{Adam, CrossAttention, HashEmbedder, Linear, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which feature source joins the column embedding at the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeuralMode {
    /// Handpicked features ⊕ column embedding (the paper's Cornet ranker).
    Hybrid,
    /// Rule-token embedding ⊕ column embedding (the "Neural" ablation).
    NeuralOnly,
}

/// The trainable neural ranker.
#[derive(Debug, Clone)]
pub struct NeuralRanker {
    mode: NeuralMode,
    embedder: HashEmbedder,
    /// Execution-bit embedding table (2 × d): row 0 = unformatted, row 1 =
    /// formatted.
    exec_embed: Matrix,
    exec_grad: Matrix,
    attn: CrossAttention,
    col_linear: Linear,
    head: Linear,
    /// Maximum cells fed to attention; longer columns are subsampled evenly.
    max_cells: usize,
}

impl NeuralRanker {
    /// Embedding width. Small by design: the substitute embedder carries
    /// syntactic signal only, and the full model stays ≲10k parameters.
    pub const DIM: usize = 32;

    /// Default cap on cells fed to attention.
    pub const DEFAULT_MAX_CELLS: usize = 48;

    /// Creates an untrained ranker with the default attention cell cap.
    pub fn new(mode: NeuralMode, seed: u64, rng: &mut impl Rng) -> NeuralRanker {
        Self::with_max_cells(mode, seed, Self::DEFAULT_MAX_CELLS, rng)
    }

    /// Creates an untrained ranker with an explicit cap on the cells fed to
    /// attention (longer columns are subsampled evenly). `max_cells` is
    /// clamped to at least 1.
    pub fn with_max_cells(
        mode: NeuralMode,
        seed: u64,
        max_cells: usize,
        rng: &mut impl Rng,
    ) -> NeuralRanker {
        let d = Self::DIM;
        let aux_dim = match mode {
            NeuralMode::Hybrid => FEATURE_DIM,
            NeuralMode::NeuralOnly => d,
        };
        NeuralRanker {
            mode,
            embedder: HashEmbedder::new(d, 4096, seed),
            exec_embed: Matrix::xavier(2, d, rng),
            exec_grad: Matrix::zeros(2, d),
            attn: CrossAttention::new(d, rng),
            col_linear: Linear::new(d, d, rng),
            head: Linear::new(d + aux_dim, 1, rng),
            max_cells: max_cells.max(1),
        }
    }

    /// The ranker's mode.
    pub fn mode(&self) -> NeuralMode {
        self.mode
    }

    /// The attention cell cap.
    pub fn max_cells(&self) -> usize {
        self.max_cells
    }

    /// Evenly subsamples cell indices when the column exceeds `max_cells`.
    fn sample_indices(&self, n: usize) -> Vec<usize> {
        if n <= self.max_cells {
            (0..n).collect()
        } else if self.max_cells == 1 {
            // The even-spacing formula below divides by `max_cells - 1`;
            // a one-cell budget keeps the first cell.
            vec![0]
        } else {
            (0..self.max_cells)
                .map(|i| i * (n - 1) / (self.max_cells - 1))
                .collect()
        }
    }

    /// Builds the auxiliary feature vector per mode.
    fn aux_features(&self, features: &[f64], tokens: &[String]) -> Vec<f64> {
        match self.mode {
            NeuralMode::Hybrid => features.to_vec(),
            NeuralMode::NeuralOnly => self.embedder.embed_tokens(tokens),
        }
    }

    /// Embeds a column's (subsampled) cells — the candidate-independent
    /// part of the forward pass, computed once per learn call and shared
    /// by every candidate scored against the column.
    fn embed_column(&self, cell_texts: &[String]) -> ColumnEmbed {
        let idx = self.sample_indices(cell_texts.len());
        let texts: Vec<&String> = idx.iter().map(|&i| &cell_texts[i]).collect();
        let x = self.embedder.embed_batch(&texts);
        ColumnEmbed { idx, x }
    }

    /// The candidate-dependent part of the forward pass up to the pooled
    /// column vector: execution-bit embeddings, cross-attention against the
    /// shared column embedding, residual, mean-pool.
    fn pool_candidate(&self, col: &ColumnEmbed, execution: &[bool]) -> PooledCandidate {
        let n = col.x.rows();
        let mut e = Matrix::zeros(n, Self::DIM);
        let mut exec_rows = Vec::with_capacity(n);
        for (r, &i) in col.idx.iter().enumerate() {
            let bit = usize::from(execution[i]);
            exec_rows.push(bit);
            e.row_mut(r).copy_from_slice(self.exec_embed.row(bit));
        }
        let (attn_out, attn_cache) = self.attn.forward(&col.x, &e);
        // Residual connection keeps the raw cell signal available.
        let mut z = attn_out;
        z.add_assign(&col.x);
        let pooled = mean_pool_rows(&z);
        PooledCandidate {
            pooled,
            attn_cache,
            exec_rows,
            n_rows: n,
        }
    }

    /// Forward pass; returns the logit plus the caches backward needs.
    fn forward(
        &self,
        cell_texts: &[String],
        execution: &[bool],
        aux: &[f64],
    ) -> (f64, ForwardCache) {
        let col = self.embed_column(cell_texts);
        let pc = self.pool_candidate(&col, execution);
        let pooled_m = Matrix::from_row(&pc.pooled);
        let u = self.col_linear.forward(&pooled_m);
        let mut head_in = Matrix::zeros(1, Self::DIM + aux.len());
        head_in.row_mut(0)[..Self::DIM].copy_from_slice(u.row(0));
        head_in.row_mut(0)[Self::DIM..].copy_from_slice(aux);
        let logit = self.head.forward(&head_in).get(0, 0);
        (
            logit,
            ForwardCache {
                attn_cache: pc.attn_cache,
                pooled_m,
                head_in,
                exec_rows: pc.exec_rows,
                n_rows: pc.n_rows,
            },
        )
    }

    /// Scores a group of candidates that share one column. The column is
    /// embedded once and every candidate's execution-bit embedding block is
    /// stacked into a **single** cross-attention call
    /// ([`CrossAttention::forward_stacked`]): Q is computed once and shared,
    /// K/V for the whole pool come from one matmul each, and the residual +
    /// mean-pool runs per output block in [`mean_pool_rows`]'s accumulation
    /// order. `col_linear` and `head` then run as single batched matrix
    /// multiplies. Per-row results are bit-identical to the serial
    /// [`Ranker::score`] path (pinned by `rank_batched_differential`).
    fn score_group(&self, cell_texts: &[String], group: &[RankContext<'_>]) -> Vec<f64> {
        let col = self.embed_column(cell_texts);
        let n = col.x.rows();
        let n_cand = group.len();
        let mut e_stacked = Matrix::zeros(n_cand * n, Self::DIM);
        for (c, ctx) in group.iter().enumerate() {
            for (r, &i) in col.idx.iter().enumerate() {
                let bit = usize::from(ctx.execution.get(i));
                e_stacked
                    .row_mut(c * n + r)
                    .copy_from_slice(self.exec_embed.row(bit));
            }
        }
        let attn_out = self.attn.forward_stacked(&col.x, &e_stacked, n_cand);
        // Residual + mean-pool per candidate block: each element adds its
        // residual first (`add_assign` order), then the block accumulates
        // row-ascending and scales once by 1/n (`mean_pool_rows` order).
        let mut pooled_m = Matrix::zeros(n_cand, Self::DIM);
        let inv = 1.0 / n as f64;
        for c in 0..n_cand {
            for r in 0..n {
                for j in 0..Self::DIM {
                    let zval = attn_out.get(c * n + r, j) + col.x.get(r, j);
                    pooled_m.set(c, j, pooled_m.get(c, j) + zval);
                }
            }
            for p in pooled_m.row_mut(c) {
                *p *= inv;
            }
        }
        let u = self.col_linear.forward(&pooled_m);
        let aux_dim = self.head.in_dim() - Self::DIM;
        let mut head_in = Matrix::zeros(n_cand, Self::DIM + aux_dim);
        for (r, ctx) in group.iter().enumerate() {
            let tokens = match self.mode {
                NeuralMode::Hybrid => Vec::new(),
                NeuralMode::NeuralOnly => rule_tokens(ctx.rule),
            };
            let aux = self.aux_features(&ctx.features, &tokens);
            head_in.row_mut(r)[..Self::DIM].copy_from_slice(u.row(r));
            head_in.row_mut(r)[Self::DIM..].copy_from_slice(&aux);
        }
        let logits = self.head.forward(&head_in);
        (0..n_cand).map(|r| sigmoid(logits.get(r, 0))).collect()
    }

    /// Backward pass for one sample given `dlogit`.
    fn backward(&mut self, cache: &ForwardCache, dlogit: f64) {
        let dhead = Matrix::from_vec(1, 1, vec![dlogit]);
        let dhead_in = self.head.backward(&cache.head_in, &dhead);
        let du = Matrix::from_row(&dhead_in.row(0)[..Self::DIM]);
        // aux gradient is dropped: handpicked features are inputs, and the
        // rule-token embedding is frozen.
        let dpooled = self.col_linear.backward(&cache.pooled_m, &du);
        let dz = mean_pool_rows_backward(dpooled.row(0), cache.n_rows);
        // Residual: dz flows to both attention output and X; X is frozen.
        let (_dx, de) = self.attn.backward(&cache.attn_cache, &dz);
        for (r, &bit) in cache.exec_rows.iter().enumerate() {
            for (g, v) in self.exec_grad.row_mut(bit).iter_mut().zip(de.row(r)) {
                *g += v;
            }
        }
    }

    fn zero_grad(&mut self) {
        self.exec_grad.fill_zero();
        self.attn.zero_grad();
        self.col_linear.zero_grad();
        self.head.zero_grad();
    }

    /// Trains on generated ranking samples with Adam. Returns the mean loss
    /// of the final epoch.
    pub fn train(
        &mut self,
        samples: &[RankSample],
        epochs: usize,
        lr: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut adam = Adam::new(lr);
        let s_exec = adam.register(2 * Self::DIM);
        let s_wq = adam.register(Self::DIM * Self::DIM);
        let s_wk = adam.register(Self::DIM * Self::DIM);
        let s_wv = adam.register(Self::DIM * Self::DIM);
        let s_cw = adam.register(Self::DIM * Self::DIM);
        let s_cb = adam.register(Self::DIM);
        let head_w_len = self.head.w.rows() * self.head.w.cols();
        let s_hw = adam.register(head_w_len);
        let s_hb = adam.register(1);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_loss = 0.0;
        const BATCH: usize = 16;
        for _ in 0..epochs {
            order.shuffle(rng);
            last_loss = 0.0;
            let mut contributing_epoch = 0usize;
            for batch in order.chunks(BATCH) {
                self.zero_grad();
                // Two passes: samples with empty columns are skipped, so the
                // minibatch gradient must be normalised by the number of
                // samples that actually contributed, which is only known
                // after the forward pass.
                let mut pending: Vec<(ForwardCache, f64)> = Vec::with_capacity(batch.len());
                for &i in batch {
                    let sample = &samples[i];
                    if sample.cell_texts.is_empty() {
                        continue;
                    }
                    let aux = self.aux_features(&sample.features, &sample.rule_tokens);
                    let (logit, cache) = self.forward(&sample.cell_texts, &sample.execution, &aux);
                    let (loss, dlogit) = bce_with_logit(logit, f64::from(sample.label));
                    last_loss += loss;
                    pending.push((cache, dlogit));
                }
                if pending.is_empty() {
                    continue;
                }
                let contributing = pending.len() as f64;
                contributing_epoch += pending.len();
                for (cache, dlogit) in &pending {
                    self.backward(cache, dlogit / contributing);
                }
                adam.tick();
                adam.step(s_exec, self.exec_embed.data_mut(), self.exec_grad.data());
                adam.step(s_wq, self.attn.wq.data_mut(), self.attn.gwq.data());
                adam.step(s_wk, self.attn.wk.data_mut(), self.attn.gwk.data());
                adam.step(s_wv, self.attn.wv.data_mut(), self.attn.gwv.data());
                adam.step(
                    s_cw,
                    self.col_linear.w.data_mut(),
                    self.col_linear.gw.data(),
                );
                let gb = self.col_linear.gb.clone();
                adam.step(s_cb, &mut self.col_linear.b, &gb);
                adam.step(s_hw, self.head.w.data_mut(), self.head.gw.data());
                let ghb = self.head.gb.clone();
                adam.step(s_hb, &mut self.head.b, &ghb);
            }
            // Mean over the samples that contributed, not over skipped
            // empty-column samples.
            last_loss /= contributing_epoch.max(1) as f64;
        }
        last_loss
    }

    /// Scores one already-assembled sample (used by tests and training
    /// evaluation).
    pub fn score_sample(&self, sample: &RankSample) -> f64 {
        if sample.cell_texts.is_empty() {
            return 0.5;
        }
        let aux = self.aux_features(&sample.features, &sample.rule_tokens);
        let (logit, _) = self.forward(&sample.cell_texts, &sample.execution, &aux);
        sigmoid(logit)
    }
}

/// Candidate-independent forward state: the (subsampled) column embedding
/// shared by every candidate of one learn call.
struct ColumnEmbed {
    /// Subsampled cell indices into the original column.
    idx: Vec<usize>,
    /// Embeddings of the subsampled cells (`|idx| × DIM`).
    x: Matrix,
}

/// Candidate-dependent forward state up to the pooled column vector.
struct PooledCandidate {
    pooled: Vec<f64>,
    attn_cache: cornet_nn::attention::AttentionCache,
    exec_rows: Vec<usize>,
    n_rows: usize,
}

struct ForwardCache {
    attn_cache: cornet_nn::attention::AttentionCache,
    pooled_m: Matrix,
    head_in: Matrix,
    exec_rows: Vec<usize>,
    n_rows: usize,
}

impl Ranker for NeuralRanker {
    fn score(&self, ctx: &RankContext<'_>) -> f64 {
        if ctx.cell_texts.is_empty() {
            return 0.5;
        }
        let exec: Vec<bool> = ctx.execution.iter().collect();
        let tokens = match self.mode {
            NeuralMode::Hybrid => Vec::new(),
            NeuralMode::NeuralOnly => rule_tokens(ctx.rule),
        };
        let aux = self.aux_features(&ctx.features, &tokens);
        let (logit, _) = self.forward(ctx.cell_texts, &exec, &aux);
        sigmoid(logit)
    }

    fn score_batch(&self, ctxs: &[RankContext<'_>]) -> Vec<f64> {
        // Consecutive contexts sharing one `cell_texts` slice (the learner
        // passes every candidate of a column this way) share a single
        // column embedding; a new slice starts a new group.
        let mut scores = Vec::with_capacity(ctxs.len());
        let mut start = 0;
        while start < ctxs.len() {
            let texts = ctxs[start].cell_texts;
            let mut end = start + 1;
            while end < ctxs.len() && std::ptr::eq(texts, ctxs[end].cell_texts) {
                end += 1;
            }
            if texts.is_empty() {
                scores.extend(std::iter::repeat(0.5).take(end - start));
            } else {
                scores.extend(self.score_group(texts, &ctxs[start..end]));
            }
            start = end;
        }
        scores
    }

    fn name(&self) -> &'static str {
        match self.mode {
            NeuralMode::Hybrid => "cornet",
            NeuralMode::NeuralOnly => "neural",
        }
    }

    fn param_count(&self) -> usize {
        2 * Self::DIM
            + self.attn.param_count()
            + self.col_linear.param_count()
            + self.head.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(texts: &[&str], exec: &[bool], acc: f64, label: bool) -> RankSample {
        let mut features = vec![0.0; FEATURE_DIM];
        features[4] = acc;
        RankSample {
            cell_texts: texts.iter().map(|s| s.to_string()).collect(),
            execution: exec.to_vec(),
            features,
            rule_tokens: vec!["TextStartsWith".into(), "RW".into()],
            label,
        }
    }

    #[test]
    fn forward_is_deterministic_and_bounded() {
        let mut rng = StdRng::seed_from_u64(21);
        let ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);
        let s = sample(&["RW-1", "RW-2", "XX-3"], &[true, true, false], 0.9, true);
        let a = ranker.score_sample(&s);
        let b = ranker.score_sample(&s);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);
        // Correct rules have high cluster accuracy and execution aligned
        // with a prefix pattern; incorrect ones don't.
        let mut samples = Vec::new();
        for i in 0..60 {
            let good = i % 2 == 0;
            samples.push(sample(
                &["RW-1", "RW-2", "XX-3", "XX-4"],
                &[good, good, !good, false],
                if good { 0.95 } else { 0.55 },
                good,
            ));
        }
        let initial: f64 = samples
            .iter()
            .map(|s| {
                let (l, _) = bce_with_logit(
                    (ranker.score_sample(s) / (1.0 - ranker.score_sample(s)).max(1e-9)).ln(),
                    f64::from(s.label),
                );
                l
            })
            .sum::<f64>()
            / samples.len() as f64;
        let final_loss = ranker.train(&samples, 12, 0.01, &mut rng);
        assert!(
            final_loss < initial.max(0.6),
            "loss did not drop: {final_loss} vs {initial}"
        );
        // Trained model separates the classes.
        let good = sample(
            &["RW-1", "RW-2", "XX-3", "XX-4"],
            &[true, true, false, false],
            0.95,
            true,
        );
        let bad = sample(
            &["RW-1", "RW-2", "XX-3", "XX-4"],
            &[false, false, true, false],
            0.55,
            false,
        );
        assert!(ranker.score_sample(&good) > ranker.score_sample(&bad));
    }

    #[test]
    fn neural_only_uses_rule_tokens() {
        let mut rng = StdRng::seed_from_u64(23);
        let ranker = NeuralRanker::new(NeuralMode::NeuralOnly, 7, &mut rng);
        let mut a = sample(&["x", "y"], &[true, false], 0.9, true);
        let mut b = sample(&["x", "y"], &[true, false], 0.9, true);
        a.rule_tokens = vec!["GreaterThan".into(), "10".into()];
        b.rule_tokens = vec!["TextContains".into(), "zebra".into()];
        // Same features/cells/execution but different rule tokens must be
        // able to produce different scores.
        assert_ne!(ranker.score_sample(&a), ranker.score_sample(&b));
    }

    #[test]
    fn long_columns_are_subsampled() {
        let mut rng = StdRng::seed_from_u64(24);
        let ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);
        let texts: Vec<String> = (0..500).map(|i| format!("cell-{i}")).collect();
        let exec = vec![false; 500];
        let mut features = vec![0.0; FEATURE_DIM];
        features[4] = 0.8;
        let s = RankSample {
            cell_texts: texts,
            execution: exec,
            features,
            rule_tokens: vec![],
            label: false,
        };
        let score = ranker.score_sample(&s);
        assert!(score.is_finite());
    }

    #[test]
    fn max_cells_of_one_is_guarded() {
        let mut rng = StdRng::seed_from_u64(26);
        // max_cells == 1 used to divide by zero in the even-subsample
        // formula (`max_cells - 1`).
        let ranker = NeuralRanker::with_max_cells(NeuralMode::Hybrid, 7, 1, &mut rng);
        assert_eq!(ranker.max_cells(), 1);
        let s = sample(
            &["a", "b", "c", "d"],
            &[true, false, true, false],
            0.7,
            true,
        );
        let score = ranker.score_sample(&s);
        assert!(score.is_finite());
        // Zero is clamped up to one rather than looping forever on an
        // empty subsample.
        let clamped = NeuralRanker::with_max_cells(NeuralMode::Hybrid, 7, 0, &mut rng);
        assert_eq!(clamped.max_cells(), 1);
        assert!(clamped.score_sample(&s).is_finite());
    }

    #[test]
    fn with_max_cells_default_matches_new() {
        let mut rng_a = StdRng::seed_from_u64(27);
        let mut rng_b = StdRng::seed_from_u64(27);
        let a = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng_a);
        let b = NeuralRanker::with_max_cells(
            NeuralMode::Hybrid,
            7,
            NeuralRanker::DEFAULT_MAX_CELLS,
            &mut rng_b,
        );
        let s = sample(&["RW-1", "XX-2"], &[true, false], 0.8, true);
        assert_eq!(a.score_sample(&s), b.score_sample(&s));
    }

    #[test]
    fn skipped_empty_samples_do_not_dilute_gradients() {
        // One epoch, one minibatch, one *contributing* sample: training on
        // it alone must equal training on it plus skipped empty-column
        // samples, both in reported loss and in resulting weights. The old
        // code divided the gradient by the full batch length and the loss
        // by the full sample count, under-scaling both whenever empties
        // were skipped.
        let mut rng = StdRng::seed_from_u64(28);
        let ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);
        let dense = vec![sample(
            &["RW-1", "RW-2", "XX-3"],
            &[true, true, false],
            0.9,
            true,
        )];
        let mut with_empties = dense.clone();
        for _ in 0..4 {
            with_empties.push(sample(&[], &[], 0.5, false));
        }

        let mut a = ranker.clone();
        let mut rng_a = StdRng::seed_from_u64(99);
        let loss_a = a.train(&dense, 1, 0.01, &mut rng_a);
        let mut b = ranker.clone();
        let mut rng_b = StdRng::seed_from_u64(99);
        let loss_b = b.train(&with_empties, 1, 0.01, &mut rng_b);

        assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        let probe = sample(&["RW-1", "RW-2", "XX-3"], &[true, true, false], 0.9, true);
        assert_eq!(
            a.score_sample(&probe).to_bits(),
            b.score_sample(&probe).to_bits()
        );
    }

    #[test]
    fn score_batch_matches_score_bitwise() {
        use crate::features::rule_features;
        use crate::predicate::{Predicate, TextOp};
        use crate::rule::Rule;
        use cornet_table::BitVec;

        let mut rng = StdRng::seed_from_u64(29);
        let cell_texts: Vec<String> = ["RW-1", "RW-2", "XX-3", "XX-4", "RW-5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let labels = BitVec::from_bools(&[true, true, false, false, true]);
        let rules: Vec<Rule> = ["RW", "XX", "R", "-"]
            .iter()
            .map(|p| {
                Rule::from_predicate(Predicate::Text {
                    op: TextOp::StartsWith,
                    pattern: (*p).to_string(),
                })
            })
            .collect();
        let cells: Vec<cornet_table::CellValue> = cell_texts
            .iter()
            .map(|t| cornet_table::CellValue::parse(t))
            .collect();
        let prepared: Vec<(BitVec, [f64; FEATURE_DIM])> = rules
            .iter()
            .map(|r| {
                let exec = r.execute(&cells);
                let features = rule_features(r, &exec, &labels, Some(cornet_table::DataType::Text));
                (exec, features)
            })
            .collect();
        let no_negatives = BitVec::zeros(cell_texts.len());
        let ctxs: Vec<RankContext<'_>> = rules
            .iter()
            .zip(&prepared)
            .map(|(rule, (execution, features))| RankContext {
                rule,
                cell_texts: &cell_texts,
                execution,
                cluster_labels: &labels,
                negatives: &no_negatives,
                dtype: Some(cornet_table::DataType::Text),
                features: *features,
            })
            .collect();
        for mode in [NeuralMode::Hybrid, NeuralMode::NeuralOnly] {
            let ranker = NeuralRanker::new(mode, 7, &mut rng);
            let batched = ranker.score_batch(&ctxs);
            for (ctx, b) in ctxs.iter().zip(&batched) {
                assert_eq!(ranker.score(ctx).to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn param_count_matches_structure() {
        let mut rng = StdRng::seed_from_u64(25);
        let ranker = NeuralRanker::new(NeuralMode::Hybrid, 7, &mut rng);
        let d = NeuralRanker::DIM;
        let expected = 2 * d + 3 * d * d + (d * d + d) + ((d + FEATURE_DIM) + 1);
        assert_eq!(ranker.param_count(), expected);
    }
}
