//! Ranking training-data generation (§3.4).
//!
//! "To generate training data we apply Cornet up to the rule enumeration
//! step using 1, 3, or 5 examples on a held-out dataset of columns with
//! ground-truth conditional formatting rules. We keep rules that do not
//! match the user rule as negative samples and rules that do match the user
//! rule as positive examples. Additionally, we apply user rules on other
//! columns to obtain both positive (by construction) and negative (by the
//! procedure above) examples."

use crate::cluster::{cluster, ClusterConfig};
use crate::enumerate::{enumerate_rules, EnumConfig};
use crate::features::{rule_features, rule_tokens};
use crate::predgen::{generate_predicates, infer_type, GenConfig};
use crate::rule::Rule;
use crate::signature::CellSignatures;
use cornet_table::CellValue;

/// One training sample for a ranker.
#[derive(Debug, Clone)]
pub struct RankSample {
    /// Display strings of the column's cells.
    pub cell_texts: Vec<String>,
    /// The candidate rule's execution over the column.
    pub execution: Vec<bool>,
    /// Handpicked rule features.
    pub features: Vec<f64>,
    /// Rule token stream (for the neural-only ranker).
    pub rule_tokens: Vec<String>,
    /// True when the candidate execution-matches the ground truth.
    pub label: bool,
}

/// Generation configuration.
#[derive(Debug, Clone)]
pub struct TrainDataConfig {
    /// Example counts to replay per task (paper: 1, 3, 5).
    pub example_counts: Vec<usize>,
    /// Cap on candidate-derived samples per (task, example count).
    pub max_candidates_per_task: usize,
    /// Also add the ground-truth rule applied to the column as a positive
    /// sample (the paper's "positive by construction").
    pub include_gold_positive: bool,
}

impl Default for TrainDataConfig {
    fn default() -> Self {
        TrainDataConfig {
            example_counts: vec![1, 3, 5],
            max_candidates_per_task: 8,
            include_gold_positive: true,
        }
    }
}

/// Generates ranking samples from `(column, ground-truth rule)` tasks by
/// running the Cornet pipeline up to enumeration and labelling candidates by
/// execution match against the gold rule.
pub fn generate_training_data(
    tasks: &[(Vec<CellValue>, Rule)],
    config: &TrainDataConfig,
) -> Vec<RankSample> {
    let mut out = Vec::new();
    let gen_config = GenConfig::default();
    let cluster_config = ClusterConfig::default();
    let enum_config = EnumConfig::default();
    for (cells, gold) in tasks {
        let gold_exec = gold.execute(cells);
        let formatted: Vec<usize> = gold_exec.iter_ones().collect();
        if formatted.is_empty() {
            continue;
        }
        let cell_texts: Vec<String> = cells.iter().map(CellValue::display_string).collect();
        let dtype = infer_type(cells);
        let predicates = generate_predicates(cells, &gen_config);
        if predicates.is_empty() {
            continue;
        }
        let signatures = CellSignatures::from_predicates(&predicates);
        for &k in &config.example_counts {
            let observed: Vec<usize> = formatted.iter().copied().take(k).collect();
            let outcome = cluster(&signatures, &observed, &cluster_config);
            let candidates = enumerate_rules(&predicates, &outcome, &enum_config);
            for cand in candidates.iter().take(config.max_candidates_per_task) {
                let exec = cand.rule.execute(cells);
                let label = exec == gold_exec;
                let features = rule_features(&cand.rule, &exec, &outcome.labels, dtype);
                out.push(RankSample {
                    cell_texts: cell_texts.clone(),
                    execution: exec.iter().collect(),
                    features: features.to_vec(),
                    rule_tokens: rule_tokens(&cand.rule),
                    label,
                });
            }
            if config.include_gold_positive {
                let features = rule_features(gold, &gold_exec, &outcome.labels, dtype);
                out.push(RankSample {
                    cell_texts: cell_texts.clone(),
                    execution: gold_exec.iter().collect(),
                    features: features.to_vec(),
                    rule_tokens: rule_tokens(gold),
                    label: true,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Predicate, TextOp};

    fn task() -> (Vec<CellValue>, Rule) {
        let cells: Vec<CellValue> = ["RW-187", "RS-762", "RW-159", "RW-131-T", "TW-224", "RW-312"]
            .iter()
            .map(|s| CellValue::from(*s))
            .collect();
        let rule = Rule::from_predicate(Predicate::Text {
            op: TextOp::StartsWith,
            pattern: "RW".into(),
        });
        (cells, rule)
    }

    #[test]
    fn generates_labeled_samples() {
        let tasks = vec![task()];
        let samples = generate_training_data(&tasks, &TrainDataConfig::default());
        assert!(!samples.is_empty());
        assert!(samples.iter().any(|s| s.label));
        // Every sample carries full context.
        for s in &samples {
            assert_eq!(s.cell_texts.len(), 6);
            assert_eq!(s.execution.len(), 6);
            assert_eq!(s.features.len(), crate::features::FEATURE_DIM);
        }
    }

    #[test]
    fn gold_positive_included() {
        let tasks = vec![task()];
        let config = TrainDataConfig {
            example_counts: vec![2],
            include_gold_positive: true,
            ..TrainDataConfig::default()
        };
        let with_gold = generate_training_data(&tasks, &config).len();
        let config_no = TrainDataConfig {
            include_gold_positive: false,
            ..config
        };
        let without = generate_training_data(&tasks, &config_no).len();
        assert_eq!(with_gold, without + 1);
    }

    #[test]
    fn cap_respected() {
        let tasks = vec![task()];
        let config = TrainDataConfig {
            example_counts: vec![1],
            max_candidates_per_task: 1,
            include_gold_positive: false,
        };
        let samples = generate_training_data(&tasks, &config);
        assert!(samples.len() <= 1);
    }

    #[test]
    fn empty_tasks_are_skipped() {
        let cells: Vec<CellValue> = vec![CellValue::from("x"); 4];
        let rule = Rule::from_predicate(Predicate::Text {
            op: TextOp::Equals,
            pattern: "none".into(),
        });
        let samples = generate_training_data(&[(cells, rule)], &TrainDataConfig::default());
        assert!(samples.is_empty());
    }
}
