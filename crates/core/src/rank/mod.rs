//! Candidate rule ranking (§3.4).
//!
//! Multiple candidate rules can match the provided examples; the ranker
//! assigns each a correctness score and Cornet returns them best-first.
//! Three rankers reproduce Table 6:
//!
//! * [`SymbolicRanker`] — a linear model over the handpicked rule features,
//! * [`NeuralRanker`] in *hybrid* mode — the paper's Cornet ranker: hashed
//!   cell embeddings, cross-attention with the rule's execution outputs, and
//!   a linear head over the concatenation with the handpicked features,
//! * [`NeuralRanker`] in *neural-only* mode — the ablation replacing the
//!   handpicked features with an embedding of the rule's token stream (the
//!   CodeBERT substitute).

pub mod neural;
pub mod symbolic;
pub mod traindata;

pub use neural::{NeuralMode, NeuralRanker};
pub use symbolic::SymbolicRanker;
pub use traindata::{generate_training_data, RankSample, TrainDataConfig};

use crate::features::FEATURE_DIM;
use crate::rule::Rule;
use cornet_table::{BitVec, DataType};

/// Everything a ranker may look at when scoring one candidate.
#[derive(Debug)]
pub struct RankContext<'a> {
    /// The candidate rule.
    pub rule: &'a Rule,
    /// Display strings of the column's cells (pre-computed once per task).
    pub cell_texts: &'a [String],
    /// The rule's execution over the column.
    pub execution: &'a BitVec,
    /// Hypothesised labels from clustering.
    pub cluster_labels: &'a BitVec,
    /// Column data type.
    pub dtype: Option<DataType>,
    /// Pre-computed handpicked features.
    pub features: [f64; FEATURE_DIM],
}

/// A scoring model for candidate rules.
pub trait Ranker {
    /// Scores a candidate; higher is better. Scores are in `[0, 1]`
    /// (sigmoid outputs interpreted as correctness probability).
    fn score(&self, ctx: &RankContext<'_>) -> f64;

    /// Human-readable name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Number of trainable parameters (`#pm` in Table 6).
    fn param_count(&self) -> usize;
}

/// A rule with its ranker score, as returned by the learner.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// Ranker score in `[0, 1]`.
    pub score: f64,
    /// Accuracy of the generating tree on the clustered labels.
    pub cluster_accuracy: f64,
}
