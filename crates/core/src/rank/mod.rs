//! Candidate rule ranking (§3.4).
//!
//! Multiple candidate rules can match the provided examples; the ranker
//! assigns each a correctness score and Cornet returns them best-first.
//! Three rankers reproduce Table 6:
//!
//! * [`SymbolicRanker`] — a linear model over the handpicked rule features,
//! * [`NeuralRanker`] in *hybrid* mode — the paper's Cornet ranker: hashed
//!   cell embeddings, cross-attention with the rule's execution outputs, and
//!   a linear head over the concatenation with the handpicked features,
//! * [`NeuralRanker`] in *neural-only* mode — the ablation replacing the
//!   handpicked features with an embedding of the rule's token stream (the
//!   CodeBERT substitute).

pub mod neural;
pub mod symbolic;
pub mod traindata;

pub use neural::{NeuralMode, NeuralRanker};
pub use symbolic::SymbolicRanker;
pub use traindata::{generate_training_data, RankSample, TrainDataConfig};

use crate::features::FEATURE_DIM;
use crate::rule::Rule;
use cornet_table::{BitVec, DataType};

/// Everything a ranker may look at when scoring one candidate.
#[derive(Clone, Debug)]
pub struct RankContext<'a> {
    /// The candidate rule.
    pub rule: &'a Rule,
    /// Display strings of the column's cells (pre-computed once per task).
    pub cell_texts: &'a [String],
    /// The rule's execution over the column.
    pub execution: &'a BitVec,
    /// Hypothesised labels from clustering.
    pub cluster_labels: &'a BitVec,
    /// Mask of the user's hard negative corrections (all-zero when the
    /// learn was unconstrained). Rankers may use it to penalise candidates
    /// that sail close to an explicit "not this cell" — the precomputed
    /// [`crate::features::NEGATIVE_COVERAGE_FEATURE`] carries the coverage
    /// fraction for linear models.
    pub negatives: &'a BitVec,
    /// Column data type.
    pub dtype: Option<DataType>,
    /// Pre-computed handpicked features.
    pub features: [f64; FEATURE_DIM],
}

/// A scoring model for candidate rules.
pub trait Ranker {
    /// Scores a candidate; higher is better. Scores are in `[0, 1]`
    /// (sigmoid outputs interpreted as correctness probability).
    fn score(&self, ctx: &RankContext<'_>) -> f64;

    /// Scores a batch of candidates; `out[i]` must be bit-identical to
    /// `self.score(&ctxs[i])`. The default is the serial loop; rankers
    /// override it to amortise per-column work (the learner scores every
    /// candidate of one column in a single call).
    fn score_batch(&self, ctxs: &[RankContext<'_>]) -> Vec<f64> {
        ctxs.iter().map(|ctx| self.score(ctx)).collect()
    }

    /// Human-readable name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Number of trainable parameters (`#pm` in Table 6).
    fn param_count(&self) -> usize;
}

impl<R: Ranker + ?Sized> Ranker for Box<R> {
    fn score(&self, ctx: &RankContext<'_>) -> f64 {
        (**self).score(ctx)
    }

    fn score_batch(&self, ctxs: &[RankContext<'_>]) -> Vec<f64> {
        (**self).score_batch(ctxs)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn param_count(&self) -> usize {
        (**self).param_count()
    }
}

/// Total ordering for sorting candidates best-first: descending by score
/// with NaN sinking below every real score (a poisoned candidate can never
/// outrank a finite one, and the sort stays deterministic). Real scores
/// compare via [`f64::total_cmp`].
pub fn score_descending(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// A rule with its ranker score, as returned by the learner.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// Ranker score in `[0, 1]`.
    pub score: f64,
    /// Accuracy of the generating tree on the clustered labels.
    pub cluster_accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::score_descending;

    #[test]
    fn nan_sorts_below_every_real_score() {
        let mut scores = vec![0.2, f64::NAN, 0.9, -f64::NAN, 0.5];
        scores.sort_by(|a, b| score_descending(*a, *b));
        assert_eq!(&scores[..3], &[0.9, 0.5, 0.2]);
        assert!(scores[3].is_nan() && scores[4].is_nan());
    }

    #[test]
    fn descending_is_total_on_reals() {
        let mut scores = vec![0.1, 0.7, 0.7, 0.0, 1.0];
        scores.sort_by(|a, b| score_descending(*a, *b));
        assert_eq!(scores, vec![1.0, 0.7, 0.7, 0.1, 0.0]);
    }
}
