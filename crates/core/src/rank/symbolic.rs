//! The purely symbolic ranker: a linear combination of the handpicked
//! features (§5.2.3, Table 6 "Symbolic"). About 4% behind the hybrid ranker
//! in the paper, and "a good alternative in a resource constrained domain".

use super::{RankContext, RankSample, Ranker};
use crate::features::FEATURE_DIM;
use crate::predicate::PredicateKind;
use cornet_nn::ops::{bce_with_logit, sigmoid};
use cornet_nn::{Adam, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Linear model over [`crate::features::rule_features`].
#[derive(Debug, Clone)]
pub struct SymbolicRanker {
    /// Feature weights.
    pub weights: [f64; FEATURE_DIM],
    /// Bias.
    pub bias: f64,
}

impl Default for SymbolicRanker {
    fn default() -> Self {
        SymbolicRanker::heuristic()
    }
}

impl SymbolicRanker {
    /// A hand-tuned prior that works without any training: favour rules that
    /// agree with the clustering, are shallow, use few/short arguments, and
    /// prefer specific text operators over `Contains` (the conservatism the
    /// paper observes in Table 7). Training replaces these weights.
    pub fn heuristic() -> SymbolicRanker {
        let mut weights = [0.0; FEATURE_DIM];
        weights[0] = -0.45; // depth: shorter is better
        weights[1] = -0.15; // number of arguments
        weights[2] = -0.05; // mean argument length
        weights[3] = -0.30; // fraction colored: prefer selective rules
        weights[4] = 6.0; // accuracy on clustered labels dominates
        weights[5] = 0.0; // ln(column length): neutral prior
        weights[6 + PredicateKind::Equals.index()] = 0.25;
        weights[6 + PredicateKind::StartsWith.index()] = 0.15;
        weights[6 + PredicateKind::EndsWith.index()] = 0.10;
        weights[6 + PredicateKind::Contains.index()] = -0.10;
        weights[6 + PredicateKind::Between.index()] = -0.10;
        // Covering an explicit negative is nearly disqualifying — the
        // penalty mirrors the cluster-accuracy reward. The feature fires
        // on *relaxed* constrained learns (`Cornet::learn_spec_relaxed`,
        // the serve abstention fallback), where it makes the rule covering
        // the fewest corrections win; the enforcing search never admits a
        // covering candidate, and on unconstrained learns the feature is
        // 0.0, so scores there stay bit-identical to the pre-negatives
        // model.
        weights[crate::features::NEGATIVE_COVERAGE_FEATURE] = -6.0;
        SymbolicRanker {
            weights,
            bias: -4.0,
        }
    }

    /// A zero-initialised model for training from scratch.
    pub fn zeros() -> SymbolicRanker {
        SymbolicRanker {
            weights: [0.0; FEATURE_DIM],
            bias: 0.0,
        }
    }

    fn logit(&self, features: &[f64]) -> f64 {
        let dot: f64 = self.weights.iter().zip(features).map(|(w, f)| w * f).sum();
        dot + self.bias
    }

    /// Trains by logistic regression (Adam, mini-batch SGD) on generated
    /// ranking samples. Returns the mean loss of the final epoch.
    pub fn train(&mut self, samples: &[RankSample], epochs: usize, rng: &mut impl Rng) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut adam = Adam::new(0.05);
        let w_slot = adam.register(FEATURE_DIM);
        let b_slot = adam.register(1);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            order.shuffle(rng);
            last_epoch_loss = 0.0;
            for &i in &order {
                let sample = &samples[i];
                let logit = self.logit(&sample.features);
                let target = f64::from(sample.label);
                let (loss, dlogit) = bce_with_logit(logit, target);
                last_epoch_loss += loss;
                let gw: Vec<f64> = sample.features.iter().map(|f| dlogit * f).collect();
                adam.tick();
                adam.step(w_slot, &mut self.weights, &gw);
                let mut b = [self.bias];
                adam.step(b_slot, &mut b, &[dlogit]);
                self.bias = b[0];
            }
            last_epoch_loss /= samples.len() as f64;
        }
        last_epoch_loss
    }
}

impl Ranker for SymbolicRanker {
    fn score(&self, ctx: &RankContext<'_>) -> f64 {
        sigmoid(self.logit(&ctx.features))
    }

    fn score_batch(&self, ctxs: &[RankContext<'_>]) -> Vec<f64> {
        // Vectorized path: stack the feature vectors and compute every
        // logit with one matrix–vector product. `Matrix::matvec` accumulates
        // each row exactly like `logit`'s zip-sum, so scores stay
        // bit-identical to the serial path.
        let mut features = Matrix::zeros(ctxs.len(), FEATURE_DIM);
        for (r, ctx) in ctxs.iter().enumerate() {
            features.row_mut(r).copy_from_slice(&ctx.features);
        }
        features
            .matvec(&self.weights)
            .into_iter()
            .map(|dot| sigmoid(dot + self.bias))
            .collect()
    }

    fn name(&self) -> &'static str {
        "symbolic"
    }

    fn param_count(&self) -> usize {
        FEATURE_DIM + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::rule_features_constrained;
    use crate::predicate::{CmpOp, Predicate};
    use crate::rule::Rule;
    use cornet_table::{BitVec, DataType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_for<'a>(
        rule: &'a Rule,
        cell_texts: &'a [String],
        execution: &'a BitVec,
        labels: &'a BitVec,
        negatives: &'a BitVec,
    ) -> RankContext<'a> {
        let features =
            rule_features_constrained(rule, execution, labels, negatives, Some(DataType::Number));
        RankContext {
            rule,
            cell_texts,
            execution,
            cluster_labels: labels,
            negatives,
            dtype: Some(DataType::Number),
            features,
        }
    }

    #[test]
    fn heuristic_prefers_accurate_rules() {
        let ranker = SymbolicRanker::heuristic();
        let rule = Rule::from_predicate(Predicate::NumCmp {
            op: CmpOp::Greater,
            n: 5.0,
        });
        let texts: Vec<String> = vec!["1".into(), "6".into(), "7".into(), "2".into()];
        let labels = BitVec::from_bools(&[false, true, true, false]);
        let perfect = BitVec::from_bools(&[false, true, true, false]);
        let poor = BitVec::from_bools(&[true, true, false, false]);
        let none = BitVec::zeros(4);
        let s_good = ranker.score(&context_for(&rule, &texts, &perfect, &labels, &none));
        let s_bad = ranker.score(&context_for(&rule, &texts, &poor, &labels, &none));
        assert!(s_good > s_bad);
    }

    #[test]
    fn heuristic_penalises_negative_coverage() {
        // Identical context except one execution formats a cell the user
        // explicitly marked negative: the constrained score must drop.
        let ranker = SymbolicRanker::heuristic();
        let rule = Rule::from_predicate(Predicate::NumCmp {
            op: CmpOp::Greater,
            n: 5.0,
        });
        let texts: Vec<String> = vec!["1".into(), "6".into(), "7".into(), "2".into()];
        let labels = BitVec::from_bools(&[false, true, true, false]);
        let exec = BitVec::from_bools(&[false, true, true, false]);
        let negatives = BitVec::from_bools(&[false, false, true, false]);
        let none = BitVec::zeros(4);
        let clean = ranker.score(&context_for(&rule, &texts, &exec, &labels, &none));
        let covering = ranker.score(&context_for(&rule, &texts, &exec, &labels, &negatives));
        assert!(covering < clean, "{covering} !< {clean}");
    }

    #[test]
    fn training_learns_to_separate() {
        // Synthetic task: label = (feature[4] > 0.9), i.e. high cluster
        // accuracy means correct.
        let mut rng = StdRng::seed_from_u64(5);
        let mut samples = Vec::new();
        for i in 0..200 {
            let mut features = vec![0.0; FEATURE_DIM];
            let acc = if i % 2 == 0 { 0.95 } else { 0.6 };
            features[4] = acc;
            features[0] = 1.0 + (i % 3) as f64;
            samples.push(RankSample {
                cell_texts: vec![],
                execution: vec![],
                features,
                rule_tokens: vec![],
                label: i % 2 == 0,
            });
        }
        let mut ranker = SymbolicRanker::zeros();
        let loss = ranker.train(&samples, 30, &mut rng);
        assert!(loss < 0.2, "training did not converge: loss {loss}");
        assert!(ranker.weights[4] > 0.0);
    }

    #[test]
    fn param_count_is_reported() {
        assert_eq!(SymbolicRanker::default().param_count(), FEATURE_DIM + 1);
    }

    #[test]
    fn scores_are_probabilities() {
        let ranker = SymbolicRanker::heuristic();
        let rule = Rule::from_predicate(Predicate::NumCmp {
            op: CmpOp::Less,
            n: 0.0,
        });
        let texts: Vec<String> = vec!["1".into()];
        let exec = BitVec::zeros(1);
        let labels = BitVec::zeros(1);
        let none = BitVec::zeros(1);
        let s = ranker.score(&context_for(&rule, &texts, &exec, &labels, &none));
        assert!((0.0..=1.0).contains(&s));
    }
}
